//! Quickstart: measure a corpus, train a predictor, predict a new
//! application's performance distribution from ten runs, and score it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perfvar_suite::core::report::overlay;
use perfvar_suite::core::usecase1::{FewRunsConfig, FewRunsPredictor};
use perfvar_suite::stats::ks::ks2_statistic;
use perfvar_suite::sysmodel::{Corpus, SystemModel};

fn main() {
    // 1. Measure: 200 runs of every roster benchmark on the (simulated)
    //    Intel system. The paper uses 1,000; 200 keeps the example snappy.
    let corpus = Corpus::collect(&SystemModel::intel(), 200, 42);
    println!(
        "measured {} benchmarks × {} runs on {}",
        corpus.len(),
        corpus.n_runs,
        corpus.system.short_name()
    );

    // 2. Pretend `specomp/376` is the new application: train on everything
    //    else (leave-one-group-out style).
    let target = corpus
        .benchmarks
        .iter()
        .position(|b| b.id.qualified() == "specomp/376")
        .expect("roster benchmark");
    let include: Vec<usize> = (0..corpus.len()).filter(|&i| i != target).collect();

    // 3. Train the paper's best configuration: PearsonRnd representation +
    //    kNN (k = 15, cosine), profiles from 10 runs.
    let cfg = FewRunsConfig {
        n_profile_runs: 10,
        profiles_per_benchmark: 10,
        ..FewRunsConfig::default()
    };
    let predictor = FewRunsPredictor::train(&corpus, &include, cfg).expect("training");

    // 4. Predict the full distribution from just 10 runs of the target.
    let bench = &corpus.benchmarks[target];
    let predicted = predictor
        .predict_distribution(&bench.runs, 1000, 0)
        .expect("prediction");

    // 5. Compare against the measured distribution.
    let measured = bench.runs.rel_times();
    let ks = ks2_statistic(&predicted, &measured).expect("ks");
    println!("\npredicting {} from 10 runs:", bench.id.qualified());
    println!("KS(predicted, measured) = {ks:.3}  (0 = perfect, 1 = disjoint)\n");
    let lo = 0.9;
    let hi = 1.3;
    print!(
        "{}",
        overlay(&measured, &predicted, lo, hi, 64).expect("overlay")
    );
    println!("            (relative time axis: [{lo}, {hi}])");
}
