//! Use case 1 walk-through: how many runs buy how much accuracy?
//!
//! The paper's first scenario (Section III-A1): a developer repeatedly
//! inspects an application's performance distribution while optimizing it
//! and cannot afford 1,000 runs per iteration. This example trains the
//! few-runs predictor at several sample budgets and shows the
//! accuracy/cost trade-off of Fig. 6, plus the representation comparison
//! of Fig. 4 at one budget.
//!
//! ```text
//! cargo run --release --example few_runs_prediction
//! ```

use perfvar_suite::core::eval::evaluate_few_runs;
use perfvar_suite::core::report::violin_row;
use perfvar_suite::core::usecase1::FewRunsConfig;
use perfvar_suite::core::{ModelKind, ReprKind};
use perfvar_suite::sysmodel::{Corpus, SystemModel};

fn main() {
    // A 300-run campaign keeps this example under a minute while leaving
    // room for 10 × 10-run training windows per benchmark.
    let corpus = Corpus::collect(&SystemModel::intel(), 300, 7);
    println!(
        "corpus: {} benchmarks × {} runs on {}\n",
        corpus.len(),
        corpus.n_runs,
        corpus.system.short_name()
    );

    // --- the sampling budget trade-off (Fig. 6 in miniature) -----------
    println!("KS score vs number of profile runs (PearsonRnd + kNN):");
    for s in [1usize, 2, 5, 10, 25] {
        let cfg = FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: s,
            profiles_per_benchmark: (300 / s).min(10),
            seed: 7,
        };
        let summary = evaluate_few_runs(&corpus, cfg).expect("evaluation");
        println!(
            "{}",
            violin_row(&format!("{s:>3} runs"), &summary.ks_values(), 40).expect("violin")
        );
    }

    // --- the representation comparison at 10 runs (Fig. 4 column) ------
    println!("\ndistribution representations at 10 runs (kNN):");
    for repr in ReprKind::ALL {
        let cfg = FewRunsConfig {
            repr,
            model: ModelKind::Knn,
            n_profile_runs: 10,
            profiles_per_benchmark: 10,
            seed: 7,
        };
        let summary = evaluate_few_runs(&corpus, cfg).expect("evaluation");
        println!(
            "{}",
            violin_row(repr.name(), &summary.ks_values(), 40).expect("violin")
        );
    }

    println!(
        "\nReading the violins: each row is a KDE of the 60 per-benchmark\n\
         KS scores under leave-one-group-out cross-validation — mass near\n\
         the left edge means accurate distribution predictions."
    );
}
