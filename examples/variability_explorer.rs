//! Survey of performance variability across the benchmark roster — the
//! Fig. 3 view, plus per-suite statistics the paper's introduction argues
//! from: scalar summaries hide modes, tails, and spread.
//!
//! ```text
//! cargo run --release --example variability_explorer
//! ```

use perfvar_suite::core::report::{kde_curve, sparkline};
use perfvar_suite::stats::descriptive::FiveNumber;
use perfvar_suite::stats::moments::MomentSummary;
use perfvar_suite::sysmodel::{Corpus, Suite, SystemModel};

fn main() {
    let corpus = Corpus::collect(&SystemModel::intel(), 1000, 0xC0FFEE);

    println!("relative execution-time densities, all 60 benchmarks (Intel):\n");
    for bench in &corpus.benchmarks {
        let rel = bench.runs.rel_times();
        let lo = rel.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rel.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let pad = 0.1 * (hi - lo).max(1e-3);
        let curve = kde_curve(&rel, lo - pad, hi + pad, 56).expect("kde");
        let m = MomentSummary::from_sample(&rel).expect("moments");
        println!(
            "  {:<26} {} σ={:.3} γ₁={:+.1}",
            bench.id.qualified(),
            sparkline(&curve),
            m.std,
            m.skewness
        );
    }

    println!("\nper-suite variability (std of relative time, averaged):");
    for suite in Suite::ALL {
        let benches: Vec<_> = corpus
            .benchmarks
            .iter()
            .filter(|b| b.id.suite == suite)
            .collect();
        let stds: Vec<f64> = benches
            .iter()
            .map(|b| {
                MomentSummary::from_sample(&b.runs.rel_times())
                    .expect("moments")
                    .std
            })
            .collect();
        let f = FiveNumber::from_sample(&stds).expect("summary");
        let multi = benches
            .iter()
            .filter(|b| b.ground_truth.modes.len() > 1)
            .count();
        println!(
            "  {:<12} mean σ {:.4}  range [{:.4}, {:.4}]  multimodal {}/{}",
            suite.name(),
            f.mean,
            f.min,
            f.max,
            multi,
            benches.len()
        );
    }

    // The Fig. 1 argument: the mean hides the structure.
    let b376 = corpus.get("specomp/376").expect("roster");
    let rel = b376.runs.rel_times();
    let m = MomentSummary::from_sample(&rel).expect("moments");
    println!(
        "\nspecomp/376: mean relative time {:.3} — but the distribution has\n\
         {} mode(s){}; no scalar summary captures that.",
        m.mean,
        b376.ground_truth.modes.len(),
        if b376.ground_truth.tail.is_some() {
            " plus a heavy tail"
        } else {
            ""
        }
    );
}
