//! Use case 2 walk-through: predicting how an application behaves on a
//! machine you don't own.
//!
//! The paper's second scenario (Section III-A2): a user considering a new
//! system wants its performance distribution for their application
//! without access to the hardware. The vendor publishes a benchmark
//! corpus measured on the new system; the user measures the same corpus
//! on their current machine, trains a system-to-system model, and
//! predicts.
//!
//! ```text
//! cargo run --release --example cross_system_prediction
//! ```

use perfvar_suite::core::eval::evaluate_cross_system;
use perfvar_suite::core::report::{overlay, violin_row};
use perfvar_suite::core::usecase2::{CrossSystemConfig, CrossSystemPredictor};
use perfvar_suite::stats::ks::ks2_statistic;
use perfvar_suite::sysmodel::{Corpus, SystemModel};

fn main() {
    // The machine the user owns (AMD) and the machine they are
    // considering (Intel).
    let owned = Corpus::collect(&SystemModel::amd(), 300, 11);
    let candidate = Corpus::collect(&SystemModel::intel(), 300, 11);
    println!(
        "training corpora: {} benchmarks on {} (owned) and {} (candidate)\n",
        owned.len(),
        owned.system.short_name(),
        candidate.system.short_name()
    );

    // The user's application: pretend it's parsec/streamcluster, held out
    // of training entirely.
    let app = owned
        .benchmarks
        .iter()
        .position(|b| b.id.qualified() == "parsec/streamcluster")
        .expect("roster");
    let include: Vec<usize> = (0..owned.len()).filter(|&i| i != app).collect();

    let cfg = CrossSystemConfig::default(); // PearsonRnd + kNN
    let predictor =
        CrossSystemPredictor::train(&owned, &candidate, &include, cfg).expect("training");

    // Predict the candidate-system distribution from the owned-system
    // measurements only.
    let predicted = predictor
        .predict_distribution(&owned.benchmarks[app], 1000, 0)
        .expect("prediction");
    let actual = candidate.benchmarks[app].runs.rel_times();
    let ks = ks2_statistic(&predicted, &actual).expect("ks");

    println!(
        "{} on the candidate {} system (predicted from {} measurements):",
        owned.benchmarks[app].id.qualified(),
        candidate.system.short_name(),
        owned.system.short_name()
    );
    println!("KS(predicted, actual) = {ks:.3}\n");
    print!(
        "{}",
        overlay(&actual, &predicted, 0.9, 1.3, 64).expect("overlay")
    );

    // And the fleet-wide view: how well does this work across the whole
    // roster, in both directions? (Fig. 8.)
    println!("\nleave-one-benchmark-out evaluation, both directions:");
    let a2i = evaluate_cross_system(&owned, &candidate, cfg).expect("eval");
    let i2a = evaluate_cross_system(&candidate, &owned, cfg).expect("eval");
    println!(
        "{}",
        violin_row("AMD -> Intel", &a2i.ks_values(), 40).expect("violin")
    );
    println!(
        "{}",
        violin_row("Intel -> AMD", &i2a.ks_values(), 40).expect("violin")
    );
}
