//! Adaptive measurement: how many runs does each benchmark actually need,
//! and which counters drive the prediction?
//!
//! Two tools from the workspace's "beyond the paper" toolbox:
//!
//! * the [stopping rule](perfvar_suite::stats::stopping) decides per
//!   benchmark when the measured sample is statistically sufficient
//!   (bootstrap CIs of the median and p95 both tight) — heavy-tailed
//!   benchmarks need far more runs than tight ones;
//! * [permutation importance](perfvar_suite::ml::permutation_importance)
//!   reveals which profile features a trained distribution predictor
//!   actually relies on.
//!
//! ```text
//! cargo run --release --example adaptive_measurement
//! ```

use perfvar_suite::core::Profile;
use perfvar_suite::ml::{permutation_importance, Dataset, DenseMatrix, Regressor};
use perfvar_suite::ml::{Distance, KnnRegressor};
use perfvar_suite::stats::rng::Xoshiro256pp;
use perfvar_suite::stats::stopping::StoppingRule;
use perfvar_suite::sysmodel::{Corpus, SystemModel};
use rand::SeedableRng;

fn main() {
    let corpus = Corpus::collect(&SystemModel::intel(), 600, 21);

    // --- 1. adaptive stopping ------------------------------------------
    println!("runs needed per benchmark (95% CIs of median & p95 within 3%):\n");
    let rule = StoppingRule {
        relative_width: 0.03,
        ..StoppingRule::default()
    };
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let mut shown = 0;
    let mut never = 0;
    for bench in corpus.benchmarks.iter().step_by(4) {
        let times = bench.runs.times();
        match rule
            .first_sufficient_prefix(&mut rng, &times, 10)
            .expect("stopping rule")
        {
            Some(n) => {
                if shown < 10 {
                    println!(
                        "  {:<26} {:>4} runs  ({} component(s){})",
                        bench.id.qualified(),
                        n,
                        bench.ground_truth.modes.len(),
                        if bench.ground_truth.tail.is_some() {
                            " + tail"
                        } else {
                            ""
                        }
                    );
                    shown += 1;
                }
            }
            None => never += 1,
        }
    }
    if never > 0 {
        println!("  ({never} sampled benchmarks never satisfied the rule within 600 runs)");
    }

    // --- 2. which counters matter? -------------------------------------
    // Train a small single-output model: profile features → distribution
    // std, then rank features by permutation importance.
    println!("\nmost important profile features for predicting distribution width:\n");
    let mut x_rows = Vec::new();
    let mut y_rows = Vec::new();
    for b in &corpus.benchmarks {
        let p = Profile::from_runs(&b.runs, 10).expect("profile");
        x_rows.push(p.features);
        let m = perfvar_suite::stats::moments::Moments::from_slice(&b.runs.rel_times());
        y_rows.push(vec![m.population_std()]);
    }
    let data = Dataset::ungrouped(
        DenseMatrix::from_rows(&x_rows).expect("x"),
        DenseMatrix::from_rows(&y_rows).expect("y"),
    )
    .expect("dataset");
    let mut scaler = perfvar_suite::ml::StandardScaler::new();
    let x = scaler.fit_transform(&data.x).expect("scale");
    let data = Dataset::ungrouped(x, data.y.clone()).expect("dataset");
    let mut model = KnnRegressor::new(15).with_distance(Distance::Cosine);
    model.fit(&data).expect("fit");
    let imp = permutation_importance(&model, &data, 2, 3).expect("importance");

    // Feature j corresponds to metric j/4, statistic j%4.
    let stat_names = ["mean", "std", "skew", "kurt"];
    let catalog = corpus.system.catalog();
    let mut ranked: Vec<(usize, f64)> = imp.iter().cloned().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (j, v) in ranked.iter().take(10) {
        println!(
            "  {:<44} ({:>4}) Δmse {:+.2e}",
            catalog[j / 4].name,
            stat_names[j % 4],
            v
        );
    }
    println!(
        "\nNote how per-run *spread* statistics (std) of cause counters rank\n\
         highly: run-to-run counter variation is the channel through which\n\
         a profile reveals the shape of the performance distribution."
    );
}
