//! Tour of the reconstruction substrates: the Pearson system and the
//! maximum-entropy solver, the two engines behind the paper's moment-based
//! distribution representations.
//!
//! ```text
//! cargo run --release --example distribution_zoo
//! ```

use perfvar_suite::core::report::{kde_curve, sparkline};
use perfvar_suite::maxent::MaxEntDensity;
use perfvar_suite::pearson::{classify, PearsonDist};
use perfvar_suite::stats::moments::MomentSummary;
use perfvar_suite::stats::rng::Xoshiro256pp;
use rand::SeedableRng;

fn show(label: &str, xs: &[f64]) {
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let curve = kde_curve(xs, lo, hi, 56).expect("kde");
    println!("  {:<34} {}", label, sparkline(&curve));
}

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(1);

    println!("Pearson system: one family member per (skewness, kurtosis) region\n");
    let zoo = [
        ("type 0  (normal)         γ₁=0, β₂=3", 0.0, 3.0),
        ("type II  (symmetric beta) γ₁=0, β₂=2", 0.0, 2.0),
        ("type II  (U-shaped)       γ₁=0, β₂=1.4", 0.0, 1.4),
        ("type VII (heavy tails)    γ₁=0, β₂=6", 0.0, 6.0),
        ("type III (gamma)          γ₁=1, β₂=4.5", 1.0, 4.5),
        ("type IV                   γ₁=0.8, β₂=5.5", 0.8, 5.5),
        ("type I   (skewed beta)    γ₁=0.6, β₂=2.9", 0.6, 2.9),
        ("type VI  (beta-prime)     γ₁=1.8, β₂=9", 1.8, 9.0),
    ];
    for (label, skew, kurt) in zoo {
        let spec = MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: skew,
            kurtosis: kurt,
        };
        let d = PearsonDist::fit(spec).expect("fit");
        let xs = d.sample_n(&mut rng, 20_000);
        let got = MomentSummary::from_sample(&xs).expect("moments");
        show(label, &xs);
        println!(
            "    classified {:?}; sample moments γ₁={:+.2} β₂={:.2}",
            classify(&spec),
            got.skewness,
            got.kurtosis
        );
    }

    println!("\nMaximum entropy: reconstructing a density from four moments\n");
    for (label, skew, kurt) in [
        ("normal moments", 0.0, 3.0),
        ("uniform moments (flat)", 0.0, 1.8),
        ("skewed moments", 0.7, 3.6),
    ] {
        let spec = MomentSummary {
            mean: 1.0,
            std: 0.05,
            skewness: skew,
            kurtosis: kurt,
        };
        let d = MaxEntDensity::from_summary(&spec, (0.75, 1.25)).expect("solve");
        let xs = d.sample_n(&mut rng, 20_000);
        show(label, &xs);
        println!("    differential entropy {:.3} nats", d.entropy());
    }

    println!(
        "\nBoth engines take the same four numbers — mean, std, skewness,\n\
         kurtosis — and disagree about everything else; that disagreement\n\
         is exactly what the paper's representation comparison measures."
    );
}
