//! # pv-maxent — maximum-entropy density reconstruction from moments
//!
//! A Rust equivalent of PyMaxEnt (Saad & Ruai, SoftwareX 2019), which the
//! paper uses for its second distribution representation ("PyMaxEnt",
//! Section III-B2): represent a performance distribution by its first four
//! moments, and reconstruct a density from a predicted moment vector by
//! the principle of maximum entropy.
//!
//! ## Method
//!
//! Among all densities on a support `[a, b]` whose first `k` raw moments
//! equal a target vector `μ₀..μ_k` (with `μ₀ = 1`), the maximum-entropy
//! density has the exponential-polynomial form
//!
//! ```text
//! p(x) = exp( λ₀ + λ₁ x + … + λ_k xᵏ )
//! ```
//!
//! The multipliers `λ` solve the nonlinear moment-matching system
//! `∫ xʲ p(x) dx = μⱼ`, which this crate solves with a damped Newton
//! iteration: the Jacobian `H_{ij} = ∫ x^{i+j} p(x) dx` is a Hankel matrix
//! of higher moments under the current iterate, assembled by fixed-order
//! Gauss–Legendre quadrature and solved with a ridge-stabilized LU
//! factorization. All computation happens on the affinely mapped support
//! `[-1, 1]`, which keeps the power basis conditioned.
//!
//! ```
//! use pv_maxent::MaxEntDensity;
//! use pv_stats::moments::MomentSummary;
//!
//! // Reconstruct a (truncated) standard normal from its four moments.
//! let spec = MomentSummary { mean: 0.0, std: 1.0, skewness: 0.0, kurtosis: 3.0 };
//! let d = MaxEntDensity::from_summary(&spec, (-6.0, 6.0)).unwrap();
//! assert!((d.pdf(0.0) - 0.3989).abs() < 0.01);
//! ```

mod density;
mod solver;

pub use density::MaxEntDensity;
pub use solver::{central_to_raw_moments, solve_maxent, MaxEntOptions};

/// Result alias re-using the statistical substrate's error type.
pub type Result<T> = std::result::Result<T, pv_stats::StatsError>;
