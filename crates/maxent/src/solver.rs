//! Damped Newton solver for the maximum-entropy moment problem.

use pv_stats::linalg::{lu_solve, Matrix};
use pv_stats::moments::MomentSummary;
use pv_stats::quadrature::GaussLegendre;
use pv_stats::StatsError;

use crate::Result;

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct MaxEntOptions {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the residual ∞-norm (moments are O(1) on
    /// the mapped support, so this is effectively a relative tolerance).
    pub tol: f64,
    /// Gauss–Legendre order for the moment integrals.
    pub quad_order: usize,
    /// Ridge added to the Hankel Jacobian when it is near-singular.
    pub ridge: f64,
}

impl Default for MaxEntOptions {
    fn default() -> Self {
        MaxEntOptions {
            max_iter: 200,
            tol: 1e-10,
            quad_order: 96,
            ridge: 1e-10,
        }
    }
}

/// Converts the paper's four-moment summary into raw moments
/// `[1, μ₁, μ₂, μ₃, μ₄]`.
///
/// Raw moments follow from the central ones by the binomial expansion:
/// `μ₂ = m² + σ²`, `μ₃ = m³ + 3mσ² + γ₁σ³`,
/// `μ₄ = m⁴ + 6m²σ² + 4mγ₁σ³ + β₂σ⁴`.
pub fn central_to_raw_moments(s: &MomentSummary) -> [f64; 5] {
    let m = s.mean;
    let v = s.std * s.std;
    let c3 = s.skewness * s.std.powi(3);
    let c4 = s.kurtosis * v * v;
    [
        1.0,
        m,
        m * m + v,
        m.powi(3) + 3.0 * m * v + c3,
        m.powi(4) + 6.0 * m * m * v + 4.0 * m * c3 + c4,
    ]
}

/// Maps raw moments of `x` on `[a, b]` to raw moments of the standardized
/// variable `u = (x − c)/h` on `[-1, 1]`, where `c = (a+b)/2`,
/// `h = (b−a)/2`.
fn map_moments_to_unit(mu: &[f64], a: f64, b: f64) -> Vec<f64> {
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let k = mu.len();
    let mut out = vec![0.0; k];
    // E[u^n] = h^{-n} Σ_j C(n, j) μ_j (−c)^{n−j}
    for (n, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        let mut binom = 1.0f64;
        for (j, &mu_j) in mu.iter().enumerate().take(n + 1) {
            if j > 0 {
                binom *= (n - j + 1) as f64 / j as f64;
            }
            acc += binom * mu_j * (-c).powi((n - j) as i32);
        }
        *slot = acc / h.powi(n as i32);
    }
    out
}

/// Solves for the Lagrange multipliers of the max-entropy density on
/// `[a, b]` matching raw moments `mu` (with `mu[0] = 1`).
///
/// Returns `(lambda, support)` where `lambda` are the multipliers **in the
/// mapped `[-1, 1]` coordinate** — [`crate::MaxEntDensity`] owns the
/// transformation back to `x`-space.
///
/// # Errors
/// Fails when the moments are non-finite, the support is invalid, the
/// target moments are infeasible on the support, or Newton fails to
/// converge.
pub fn solve_maxent(mu: &[f64], a: f64, b: f64, opts: &MaxEntOptions) -> Result<Vec<f64>> {
    let _timer = pv_obs::timed!("pv.maxent.solver.solve_ns");
    match solve_maxent_inner(mu, a, b, opts) {
        Ok((lambda, iterations)) => {
            pv_obs::counter_inc!("pv.maxent.solver.converged");
            pv_obs::observe!(
                "pv.maxent.solver.iterations",
                ITERATION_BUCKETS,
                iterations as f64
            );
            Ok(lambda)
        }
        Err(e) => {
            // Only genuine convergence failures count against the solver;
            // invalid/infeasible inputs never entered the Newton loop.
            if matches!(e, StatsError::NoConvergence { .. }) {
                pv_obs::counter_inc!("pv.maxent.solver.failed");
                pv_obs::observe!(
                    "pv.maxent.solver.iterations",
                    ITERATION_BUCKETS,
                    opts.max_iter as f64
                );
            }
            Err(e)
        }
    }
}

/// Bucket layout for the Newton-iteration histogram: unit-ish bins over
/// the default 200-iteration budget.
const ITERATION_BUCKETS: pv_obs::BucketSpec = pv_obs::BucketSpec::Linear {
    lo: 0.0,
    hi: 200.0,
    bins: 40,
};

/// [`solve_maxent`] minus the instrumentation, returning the Newton
/// iterations spent alongside the multipliers.
fn solve_maxent_inner(
    mu: &[f64],
    a: f64,
    b: f64,
    opts: &MaxEntOptions,
) -> Result<(Vec<f64>, usize)> {
    if mu.len() < 2 {
        return Err(StatsError::invalid(
            "solve_maxent",
            "need at least two moments (including μ₀)",
        ));
    }
    if mu.iter().any(|m| !m.is_finite()) {
        return Err(StatsError::NonFinite {
            what: "solve_maxent",
        });
    }
    if !(a.is_finite() && b.is_finite() && a < b) {
        return Err(StatsError::invalid(
            "solve_maxent",
            format!("invalid support [{a}, {b}]"),
        ));
    }
    if (mu[0] - 1.0).abs() > 1e-8 {
        return Err(StatsError::invalid(
            "solve_maxent",
            format!("μ₀ must be 1, got {}", mu[0]),
        ));
    }
    let target = map_moments_to_unit(mu, a, b);
    let k = target.len();
    // Quick feasibility screen: mapped mean must be inside (−1, 1) and the
    // mapped variance must be positive and below the Popoviciu bound.
    if k >= 3 {
        let mean = target[1];
        let var = target[2] - mean * mean;
        if mean.abs() >= 1.0 || var <= 0.0 || var > 1.0 {
            return Err(StatsError::invalid(
                "solve_maxent",
                format!("moments infeasible on support: mapped mean={mean}, var={var}"),
            ));
        }
    }

    let gl = GaussLegendre::new(opts.quad_order)?;
    let grid = gl.mapped(-1.0, 1.0);

    // Start from the uniform density on [-1, 1]: λ = (ln ½, 0, …, 0).
    let mut lambda = vec![0.0; k];
    lambda[0] = (0.5f64).ln();

    let moments_of = |lam: &[f64]| -> Vec<f64> {
        // All 2k−1 power moments of p(u) = exp(Σ λ_j u^j) in one sweep.
        let mut mom = vec![0.0; 2 * k - 1];
        for &(u, w) in &grid {
            let mut e = 0.0;
            let mut up = 1.0;
            for &l in lam {
                e += l * up;
                up *= u;
            }
            let p = e.exp();
            let mut upow = 1.0;
            for m in mom.iter_mut() {
                *m += w * p * upow;
                upow *= u;
            }
        }
        mom
    };

    let residual_norm = |mom: &[f64]| -> f64 {
        (0..k)
            .map(|i| (mom[i] - target[i]).abs())
            .fold(0.0f64, f64::max)
    };

    let mut mom = moments_of(&lambda);
    let mut err = residual_norm(&mom);
    let mut iterations = 0;
    for _ in 0..opts.max_iter {
        if err < opts.tol {
            return Ok((lambda, iterations));
        }
        iterations += 1;
        // Newton step: H δ = −(G − target), H_{ij} = moment_{i+j}.
        let mut h = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                h[(i, j)] = mom[i + j];
            }
        }
        h.add_ridge(opts.ridge);
        let rhs: Vec<f64> = (0..k).map(|i| target[i] - mom[i]).collect();
        let delta = match lu_solve(h, &rhs) {
            Ok(d) => d,
            Err(_) => {
                return Err(StatsError::NoConvergence {
                    what: "solve_maxent (singular Hessian)",
                    iterations: opts.max_iter,
                })
            }
        };
        // Damped update: halve the step until the residual decreases (or
        // give up after 30 halvings — a sign of infeasibility).
        let mut step = 1.0;
        let mut improved = false;
        for _ in 0..30 {
            let trial: Vec<f64> = lambda
                .iter()
                .zip(&delta)
                .map(|(l, d)| l + step * d)
                .collect();
            let tm = moments_of(&trial);
            let te = residual_norm(&tm);
            if te.is_finite() && te < err {
                lambda = trial;
                mom = tm;
                err = te;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
    if err < opts.tol * 100.0 {
        // Accept near-converged solutions: the downstream KS comparison
        // operates at the 1e-3 level, so 1e-8 moment residuals are fine.
        return Ok((lambda, iterations));
    }
    Err(StatsError::NoConvergence {
        what: "solve_maxent",
        iterations: opts.max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_to_raw_roundtrip_for_normal() {
        let s = MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: 0.0,
            kurtosis: 3.0,
        };
        let mu = central_to_raw_moments(&s);
        assert_eq!(mu, [1.0, 0.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn central_to_raw_with_shift() {
        // Shifted normal N(2, 1): μ₁=2, μ₂=5, μ₃=14, μ₄=43.
        let s = MomentSummary {
            mean: 2.0,
            std: 1.0,
            skewness: 0.0,
            kurtosis: 3.0,
        };
        let mu = central_to_raw_moments(&s);
        assert!((mu[1] - 2.0).abs() < 1e-12);
        assert!((mu[2] - 5.0).abs() < 1e-12);
        assert!((mu[3] - 14.0).abs() < 1e-12);
        assert!((mu[4] - 43.0).abs() < 1e-12);
    }

    #[test]
    fn mapped_moments_of_centered_interval_are_identity() {
        let mu = [1.0, 0.0, 0.25];
        let mapped = map_moments_to_unit(&mu, -1.0, 1.0);
        assert!((mapped[0] - 1.0).abs() < 1e-12);
        assert!((mapped[1]).abs() < 1e-12);
        assert!((mapped[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mapped_moments_handle_shift_and_scale() {
        // X uniform on [0, 2]: μ = [1, 1, 4/3]. Mapped u = x − 1 on [−1,1]:
        // E[u] = 0, E[u²] = 1/3.
        let mu = [1.0, 1.0, 4.0 / 3.0];
        let mapped = map_moments_to_unit(&mu, 0.0, 2.0);
        assert!(mapped[1].abs() < 1e-12);
        assert!((mapped[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_moments_give_flat_density() {
        // Moments of U[-1,1]: [1, 0, 1/3, 0, 1/5]
        let lam = solve_maxent(
            &[1.0, 0.0, 1.0 / 3.0, 0.0, 0.2],
            -1.0,
            1.0,
            &MaxEntOptions::default(),
        )
        .unwrap();
        // Density exp(Σ λ u^j) must be ≈ 0.5 everywhere → λ₀ ≈ ln ½,
        // higher λ ≈ 0.
        assert!((lam[0] - 0.5f64.ln()).abs() < 1e-5, "λ₀ = {}", lam[0]);
        for l in &lam[1..] {
            assert!(l.abs() < 1e-5, "λ = {lam:?}");
        }
    }

    #[test]
    fn solver_matches_requested_moments() {
        // A skewed spec; verify the solution's moments numerically.
        let s = MomentSummary {
            mean: 0.2,
            std: 0.5,
            skewness: 0.6,
            kurtosis: 3.2,
        };
        let mu = central_to_raw_moments(&s);
        let opts = MaxEntOptions::default();
        let (a, b) = (-3.0, 4.0);
        let lam = solve_maxent(&mu, a, b, &opts).unwrap();
        // Integrate u-moments on [-1,1] and map back to x to verify.
        let gl = GaussLegendre::new(128).unwrap();
        let c = 0.5 * (a + b);
        let h = 0.5 * (b - a);
        let pdf_u = |u: f64| -> f64 {
            let mut e = 0.0;
            let mut up = 1.0;
            for &l in &lam {
                e += l * up;
                up *= u;
            }
            e.exp()
        };
        for (k, &mu_k) in mu.iter().enumerate().take(5) {
            let got = gl.integrate(-1.0, 1.0, |u| (c + h * u).powi(k as i32) * pdf_u(u));
            assert!(
                (got - mu_k).abs() < 1e-6 * (1.0 + mu_k.abs()),
                "moment {k}: {got} vs {mu_k}"
            );
        }
    }

    #[test]
    fn infeasible_moments_are_rejected() {
        // Mean outside the support.
        assert!(solve_maxent(&[1.0, 5.0, 26.0], -1.0, 1.0, &MaxEntOptions::default()).is_err());
        // Variance above the Popoviciu bound for the support.
        assert!(solve_maxent(&[1.0, 0.0, 50.0], -1.0, 1.0, &MaxEntOptions::default()).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let o = MaxEntOptions::default();
        assert!(solve_maxent(&[1.0], -1.0, 1.0, &o).is_err());
        assert!(solve_maxent(&[2.0, 0.0, 0.3], -1.0, 1.0, &o).is_err());
        assert!(solve_maxent(&[1.0, f64::NAN, 0.3], -1.0, 1.0, &o).is_err());
        assert!(solve_maxent(&[1.0, 0.0, 0.3], 1.0, -1.0, &o).is_err());
    }
}
