//! The reconstructed maximum-entropy density: evaluation, CDF, sampling.

use rand::Rng;

use pv_stats::moments::MomentSummary;
use pv_stats::StatsError;

use crate::solver::{central_to_raw_moments, solve_maxent, MaxEntOptions};
use crate::Result;

/// Number of points in the precomputed CDF grid used for sampling.
const CDF_GRID: usize = 1024;

/// A maximum-entropy density reconstructed from raw moments on a bounded
/// support.
#[derive(Debug, Clone)]
pub struct MaxEntDensity {
    /// Lagrange multipliers in the mapped `[-1, 1]` coordinate.
    lambda: Vec<f64>,
    lo: f64,
    hi: f64,
    /// Precomputed CDF grid over the support: `(x, CDF(x))`.
    cdf_grid: Vec<(f64, f64)>,
}

impl MaxEntDensity {
    /// Reconstructs a density from raw moments `[1, μ₁, …, μ_k]` on
    /// `[lo, hi]`.
    ///
    /// # Errors
    /// Propagates solver failures (infeasible moments, no convergence).
    pub fn from_raw_moments(mu: &[f64], support: (f64, f64)) -> Result<Self> {
        Self::from_raw_moments_with(mu, support, &MaxEntOptions::default())
    }

    /// As [`MaxEntDensity::from_raw_moments`] with explicit solver options.
    ///
    /// # Errors
    /// Propagates solver failures (infeasible moments, no convergence).
    pub fn from_raw_moments_with(
        mu: &[f64],
        (lo, hi): (f64, f64),
        opts: &MaxEntOptions,
    ) -> Result<Self> {
        let lambda = solve_maxent(mu, lo, hi, opts)?;
        let mut d = MaxEntDensity {
            lambda,
            lo,
            hi,
            cdf_grid: Vec::new(),
        };
        d.build_cdf_grid();
        Ok(d)
    }

    /// Reconstructs from the paper's four-moment summary
    /// (mean/std/skewness/kurtosis) on the given support.
    ///
    /// # Errors
    /// Fails on a degenerate summary (σ ≤ 0, or any non-finite moment —
    /// reported as `DegenerateInput` rather than fed to the Newton solver,
    /// which would burn its full iteration budget on NaN residuals) or on
    /// solver failure.
    pub fn from_summary(s: &MomentSummary, support: (f64, f64)) -> Result<Self> {
        let finite = [s.mean, s.std, s.skewness, s.kurtosis];
        if finite.iter().any(|m| !m.is_finite()) {
            return Err(StatsError::degenerate(
                "MaxEntDensity::from_summary",
                format!("non-finite moment summary {finite:?}"),
            ));
        }
        if s.std <= 0.0 {
            return Err(StatsError::degenerate(
                "MaxEntDensity::from_summary",
                format!("standard deviation must be positive, got {}", s.std),
            ));
        }
        let s = s.clamped_feasible(1e-3);
        Self::from_raw_moments(&central_to_raw_moments(&s), support)
    }

    /// Support lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Support upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The Lagrange multipliers (mapped-coordinate convention).
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// Density at `x` (0 outside the support).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        let c = 0.5 * (self.lo + self.hi);
        let h = 0.5 * (self.hi - self.lo);
        let u = (x - c) / h;
        let mut e = 0.0;
        let mut up = 1.0;
        for &l in &self.lambda {
            e += l * up;
            up *= u;
        }
        // p_x(x) = p_u(u) / h
        e.exp() / h
    }

    /// CDF at `x`, linear interpolation on the precomputed grid.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let g = &self.cdf_grid;
        let t = (x - self.lo) / (self.hi - self.lo) * (g.len() - 1) as f64;
        let i = (t as usize).min(g.len() - 2);
        let frac = t - i as f64;
        g[i].1 + frac * (g[i + 1].1 - g[i].1)
    }

    /// Draws `n` samples by inverse-CDF on the grid.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let g = &self.cdf_grid;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                // Binary search the CDF column.
                let mut lo = 0usize;
                let mut hi = g.len() - 1;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if g[mid].1 < u {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let (x0, c0) = g[lo];
                let (x1, c1) = g[hi];
                if c1 <= c0 {
                    x0
                } else {
                    x0 + (x1 - x0) * (u - c0) / (c1 - c0)
                }
            })
            .collect()
    }

    /// Differential entropy `−∫ p ln p` of the reconstruction (natural
    /// log), evaluated on the CDF grid spacing.
    pub fn entropy(&self) -> f64 {
        let n = 2048;
        let h = (self.hi - self.lo) / n as f64;
        -(0..n)
            .map(|i| {
                let x = self.lo + (i as f64 + 0.5) * h;
                let p = self.pdf(x);
                if p > 0.0 {
                    p * p.ln() * h
                } else {
                    0.0
                }
            })
            .sum::<f64>()
    }

    fn build_cdf_grid(&mut self) {
        let n = CDF_GRID;
        let h = (self.hi - self.lo) / (n - 1) as f64;
        let mut grid = Vec::with_capacity(n);
        let mut acc = 0.0;
        let mut prev = self.pdf(self.lo);
        grid.push((self.lo, 0.0));
        for i in 1..n {
            let x = self.lo + i as f64 * h;
            let p = self.pdf(x);
            acc += 0.5 * (p + prev) * h;
            grid.push((x, acc));
            prev = p;
        }
        let total = acc.max(1e-300);
        for (_, c) in grid.iter_mut() {
            *c /= total;
        }
        self.cdf_grid = grid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_stats::moments::Moments;
    use pv_stats::rng::Xoshiro256pp;
    use pv_stats::special::normal_pdf;
    use rand::SeedableRng;

    fn normal_spec() -> MomentSummary {
        MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: 0.0,
            kurtosis: 3.0,
        }
    }

    #[test]
    fn recovers_gaussian_density() {
        let d = MaxEntDensity::from_summary(&normal_spec(), (-6.0, 6.0)).unwrap();
        for x in [-2.0, -1.0, 0.0, 0.5, 1.5, 2.5] {
            assert!(
                (d.pdf(x) - normal_pdf(x)).abs() < 5e-3,
                "pdf({x}) = {} vs {}",
                d.pdf(x),
                normal_pdf(x)
            );
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = MaxEntDensity::from_summary(&normal_spec(), (-5.0, 5.0)).unwrap();
        let n = 5000;
        let h = 10.0 / n as f64;
        let integral: f64 = (0..n).map(|i| d.pdf(-5.0 + (i as f64 + 0.5) * h) * h).sum();
        assert!((integral - 1.0).abs() < 1e-6, "∫pdf = {integral}");
    }

    #[test]
    fn cdf_monotone_with_correct_limits() {
        let d = MaxEntDensity::from_summary(&normal_spec(), (-5.0, 5.0)).unwrap();
        assert_eq!(d.cdf(-10.0), 0.0);
        assert_eq!(d.cdf(10.0), 1.0);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-3);
        let mut prev = 0.0;
        for i in 0..=40 {
            let x = -5.0 + 10.0 * i as f64 / 40.0;
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn samples_match_requested_moments() {
        let spec = MomentSummary {
            mean: 1.0,
            std: 0.2,
            skewness: 0.5,
            kurtosis: 3.5,
        };
        let d = MaxEntDensity::from_summary(&spec, (0.0, 2.5)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let xs = d.sample_n(&mut rng, 100_000);
        let m = Moments::from_slice(&xs);
        assert!((m.mean() - 1.0).abs() < 0.01);
        assert!((m.population_std() - 0.2).abs() < 0.01);
        assert!((m.skewness() - 0.5).abs() < 0.1);
        assert!((m.kurtosis() - 3.5).abs() < 0.3);
    }

    #[test]
    fn skewed_density_has_mode_left_of_mean() {
        let spec = MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: 0.8,
            kurtosis: 3.8,
        };
        let d = MaxEntDensity::from_summary(&spec, (-4.0, 7.0)).unwrap();
        // Right-skew: the mode sits left of the mean.
        let mode_x = (0..200)
            .map(|i| -4.0 + 11.0 * i as f64 / 199.0)
            .max_by(|a, b| d.pdf(*a).partial_cmp(&d.pdf(*b)).unwrap())
            .unwrap();
        assert!(mode_x < 0.0, "mode at {mode_x}");
    }

    #[test]
    fn uniform_reconstruction_is_flat() {
        // Moments of U[2, 4]: mean 3, var 1/3, skew 0, kurt 1.8.
        let spec = MomentSummary {
            mean: 3.0,
            std: (1.0f64 / 3.0).sqrt(),
            skewness: 0.0,
            kurtosis: 1.8,
        };
        let d = MaxEntDensity::from_summary(&spec, (2.0, 4.0)).unwrap();
        for x in [2.2, 2.8, 3.0, 3.5, 3.9] {
            assert!((d.pdf(x) - 0.5).abs() < 0.01, "pdf({x}) = {}", d.pdf(x));
        }
    }

    #[test]
    fn entropy_is_maximal_for_uniform_on_support() {
        // Uniform on [0,1] has entropy 0; any non-uniform density with the
        // same support has less.
        let uni = MaxEntDensity::from_summary(
            &MomentSummary {
                mean: 0.5,
                std: (1.0f64 / 12.0).sqrt(),
                skewness: 0.0,
                kurtosis: 1.8,
            },
            (0.0, 1.0),
        )
        .unwrap();
        assert!(uni.entropy().abs() < 0.01, "entropy = {}", uni.entropy());

        let peaked = MaxEntDensity::from_summary(
            &MomentSummary {
                mean: 0.5,
                std: 0.08,
                skewness: 0.0,
                kurtosis: 3.0,
            },
            (0.0, 1.0),
        )
        .unwrap();
        assert!(peaked.entropy() < uni.entropy());
    }

    #[test]
    fn degenerate_summary_is_rejected() {
        let spec = MomentSummary {
            mean: 1.0,
            std: 0.0,
            skewness: 0.0,
            kurtosis: 3.0,
        };
        assert!(MaxEntDensity::from_summary(&spec, (0.0, 2.0)).is_err());
    }

    #[test]
    fn non_finite_summary_is_degenerate_not_nonconvergent() {
        let spec = MomentSummary {
            mean: f64::NAN,
            std: 1.0,
            skewness: 0.0,
            kurtosis: 3.0,
        };
        match MaxEntDensity::from_summary(&spec, (0.0, 2.0)) {
            Err(StatsError::DegenerateInput { .. }) => {}
            other => panic!("expected DegenerateInput, got {other:?}"),
        }
    }

    #[test]
    fn mean_outside_support_is_rejected() {
        let spec = MomentSummary {
            mean: 10.0,
            std: 0.5,
            skewness: 0.0,
            kurtosis: 3.0,
        };
        assert!(MaxEntDensity::from_summary(&spec, (0.0, 2.0)).is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = MaxEntDensity::from_summary(&normal_spec(), (-4.0, 4.0)).unwrap();
        let mut r1 = Xoshiro256pp::seed_from_u64(9);
        let mut r2 = Xoshiro256pp::seed_from_u64(9);
        assert_eq!(d.sample_n(&mut r1, 64), d.sample_n(&mut r2, 64));
    }

    #[test]
    fn samples_stay_in_support() {
        let d = MaxEntDensity::from_summary(&normal_spec(), (-3.0, 3.0)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let xs = d.sample_n(&mut rng, 5000);
        assert!(xs.iter().all(|&x| (-3.0..=3.0).contains(&x)));
    }
}
