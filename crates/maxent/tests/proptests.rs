//! Property tests for the maximum-entropy solver.

use proptest::prelude::*;
use pv_maxent::{central_to_raw_moments, MaxEntDensity};
use pv_stats::moments::MomentSummary;
use pv_stats::quadrature::GaussLegendre;

/// Moment specs the four-moment problem can realistically satisfy on a
/// generous support: moderate skew, kurtosis in a band above the
/// feasibility floor.
fn solvable_spec() -> impl Strategy<Value = MomentSummary> {
    (-0.8..0.8f64, 0.2..1.6f64).prop_map(|(skew, excess)| MomentSummary {
        mean: 0.0,
        std: 1.0,
        skewness: skew,
        kurtosis: (skew * skew + 1.2 + excess).min(4.2),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn solutions_integrate_to_one(spec in solvable_spec()) {
        if let Ok(d) = MaxEntDensity::from_summary(&spec, (-8.0, 8.0)) {
            let gl = GaussLegendre::new(128).unwrap();
            let mass = gl.integrate(-8.0, 8.0, |x| d.pdf(x));
            prop_assert!((mass - 1.0).abs() < 1e-4, "mass = {mass}");
        }
    }

    #[test]
    fn solutions_match_their_moments(spec in solvable_spec()) {
        if let Ok(d) = MaxEntDensity::from_summary(&spec, (-8.0, 8.0)) {
            let gl = GaussLegendre::new(128).unwrap();
            let mu = central_to_raw_moments(&spec);
            for (k, &mu_k) in mu.iter().enumerate().take(5).skip(1) {
                let got = gl.integrate(-8.0, 8.0, |x| x.powi(k as i32) * d.pdf(x));
                prop_assert!(
                    (got - mu_k).abs() < 1e-3 * (1.0 + mu_k.abs()),
                    "moment {k}: {got} vs {mu_k}"
                );
            }
        }
    }

    #[test]
    fn cdf_is_monotone(spec in solvable_spec()) {
        if let Ok(d) = MaxEntDensity::from_summary(&spec, (-8.0, 8.0)) {
            let mut prev = -1e-12;
            for i in 0..=32 {
                let x = -8.0 + 16.0 * i as f64 / 32.0;
                let c = d.cdf(x);
                prop_assert!(c >= prev - 1e-9);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
                prev = c;
            }
        }
    }

    #[test]
    fn samples_stay_in_support(spec in solvable_spec(), n in 1usize..500) {
        use rand::SeedableRng;
        if let Ok(d) = MaxEntDensity::from_summary(&spec, (-8.0, 8.0)) {
            let mut rng = pv_stats::rng::Xoshiro256pp::seed_from_u64(3);
            for x in d.sample_n(&mut rng, n) {
                prop_assert!((-8.0..=8.0).contains(&x));
            }
        }
    }
}
