//! Feature standardization.
//!
//! Profile metrics span wildly different magnitudes (cycles per second vs.
//! page faults per second); tree models don't care, but kNN distances do.
//! The paper normalizes metrics per second and the pipeline additionally
//! standardizes features before kNN.

use serde::{Deserialize, Serialize};

use pv_stats::moments::Moments;
use pv_stats::StatsError;

use crate::dataset::DenseMatrix;
use crate::Result;

/// Z-score standardizer: `x ↦ (x − μ) / σ` per column.
///
/// Columns with zero variance map to zero (their information content is
/// nil and dividing by σ = 0 would poison the row).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        StandardScaler::default()
    }

    /// Learns per-column means and standard deviations.
    ///
    /// # Errors
    /// Fails on an empty matrix.
    pub fn fit(&mut self, x: &DenseMatrix) -> Result<()> {
        if x.rows() == 0 {
            return Err(StatsError::EmptyInput {
                what: "StandardScaler::fit",
                needed: 1,
                got: 0,
            });
        }
        let mut accs = vec![Moments::new(); x.cols()];
        for r in 0..x.rows() {
            for (acc, &v) in accs.iter_mut().zip(x.row(r)) {
                acc.push(v);
            }
        }
        self.means = accs.iter().map(|a| a.mean()).collect();
        self.stds = accs.iter().map(|a| a.population_std()).collect();
        Ok(())
    }

    /// Learns per-column statistics from borrowed row slices.
    ///
    /// Accumulates the same per-column [`Moments`] in the same row order
    /// as [`StandardScaler::fit`], so fitting on borrowed fold rows is
    /// bit-identical to materializing the fold matrix first.
    ///
    /// # Errors
    /// Fails on empty input or ragged rows.
    pub fn fit_rows(&mut self, rows: &[&[f64]]) -> Result<()> {
        if rows.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "StandardScaler::fit",
                needed: 1,
                got: 0,
            });
        }
        let cols = rows[0].len();
        let mut accs = vec![Moments::new(); cols];
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(StatsError::invalid(
                    "StandardScaler::fit_rows",
                    format!("row {i} has {} features, expected {cols}", r.len()),
                ));
            }
            for (acc, &v) in accs.iter_mut().zip(*r) {
                acc.push(v);
            }
        }
        self.means = accs.iter().map(|a| a.mean()).collect();
        self.stds = accs.iter().map(|a| a.population_std()).collect();
        Ok(())
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        !self.means.is_empty()
    }

    /// Transforms one row in place.
    ///
    /// # Errors
    /// Fails when unfitted or on width mismatch.
    pub fn transform_row(&self, row: &mut [f64]) -> Result<()> {
        if !self.is_fitted() {
            return Err(StatsError::invalid("StandardScaler", "not fitted"));
        }
        if row.len() != self.means.len() {
            return Err(StatsError::invalid(
                "StandardScaler",
                format!(
                    "row has {} features, scaler has {}",
                    row.len(),
                    self.means.len()
                ),
            ));
        }
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = if *s > 0.0 { (*v - m) / s } else { 0.0 };
        }
        Ok(())
    }

    /// Transforms a whole matrix, returning a new one.
    ///
    /// # Errors
    /// Fails when unfitted or on width mismatch.
    pub fn transform(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = x.clone();
        for r in 0..out.rows() {
            self.transform_row(out.row_mut(r))?;
        }
        Ok(out)
    }

    /// Fits and transforms in one step.
    ///
    /// # Errors
    /// Same as [`StandardScaler::fit`].
    pub fn fit_transform(&mut self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.fit(x)?;
        self.transform(x)
    }

    /// Undoes the transformation for one row.
    ///
    /// # Errors
    /// Fails when unfitted or on width mismatch.
    pub fn inverse_row(&self, row: &mut [f64]) -> Result<()> {
        if !self.is_fitted() {
            return Err(StatsError::invalid("StandardScaler", "not fitted"));
        }
        if row.len() != self.means.len() {
            return Err(StatsError::invalid(
                "StandardScaler",
                format!(
                    "row has {} features, scaler has {}",
                    row.len(),
                    self.means.len()
                ),
            ));
        }
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = if *s > 0.0 { *v * s + m } else { *m };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn transformed_columns_have_zero_mean_unit_std() {
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&matrix()).unwrap();
        for c in 0..2 {
            let col = t.column(c);
            let m = Moments::from_slice(&col);
            assert!(m.mean().abs() < 1e-12, "col {c}");
            assert!((m.population_std() - 1.0).abs() < 1e-12, "col {c}");
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&matrix()).unwrap();
        assert_eq!(t.column(2), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn inverse_roundtrips() {
        let mut s = StandardScaler::new();
        let x = matrix();
        let t = s.fit_transform(&x).unwrap();
        for r in 0..x.rows() {
            let mut row = t.row(r).to_vec();
            s.inverse_row(&mut row).unwrap();
            for (got, want) in row.iter().zip(x.row(r)) {
                assert!((got - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn unfitted_or_mismatched_usage_errors() {
        let s = StandardScaler::new();
        let mut row = vec![1.0];
        assert!(s.transform_row(&mut row).is_err());

        let mut s = StandardScaler::new();
        s.fit(&matrix()).unwrap();
        let mut short = vec![1.0];
        assert!(s.transform_row(&mut short).is_err());
        assert!(s.inverse_row(&mut short).is_err());
    }

    #[test]
    fn empty_matrix_rejected() {
        let mut s = StandardScaler::new();
        assert!(s.fit(&DenseMatrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn fit_rows_is_bit_identical_to_fit() {
        let x = matrix();
        let mut a = StandardScaler::new();
        a.fit(&x).unwrap();
        let rows: Vec<&[f64]> = (0..x.rows()).map(|r| x.row(r)).collect();
        let mut b = StandardScaler::new();
        b.fit_rows(&rows).unwrap();
        let mut ra = x.row(1).to_vec();
        let mut rb = ra.clone();
        a.transform_row(&mut ra).unwrap();
        b.transform_row(&mut rb).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn fit_rows_rejects_empty_and_ragged() {
        let mut s = StandardScaler::new();
        assert!(s.fit_rows(&[]).is_err());
        let ragged: Vec<&[f64]> = vec![&[1.0, 2.0], &[1.0]];
        assert!(s.fit_rows(&ragged).is_err());
    }
}
