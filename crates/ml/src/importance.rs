//! Feature-importance estimation.
//!
//! Two complementary views, mirroring scikit-learn:
//!
//! * **impurity importance** — trees and forests expose the total split
//!   gain credited to each feature ([`crate::tree::RegressionTree::feature_importances`],
//!   [`forest_importances`]);
//! * **permutation importance** — model-agnostic: how much does the MSE
//!   degrade when one feature column is shuffled? Works for any
//!   [`Regressor`], including kNN, and is the tool a `perfvar` user needs
//!   to ask *"which perf counters actually drive the distribution
//!   prediction?"*.

use pv_stats::rng::{derive_stream, Xoshiro256pp};
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::forest::RandomForestRegressor;
use crate::metrics::mse;
use crate::{Regressor, Result};

/// Mean impurity importance across a fitted forest's trees (normalized to
/// sum to 1; empty when unfitted).
pub fn forest_importances(forest: &RandomForestRegressor) -> Vec<f64> {
    let trees = forest.trees();
    if trees.is_empty() {
        return Vec::new();
    }
    let d = trees[0].feature_importances().len();
    let mut acc = vec![0.0; d];
    for t in trees {
        for (a, v) in acc.iter_mut().zip(t.feature_importances()) {
            *a += v;
        }
    }
    let total: f64 = acc.iter().sum();
    if total > 0.0 {
        for a in acc.iter_mut() {
            *a /= total;
        }
    }
    acc
}

/// Permutation importance of every feature: the increase in MSE on
/// `data` when that feature's column is shuffled, averaged over
/// `n_repeats` shuffles. Larger = more important; ~0 (or negative) =
/// irrelevant.
///
/// # Errors
/// Propagates prediction failures; fails on an empty dataset.
pub fn permutation_importance<M: Regressor + ?Sized>(
    model: &M,
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    let base_pred = model.predict_batch(&data.x)?;
    let base_err = mse(&data.y, &base_pred)?;
    let n = data.len();
    let d = data.n_features();
    let mut out = vec![0.0; d];
    for (f, slot) in out.iter_mut().enumerate() {
        let mut total = 0.0;
        for rep in 0..n_repeats.max(1) {
            let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(seed, (f * 1009 + rep) as u64));
            // Shuffle column f with Fisher–Yates over a copy of X.
            let mut x = data.x.clone();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                let vi = x.get(i, f);
                let vj = x.get(j, f);
                x.set(i, f, vj);
                x.set(j, f, vi);
            }
            let pred = model.predict_batch(&x)?;
            total += mse(&data.y, &pred)? - base_err;
        }
        *slot = total / n_repeats.max(1) as f64;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DenseMatrix;
    use crate::knn::KnnRegressor;
    use crate::tree::RegressionTree;
    use crate::Distance;

    /// y depends only on feature 0; feature 1 is noise.
    fn informative_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let x0 = i as f64;
            let noise = ((i * 37) % 11) as f64;
            rows.push(vec![x0, noise]);
            ys.push(vec![3.0 * x0]);
        }
        Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn tree_impurity_importance_finds_the_signal() {
        let mut t = RegressionTree::default_cart();
        let data = informative_dataset();
        t.fit(&data).unwrap();
        let imp = t.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.9, "importances = {imp:?}");
    }

    #[test]
    fn stump_has_zero_importance() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![5.0], vec![5.0]]).unwrap();
        let mut t = RegressionTree::default_cart();
        t.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        assert_eq!(t.feature_importances(), &[0.0]);
    }

    #[test]
    fn forest_importance_aggregates_trees() {
        let mut f = RandomForestRegressor::new(20).with_seed(1);
        let data = informative_dataset();
        f.fit(&data).unwrap();
        let imp = forest_importances(&f);
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.7, "importances = {imp:?}");
    }

    #[test]
    fn unfitted_forest_importance_is_empty() {
        let f = RandomForestRegressor::new(5);
        assert!(forest_importances(&f).is_empty());
    }

    #[test]
    fn permutation_importance_ranks_features_for_knn() {
        let data = informative_dataset();
        let mut m = KnnRegressor::new(3).with_distance(Distance::Euclidean);
        m.fit(&data).unwrap();
        let imp = permutation_importance(&m, &data, 3, 7).unwrap();
        assert_eq!(imp.len(), 2);
        assert!(imp[0] > 10.0 * imp[1].max(1e-9), "importances = {imp:?}");
    }

    #[test]
    fn permutation_importance_is_deterministic() {
        let data = informative_dataset();
        let mut m = KnnRegressor::new(3).with_distance(Distance::Euclidean);
        m.fit(&data).unwrap();
        let a = permutation_importance(&m, &data, 2, 9).unwrap();
        let b = permutation_importance(&m, &data, 2, 9).unwrap();
        assert_eq!(a, b);
    }
}
