//! Multi-output CART regression trees.
//!
//! The shared building block of the [random forest](crate::forest) and the
//! [gradient booster](crate::gbt). Splits minimize the summed squared
//! error across *all* target outputs (the natural multi-output extension
//! of variance reduction), computed in O(n) per feature via prefix sums
//! over sorted rows.
//!
//! Leaf values support an optional L2 shrinkage `λ` (`value = Σy / (n+λ)`),
//! which is exactly the XGBoost leaf-weight formula for squared loss —
//! plain CART uses λ = 0.

use serde::{Deserialize, Serialize};

use pv_stats::rng::Xoshiro256pp;
use pv_stats::StatsError;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::{Regressor, Result};

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Number of candidate features per node (`None` = all).
    pub max_features: Option<usize>,
    /// L2 leaf shrinkage λ: leaf value = Σy / (n + λ).
    pub leaf_lambda: f64,
    /// Seed for per-node feature subsampling.
    pub seed: u64,
    /// Split-finding strategy. `false` (the default, and the path every
    /// pinned golden runs on) sorts each node's rows per feature; `true`
    /// pre-bins every feature into ≤ 256 value bins once per fit and
    /// finds splits with an O(n + bins) histogram scan per feature.
    pub binned: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            leaf_lambda: 0.0,
            seed: 0,
            binned: false,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted multi-output regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    /// Growth configuration.
    pub config: TreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    n_outputs: usize,
    importance: Vec<f64>,
}

impl RegressionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        RegressionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
            n_outputs: 0,
            importance: Vec::new(),
        }
    }

    /// Impurity-based feature importances: total SSE reduction credited to
    /// splits on each feature, normalized to sum to 1 (all zeros for a
    /// stump). Available after `fit`.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importance
    }

    /// Creates an unfitted tree with default CART settings.
    pub fn default_cart() -> Self {
        RegressionTree::new(TreeConfig::default())
    }

    /// [`Regressor::fit`] with a pre-built bin table (see [`BinView`]):
    /// `map`, when present, sends each of `data`'s rows to the row of
    /// the table's corpus it replicates. Ensembles bin their corpus once
    /// and fit every member through here.
    ///
    /// # Errors
    /// Same contract as [`Regressor::fit`].
    pub(crate) fn fit_with_shared_bins(
        &mut self,
        data: &Dataset,
        bins: &BinnedFeatures,
        map: Option<&[usize]>,
    ) -> Result<()> {
        validate_fit_input(data)?;
        self.fit_trunk(data, Some(BinView { bins, map }));
        Ok(())
    }

    /// The common fit body: grows the tree with an optional histogram
    /// bin view. Input validation is the caller's job.
    fn fit_trunk(&mut self, data: &Dataset, bins: Option<BinView<'_>>) {
        let t = data.n_outputs();
        let nb = match &bins {
            Some(view) => view
                .bins
                .thresholds
                .iter()
                .map(|t| t.len() + 1)
                .max()
                .unwrap_or(1),
            None => 0,
        };
        let mut builder = Builder {
            data,
            cfg: self.config,
            rng: Xoshiro256pp::seed_from_u64(self.config.seed),
            nodes: Vec::new(),
            importance: vec![0.0; data.n_features()],
            bins,
            scratch: Vec::with_capacity(data.len()),
            left: vec![0.0; t],
            hist_counts: vec![0; nb],
            hist_sums: vec![0.0; nb * t],
            hist_sqs: vec![0.0; nb],
        };
        let mut idx: Vec<usize> = (0..data.len()).collect();
        builder.build(&mut idx, 0);
        self.nodes = builder.nodes;
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        // Normalize importances to a distribution over features.
        let total: f64 = builder.importance.iter().sum();
        if total > 0.0 {
            for v in builder.importance.iter_mut() {
                *v /= total;
            }
        }
        self.importance = builder.importance;
    }

    /// Number of nodes in the fitted tree (0 when unfitted).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Per-feature value binning, built once per fit when
/// [`TreeConfig::binned`] is set.
///
/// When a feature has ≤ 256 distinct values each value gets its own bin
/// and the candidate thresholds coincide with the exact path's adjacent-
/// value midpoints; otherwise bins are equal-frequency quantile cuts.
/// Split finding then replaces the exact path's per-node O(n log n) sort
/// with one O(n) histogram fill plus an O(bins) boundary scan.
pub(crate) struct BinnedFeatures {
    n_rows: usize,
    /// Column-major bin codes: `codes[f · n_rows + i]` is row `i`'s bin.
    codes: Vec<u8>,
    /// Per feature, the candidate threshold between bins `b` and `b+1`:
    /// the midpoint of bin `b`'s maximum and bin `b+1`'s minimum value,
    /// so `value ≤ threshold` reproduces the code partition. Empty for
    /// constant features.
    thresholds: Vec<Vec<f64>>,
}

impl BinnedFeatures {
    const MAX_BINS: usize = 256;

    /// Bins `data.x` (targets are never read, so one table serves every
    /// bootstrap replicate of a forest and every residual round of a
    /// boosting fit).
    pub(crate) fn build(data: &Dataset) -> Self {
        let n = data.len();
        let d = data.n_features();
        let mut codes = vec![0u8; d * n];
        let mut thresholds = Vec::with_capacity(d);
        let mut sorted: Vec<f64> = Vec::with_capacity(n);
        for f in 0..d {
            sorted.clear();
            sorted.extend((0..n).map(|i| data.x.get(i, f)));
            sorted.sort_unstable_by(f64::total_cmp);
            // Bin upper bounds: every distinct value when they fit in
            // 256 bins, else equal-frequency quantile cuts (the final
            // cut lands on the maximum, so every value has a bin).
            let mut uppers: Vec<f64> = Vec::with_capacity(Self::MAX_BINS);
            uppers.push(sorted[0]);
            for &v in &sorted[1..] {
                if v != *uppers.last().expect("nonempty") {
                    uppers.push(v);
                }
            }
            if uppers.len() > Self::MAX_BINS {
                uppers.clear();
                for b in 1..=Self::MAX_BINS {
                    let v = sorted[b * n / Self::MAX_BINS - 1];
                    if uppers.last() != Some(&v) {
                        uppers.push(v);
                    }
                }
            }
            // Threshold between b and b+1: midpoint of bin b's upper
            // bound and the smallest value strictly above it.
            let mut th = Vec::with_capacity(uppers.len().saturating_sub(1));
            let mut j = 0usize;
            for &upper in uppers.iter().take(uppers.len().saturating_sub(1)) {
                while j < n && sorted[j] <= upper {
                    j += 1;
                }
                th.push(0.5 * (upper + sorted[j]));
            }
            for i in 0..n {
                let v = data.x.get(i, f);
                codes[f * n + i] = uppers.partition_point(|u| *u < v) as u8;
            }
            thresholds.push(th);
        }
        BinnedFeatures {
            n_rows: n,
            codes,
            thresholds,
        }
    }

    #[inline]
    fn code(&self, f: usize, i: usize) -> usize {
        self.codes[f * self.n_rows + i] as usize
    }
}

/// A borrowed bin table, optionally re-indexed: `map[i]` is the row in
/// the table's corpus that the builder's row `i` is a copy of. `None`
/// means the identity (the builder trains on the table's own corpus).
/// This is what lets an ensemble bin once and train each member on a
/// bootstrap/subsample replicate without rebuilding the table.
#[derive(Clone, Copy)]
pub(crate) struct BinView<'b> {
    pub(crate) bins: &'b BinnedFeatures,
    pub(crate) map: Option<&'b [usize]>,
}

impl BinView<'_> {
    #[inline]
    fn code(&self, f: usize, i: usize) -> usize {
        let i = match self.map {
            Some(m) => m[i],
            None => i,
        };
        self.bins.code(f, i)
    }

    #[inline]
    fn thresholds(&self, f: usize) -> &[f64] {
        &self.bins.thresholds[f]
    }
}

/// Shared split-growing state. The scratch buffers (`scratch`, `left`,
/// the `hist_*` histograms) live here so one allocation serves every
/// node of the tree instead of being re-made per split search.
struct Builder<'a> {
    data: &'a Dataset,
    cfg: TreeConfig,
    rng: Xoshiro256pp,
    nodes: Vec<Node>,
    importance: Vec<f64>,
    bins: Option<BinView<'a>>,
    scratch: Vec<(f64, u32)>,
    left: Vec<f64>,
    hist_counts: Vec<u32>,
    hist_sums: Vec<f64>,
    hist_sqs: Vec<f64>,
}

impl<'a> Builder<'a> {
    /// Leaf value Σy/(n+λ) over the rows in `idx`.
    #[inline]
    fn leaf_value(&self, idx: &[usize]) -> Vec<f64> {
        let t = self.data.n_outputs();
        let mut v = vec![0.0; t];
        for &i in idx {
            for (acc, y) in v.iter_mut().zip(self.data.y.row(i)) {
                *acc += y;
            }
        }
        let denom = idx.len() as f64 + self.cfg.leaf_lambda;
        for acc in v.iter_mut() {
            *acc /= denom;
        }
        v
    }

    /// Finds the best (feature, threshold) split of `idx`, returning
    /// `(feature, threshold, gain)`; `None` when no valid split exists.
    fn best_split(&mut self, idx: &mut [usize]) -> Option<(usize, f64, f64)> {
        let n = idx.len();
        let d = self.data.n_features();
        let t = self.data.n_outputs();
        if n < self.cfg.min_samples_split || n < 2 * self.cfg.min_samples_leaf {
            return None;
        }

        // Parent SSE components: Σy per output and the scalar Σ_k Σ y².
        let mut tot = vec![0.0; t];
        let mut tot2_sum = 0.0;
        for &i in idx.iter() {
            for (acc, &y) in tot.iter_mut().zip(self.data.y.row(i)) {
                *acc += y;
                tot2_sum += y * y;
            }
        }
        let parent_sse: f64 = tot2_sum - tot.iter().map(|s| s * s).sum::<f64>() / n as f64;
        if parent_sse <= 1e-12 {
            return None; // already pure
        }

        // Candidate features: all, or a random subset per node.
        let n_cand = self.cfg.max_features.unwrap_or(d).clamp(1, d);
        let mut features: Vec<usize> = (0..d).collect();
        if n_cand < d {
            // Partial Fisher–Yates for the first n_cand slots.
            for i in 0..n_cand {
                let j = self.rng.gen_range(i..d);
                features.swap(i, j);
            }
            features.truncate(n_cand);
        }

        let mut best: Option<(usize, f64, f64)> = None;
        let min_leaf = self.cfg.min_samples_leaf.max(1);
        // Disjoint field borrows: the bin table is read while the
        // scratch/histogram buffers are written.
        let Builder {
            data,
            bins,
            scratch,
            left,
            hist_counts,
            hist_sums,
            hist_sqs,
            ..
        } = self;
        let data: &Dataset = data;
        // Kernel choice is per node *and* per feature: the histogram
        // kernel replaces an O(n log n) sort with an O(n) fill — but its
        // O(bins) clear + boundary scan is paid regardless of node size,
        // so on nodes smaller than the bin count (the vast majority of
        // nodes in a deep tree) the exact sort kernel is cheaper. Both
        // kernels induce the same row partitions on data with ≤ 256
        // distinct values per feature, where bin boundaries coincide
        // with adjacent-value midpoints.
        for &f in &features {
            match bins.as_ref() {
                // A globally constant feature can never split any node.
                Some(bins) if bins.thresholds(f).is_empty() => continue,
                Some(bins) if n > bins.thresholds(f).len() => {
                    let th = bins.thresholds(f);
                    let nb = th.len() + 1;
                    let counts = &mut hist_counts[..nb];
                    counts.fill(0);
                    let sums = &mut hist_sums[..nb * t];
                    sums.fill(0.0);
                    let sqs = &mut hist_sqs[..nb];
                    sqs.fill(0.0);
                    for &i in idx.iter() {
                        let b = bins.code(f, i);
                        counts[b] += 1;
                        let mut sq = 0.0;
                        for (acc, &y) in sums[b * t..(b + 1) * t].iter_mut().zip(data.y.row(i)) {
                            if y != 0.0 {
                                *acc += y;
                                sq += y * y;
                            }
                        }
                        sqs[b] += sq;
                    }
                    left.iter_mut().for_each(|v| *v = 0.0);
                    let mut left_sq = 0.0;
                    let mut nl = 0usize;
                    for b in 0..nb - 1 {
                        nl += counts[b] as usize;
                        for (l, s) in left.iter_mut().zip(&sums[b * t..(b + 1) * t]) {
                            *l += s;
                        }
                        left_sq += sqs[b];
                        let nr = n - nl;
                        if nl < min_leaf || nr < min_leaf {
                            continue;
                        }
                        let mut sum_l2 = 0.0;
                        let mut sum_r2 = 0.0;
                        for (l, t0) in left.iter().zip(&tot) {
                            sum_l2 += l * l;
                            let r = t0 - l;
                            sum_r2 += r * r;
                        }
                        let sse = (left_sq - sum_l2 / nl as f64)
                            + ((tot2_sum - left_sq) - sum_r2 / nr as f64);
                        let gain = parent_sse - sse;
                        // Strict improvement: an empty bin's boundary
                        // repeats the previous partition with equal gain
                        // and is skipped.
                        if gain > best.map_or(1e-12, |b: (usize, f64, f64)| b.2) {
                            best = Some((f, th[b], gain));
                        }
                    }
                }
                _ => {
                    // Scratch of (feature value, row) pairs: sorting a
                    // contiguous key buffer is several times faster than
                    // sorting `idx` through an indirect matrix-access
                    // comparator, and this loop dominates tree (and
                    // therefore forest/boosting) training time.
                    scratch.clear();
                    scratch.extend(idx.iter().map(|&i| (data.x.get(i, f), i as u32)));
                    scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                    if scratch[0].0 == scratch[n - 1].0 {
                        continue; // constant feature in this node
                    }
                    left.iter_mut().for_each(|v| *v = 0.0);
                    // Σ_k left2_k only ever appears summed over outputs,
                    // so track it as a scalar; histogram-style targets
                    // are mostly zeros, and skipping them cuts the
                    // dominant accumulation loop.
                    let mut left_sq = 0.0;
                    for pos in 0..n - 1 {
                        let row = scratch[pos].1 as usize;
                        for (l, &y) in left.iter_mut().zip(data.y.row(row)) {
                            if y != 0.0 {
                                *l += y;
                                left_sq += y * y;
                            }
                        }
                        let nl = pos + 1;
                        let nr = n - nl;
                        if nl < min_leaf || nr < min_leaf {
                            continue;
                        }
                        let xl = scratch[pos].0;
                        let xr = scratch[pos + 1].0;
                        if xl == xr {
                            continue; // can't split between equal values
                        }
                        // SSE_left + SSE_right, vectorized over outputs:
                        //   Σ_k left2_k − (Σ_k left_k²)/nl
                        // + (tot2 − Σ_k left2_k) − (Σ_k (tot_k − left_k)²)/nr
                        let mut sum_l2 = 0.0;
                        let mut sum_r2 = 0.0;
                        for (l, t0) in left.iter().zip(&tot) {
                            sum_l2 += l * l;
                            let r = t0 - l;
                            sum_r2 += r * r;
                        }
                        let sse = (left_sq - sum_l2 / nl as f64)
                            + ((tot2_sum - left_sq) - sum_r2 / nr as f64);
                        let gain = parent_sse - sse;
                        if gain > best.map_or(1e-12, |b| b.2) {
                            best = Some((f, 0.5 * (xl + xr), gain));
                        }
                    }
                }
            }
        }
        best
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> usize {
        let make_leaf = depth >= self.cfg.max_depth || idx.len() < self.cfg.min_samples_split;
        let split = if make_leaf {
            None
        } else {
            self.best_split(idx)
        };
        match split {
            None => {
                let value = self.leaf_value(idx);
                self.nodes.push(Node::Leaf { value });
                self.nodes.len() - 1
            }
            Some((feature, threshold, gain)) => {
                self.importance[feature] += gain;
                // Partition indices around the threshold.
                let mid = itertools_partition(idx, |&i| self.data.x.get(i, feature) <= threshold);
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: Vec::new() }); // placeholder
                let (l_idx, r_idx) = idx.split_at_mut(mid);
                let left = self.build(l_idx, depth + 1);
                let right = self.build(r_idx, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

/// Stable-enough in-place partition; returns the number of elements
/// satisfying the predicate (moved to the front).
#[inline]
fn itertools_partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

/// The shared fit-input contract: non-empty, all-finite data.
fn validate_fit_input(data: &Dataset) -> Result<()> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput {
            what: "RegressionTree::fit",
            needed: 1,
            got: 0,
        });
    }
    if data.x.as_slice().iter().any(|v| !v.is_finite())
        || data.y.as_slice().iter().any(|v| !v.is_finite())
    {
        return Err(StatsError::NonFinite {
            what: "RegressionTree::fit",
        });
    }
    Ok(())
}

impl Regressor for RegressionTree {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        validate_fit_input(data)?;
        let owned = self.config.binned.then(|| BinnedFeatures::build(data));
        self.fit_trunk(data, owned.as_ref().map(|bins| BinView { bins, map: None }));
        Ok(())
    }

    #[inline]
    fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.nodes.is_empty() {
            return Err(StatsError::invalid("RegressionTree", "model not fitted"));
        }
        if x.len() != self.n_features {
            return Err(StatsError::invalid(
                "RegressionTree::predict",
                format!(
                    "row has {} features, model expects {}",
                    x.len(),
                    self.n_features
                ),
            ));
        }
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return Ok(value.clone()),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DenseMatrix;

    fn step_dataset() -> Dataset {
        // y = 0 for x < 5, y = 10 for x ≥ 5 (plus second output = -y).
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let v = if i < 10 { 0.0 } else { 10.0 };
                vec![v, -v]
            })
            .collect();
        Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let mut t = RegressionTree::default_cart();
        t.fit(&step_dataset()).unwrap();
        assert_eq!(t.predict(&[3.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(t.predict(&[15.0]).unwrap(), vec![10.0, -10.0]);
        // The split threshold sits between 9 and 10.
        assert_eq!(t.predict(&[9.4]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(t.predict(&[9.6]).unwrap(), vec![10.0, -10.0]);
    }

    #[test]
    fn pure_targets_make_a_single_leaf() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]).unwrap();
        let mut t = RegressionTree::default_cart();
        t.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]).unwrap(), vec![7.0]);
    }

    #[test]
    fn max_depth_limits_growth() {
        let cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let mut t = RegressionTree::new(cfg);
        // y = x: would need many splits to fit exactly.
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        t.fit(
            &Dataset::ungrouped(
                DenseMatrix::from_rows(&rows).unwrap(),
                DenseMatrix::from_rows(&ys).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
        assert!(t.depth() <= 1);
        assert!(t.n_nodes() <= 3);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let cfg = TreeConfig {
            min_samples_leaf: 8,
            ..TreeConfig::default()
        };
        let mut t = RegressionTree::new(cfg);
        t.fit(&step_dataset()).unwrap();
        // Both children of the root have ≥ 8 samples; with a 10/10 step
        // the exact split is still allowed.
        assert!(t.depth() >= 1);
        // A leaf-size of 8 on 20 points allows at most two levels.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn leaf_lambda_shrinks_leaf_values() {
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![10.0], vec![10.0]]).unwrap();
        let cfg = TreeConfig {
            leaf_lambda: 2.0,
            ..TreeConfig::default()
        };
        let mut t = RegressionTree::new(cfg);
        t.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        // Leaf value = 20 / (2 + 2) = 5 (shrunk from 10).
        assert_eq!(t.predict(&[0.5]).unwrap(), vec![5.0]);
    }

    #[test]
    fn multi_feature_picks_the_informative_one() {
        // Feature 0 is noise (constant); feature 1 carries the signal.
        let rows: Vec<Vec<f64>> = (0..16).map(|i| vec![1.0, (i % 2) as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..16).map(|i| vec![(i % 2) as f64 * 4.0]).collect();
        let mut t = RegressionTree::default_cart();
        t.fit(
            &Dataset::ungrouped(
                DenseMatrix::from_rows(&rows).unwrap(),
                DenseMatrix::from_rows(&ys).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), vec![0.0]);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), vec![4.0]);
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let data = step_dataset();
        let cfg = TreeConfig {
            max_features: Some(1),
            seed: 7,
            ..TreeConfig::default()
        };
        let mut t1 = RegressionTree::new(cfg);
        let mut t2 = RegressionTree::new(cfg);
        t1.fit(&data).unwrap();
        t2.fit(&data).unwrap();
        for x in [0.0, 5.0, 12.0] {
            assert_eq!(t1.predict(&[x]).unwrap(), t2.predict(&[x]).unwrap());
        }
    }

    #[test]
    fn invalid_usage_errors() {
        let t = RegressionTree::default_cart();
        assert!(t.predict(&[1.0]).is_err()); // unfitted

        let mut t = RegressionTree::default_cart();
        t.fit(&step_dataset()).unwrap();
        assert!(t.predict(&[1.0, 2.0]).is_err()); // wrong width

        let x = DenseMatrix::from_rows(&[vec![f64::NAN]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0]]).unwrap();
        let mut t = RegressionTree::default_cart();
        assert!(t.fit(&Dataset::ungrouped(x, y).unwrap()).is_err());
    }

    /// Deterministic integer-valued dataset: every split-gain
    /// accumulation is exact in f64, so the histogram scan must pick
    /// the same partitions and leaf values as the sorted exact path.
    fn integer_dataset(n: usize, modulus: u64) -> Dataset {
        let mut state = 0x1234_5678_9abc_def0_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % modulus
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![next() as f64, next() as f64, next() as f64])
            .collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let v = r[0] + 3.0 * r[1] - r[2];
                vec![v, (r[1] as u64 % 5) as f64]
            })
            .collect();
        Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn binned_split_matches_exact_on_integer_data() {
        // ≤ 256 distinct values per feature → bins are exactly the
        // distinct values, thresholds the same adjacent-value midpoints,
        // and integer arithmetic keeps every gain bit-identical.
        let data = integer_dataset(300, 40);
        for max_features in [None, Some(2)] {
            let cfg = TreeConfig {
                max_depth: 10,
                max_features,
                seed: 9,
                ..TreeConfig::default()
            };
            let mut exact = RegressionTree::new(cfg);
            let mut binned = RegressionTree::new(TreeConfig {
                binned: true,
                ..cfg
            });
            exact.fit(&data).unwrap();
            binned.fit(&data).unwrap();
            assert_eq!(exact.n_nodes(), binned.n_nodes());
            assert_eq!(exact.depth(), binned.depth());
            for r in 0..data.len() {
                let pe = exact.predict(data.x.row(r)).unwrap();
                let pb = binned.predict(data.x.row(r)).unwrap();
                for (a, b) in pe.iter().zip(&pb) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
                }
            }
        }
    }

    #[test]
    fn binned_handles_more_than_256_distinct_values() {
        // 2,000 distinct values per feature forces the quantile-cut
        // path; the tree must still learn the function to tolerance.
        let data = integer_dataset(2000, 100_000);
        let mut t = RegressionTree::new(TreeConfig {
            max_depth: 12,
            binned: true,
            ..TreeConfig::default()
        });
        t.fit(&data).unwrap();
        let mut sse = 0.0;
        let mut var = 0.0;
        let mean: f64 = (0..data.len()).map(|r| data.y.get(r, 0)).sum::<f64>() / data.len() as f64;
        for r in 0..data.len() {
            let p = t.predict(data.x.row(r)).unwrap();
            sse += (p[0] - data.y.get(r, 0)).powi(2);
            var += (data.y.get(r, 0) - mean).powi(2);
        }
        assert!(sse < 0.05 * var, "sse {sse} vs var {var}");
    }

    #[test]
    fn partition_helper() {
        let mut v = vec![5, 2, 8, 1, 9, 3];
        let mid = itertools_partition(&mut v, |&x| x < 5);
        assert_eq!(mid, 3);
        assert!(v[..mid].iter().all(|&x| x < 5));
        assert!(v[mid..].iter().all(|&x| x >= 5));
    }
}
