//! Multi-output CART regression trees.
//!
//! The shared building block of the [random forest](crate::forest) and the
//! [gradient booster](crate::gbt). Splits minimize the summed squared
//! error across *all* target outputs (the natural multi-output extension
//! of variance reduction), computed in O(n) per feature via prefix sums
//! over sorted rows.
//!
//! Leaf values support an optional L2 shrinkage `λ` (`value = Σy / (n+λ)`),
//! which is exactly the XGBoost leaf-weight formula for squared loss —
//! plain CART uses λ = 0.

use serde::{Deserialize, Serialize};

use pv_stats::rng::Xoshiro256pp;
use pv_stats::StatsError;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::{Regressor, Result};

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Number of candidate features per node (`None` = all).
    pub max_features: Option<usize>,
    /// L2 leaf shrinkage λ: leaf value = Σy / (n + λ).
    pub leaf_lambda: f64,
    /// Seed for per-node feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            leaf_lambda: 0.0,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted multi-output regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    /// Growth configuration.
    pub config: TreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    n_outputs: usize,
    importance: Vec<f64>,
}

impl RegressionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        RegressionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
            n_outputs: 0,
            importance: Vec::new(),
        }
    }

    /// Impurity-based feature importances: total SSE reduction credited to
    /// splits on each feature, normalized to sum to 1 (all zeros for a
    /// stump). Available after `fit`.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importance
    }

    /// Creates an unfitted tree with default CART settings.
    pub fn default_cart() -> Self {
        RegressionTree::new(TreeConfig::default())
    }

    /// Number of nodes in the fitted tree (0 when unfitted).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Shared split-growing state.
struct Builder<'a> {
    data: &'a Dataset,
    cfg: TreeConfig,
    rng: Xoshiro256pp,
    nodes: Vec<Node>,
    importance: Vec<f64>,
}

impl<'a> Builder<'a> {
    /// Leaf value Σy/(n+λ) over the rows in `idx`.
    fn leaf_value(&self, idx: &[usize]) -> Vec<f64> {
        let t = self.data.n_outputs();
        let mut v = vec![0.0; t];
        for &i in idx {
            for (acc, y) in v.iter_mut().zip(self.data.y.row(i)) {
                *acc += y;
            }
        }
        let denom = idx.len() as f64 + self.cfg.leaf_lambda;
        for acc in v.iter_mut() {
            *acc /= denom;
        }
        v
    }

    /// Finds the best (feature, threshold) split of `idx`, returning
    /// `(feature, threshold, gain)`; `None` when no valid split exists.
    fn best_split(&mut self, idx: &mut [usize]) -> Option<(usize, f64, f64)> {
        let n = idx.len();
        let d = self.data.n_features();
        let t = self.data.n_outputs();
        if n < self.cfg.min_samples_split || n < 2 * self.cfg.min_samples_leaf {
            return None;
        }

        // Parent SSE components: Σy per output and the scalar Σ_k Σ y².
        let mut tot = vec![0.0; t];
        let mut tot2_sum = 0.0;
        for &i in idx.iter() {
            for (acc, &y) in tot.iter_mut().zip(self.data.y.row(i)) {
                *acc += y;
                tot2_sum += y * y;
            }
        }
        let parent_sse: f64 = tot2_sum - tot.iter().map(|s| s * s).sum::<f64>() / n as f64;
        if parent_sse <= 1e-12 {
            return None; // already pure
        }

        // Candidate features: all, or a random subset per node.
        let n_cand = self.cfg.max_features.unwrap_or(d).clamp(1, d);
        let mut features: Vec<usize> = (0..d).collect();
        if n_cand < d {
            // Partial Fisher–Yates for the first n_cand slots.
            for i in 0..n_cand {
                let j = self.rng.gen_range(i..d);
                features.swap(i, j);
            }
            features.truncate(n_cand);
        }

        let mut best: Option<(usize, f64, f64)> = None;
        let mut left = vec![0.0; t];
        // Scratch of (feature value, row) pairs: sorting a contiguous key
        // buffer is several times faster than sorting `idx` through an
        // indirect matrix-access comparator, and this loop dominates tree
        // (and therefore forest/boosting) training time.
        let mut scratch: Vec<(f64, u32)> = Vec::with_capacity(n);
        let min_leaf = self.cfg.min_samples_leaf.max(1);
        for &f in &features {
            scratch.clear();
            scratch.extend(idx.iter().map(|&i| (self.data.x.get(i, f), i as u32)));
            scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            if scratch[0].0 == scratch[n - 1].0 {
                continue; // constant feature in this node
            }
            left.iter_mut().for_each(|v| *v = 0.0);
            // Σ_k left2_k only ever appears summed over outputs, so track
            // it as a scalar; histogram-style targets are mostly zeros,
            // and skipping them cuts the dominant accumulation loop.
            let mut left_sq = 0.0;
            for pos in 0..n - 1 {
                let row = scratch[pos].1 as usize;
                for (l, &y) in left.iter_mut().zip(self.data.y.row(row)) {
                    if y != 0.0 {
                        *l += y;
                        left_sq += y * y;
                    }
                }
                let nl = pos + 1;
                let nr = n - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let xl = scratch[pos].0;
                let xr = scratch[pos + 1].0;
                if xl == xr {
                    continue; // can't split between equal values
                }
                // SSE_left + SSE_right, vectorized over outputs:
                //   Σ_k left2_k − (Σ_k left_k²)/nl
                // + (tot2 − Σ_k left2_k) − (Σ_k (tot_k − left_k)²)/nr
                let mut sum_l2 = 0.0;
                let mut sum_r2 = 0.0;
                for (l, t0) in left.iter().zip(&tot) {
                    sum_l2 += l * l;
                    let r = t0 - l;
                    sum_r2 += r * r;
                }
                let sse =
                    (left_sq - sum_l2 / nl as f64) + ((tot2_sum - left_sq) - sum_r2 / nr as f64);
                let gain = parent_sse - sse;
                if gain > best.map_or(1e-12, |b| b.2) {
                    best = Some((f, 0.5 * (xl + xr), gain));
                }
            }
        }
        best
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> usize {
        let make_leaf = depth >= self.cfg.max_depth || idx.len() < self.cfg.min_samples_split;
        let split = if make_leaf {
            None
        } else {
            self.best_split(idx)
        };
        match split {
            None => {
                let value = self.leaf_value(idx);
                self.nodes.push(Node::Leaf { value });
                self.nodes.len() - 1
            }
            Some((feature, threshold, gain)) => {
                self.importance[feature] += gain;
                // Partition indices around the threshold.
                let mid = itertools_partition(idx, |&i| self.data.x.get(i, feature) <= threshold);
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: Vec::new() }); // placeholder
                let (l_idx, r_idx) = idx.split_at_mut(mid);
                let left = self.build(l_idx, depth + 1);
                let right = self.build(r_idx, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

/// Stable-enough in-place partition; returns the number of elements
/// satisfying the predicate (moved to the front).
fn itertools_partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

impl Regressor for RegressionTree {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "RegressionTree::fit",
                needed: 1,
                got: 0,
            });
        }
        if data.x.as_slice().iter().any(|v| !v.is_finite())
            || data.y.as_slice().iter().any(|v| !v.is_finite())
        {
            return Err(StatsError::NonFinite {
                what: "RegressionTree::fit",
            });
        }
        let mut builder = Builder {
            data,
            cfg: self.config,
            rng: Xoshiro256pp::seed_from_u64(self.config.seed),
            nodes: Vec::new(),
            importance: vec![0.0; data.n_features()],
        };
        let mut idx: Vec<usize> = (0..data.len()).collect();
        builder.build(&mut idx, 0);
        self.nodes = builder.nodes;
        self.n_features = data.n_features();
        self.n_outputs = data.n_outputs();
        // Normalize importances to a distribution over features.
        let total: f64 = builder.importance.iter().sum();
        if total > 0.0 {
            for v in builder.importance.iter_mut() {
                *v /= total;
            }
        }
        self.importance = builder.importance;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.nodes.is_empty() {
            return Err(StatsError::invalid("RegressionTree", "model not fitted"));
        }
        if x.len() != self.n_features {
            return Err(StatsError::invalid(
                "RegressionTree::predict",
                format!(
                    "row has {} features, model expects {}",
                    x.len(),
                    self.n_features
                ),
            ));
        }
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return Ok(value.clone()),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DenseMatrix;

    fn step_dataset() -> Dataset {
        // y = 0 for x < 5, y = 10 for x ≥ 5 (plus second output = -y).
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let v = if i < 10 { 0.0 } else { 10.0 };
                vec![v, -v]
            })
            .collect();
        Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let mut t = RegressionTree::default_cart();
        t.fit(&step_dataset()).unwrap();
        assert_eq!(t.predict(&[3.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(t.predict(&[15.0]).unwrap(), vec![10.0, -10.0]);
        // The split threshold sits between 9 and 10.
        assert_eq!(t.predict(&[9.4]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(t.predict(&[9.6]).unwrap(), vec![10.0, -10.0]);
    }

    #[test]
    fn pure_targets_make_a_single_leaf() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]).unwrap();
        let mut t = RegressionTree::default_cart();
        t.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]).unwrap(), vec![7.0]);
    }

    #[test]
    fn max_depth_limits_growth() {
        let cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let mut t = RegressionTree::new(cfg);
        // y = x: would need many splits to fit exactly.
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        t.fit(
            &Dataset::ungrouped(
                DenseMatrix::from_rows(&rows).unwrap(),
                DenseMatrix::from_rows(&ys).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
        assert!(t.depth() <= 1);
        assert!(t.n_nodes() <= 3);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let cfg = TreeConfig {
            min_samples_leaf: 8,
            ..TreeConfig::default()
        };
        let mut t = RegressionTree::new(cfg);
        t.fit(&step_dataset()).unwrap();
        // Both children of the root have ≥ 8 samples; with a 10/10 step
        // the exact split is still allowed.
        assert!(t.depth() >= 1);
        // A leaf-size of 8 on 20 points allows at most two levels.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn leaf_lambda_shrinks_leaf_values() {
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![10.0], vec![10.0]]).unwrap();
        let cfg = TreeConfig {
            leaf_lambda: 2.0,
            ..TreeConfig::default()
        };
        let mut t = RegressionTree::new(cfg);
        t.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        // Leaf value = 20 / (2 + 2) = 5 (shrunk from 10).
        assert_eq!(t.predict(&[0.5]).unwrap(), vec![5.0]);
    }

    #[test]
    fn multi_feature_picks_the_informative_one() {
        // Feature 0 is noise (constant); feature 1 carries the signal.
        let rows: Vec<Vec<f64>> = (0..16).map(|i| vec![1.0, (i % 2) as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..16).map(|i| vec![(i % 2) as f64 * 4.0]).collect();
        let mut t = RegressionTree::default_cart();
        t.fit(
            &Dataset::ungrouped(
                DenseMatrix::from_rows(&rows).unwrap(),
                DenseMatrix::from_rows(&ys).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), vec![0.0]);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), vec![4.0]);
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let data = step_dataset();
        let cfg = TreeConfig {
            max_features: Some(1),
            seed: 7,
            ..TreeConfig::default()
        };
        let mut t1 = RegressionTree::new(cfg);
        let mut t2 = RegressionTree::new(cfg);
        t1.fit(&data).unwrap();
        t2.fit(&data).unwrap();
        for x in [0.0, 5.0, 12.0] {
            assert_eq!(t1.predict(&[x]).unwrap(), t2.predict(&[x]).unwrap());
        }
    }

    #[test]
    fn invalid_usage_errors() {
        let t = RegressionTree::default_cart();
        assert!(t.predict(&[1.0]).is_err()); // unfitted

        let mut t = RegressionTree::default_cart();
        t.fit(&step_dataset()).unwrap();
        assert!(t.predict(&[1.0, 2.0]).is_err()); // wrong width

        let x = DenseMatrix::from_rows(&[vec![f64::NAN]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0]]).unwrap();
        let mut t = RegressionTree::default_cart();
        assert!(t.fit(&Dataset::ungrouped(x, y).unwrap()).is_err());
    }

    #[test]
    fn partition_helper() {
        let mut v = vec![5, 2, 8, 1, 9, 3];
        let mid = itertools_partition(&mut v, |&x| x < 5);
        assert_eq!(mid, 3);
        assert!(v[..mid].iter().all(|&x| x < 5));
        assert!(v[mid..].iter().all(|&x| x >= 5));
    }
}
