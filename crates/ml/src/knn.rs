//! Multi-output k-nearest-neighbour regression.
//!
//! The paper's best model: k = 15 neighbours under cosine distance
//! (Section III-B3), averaging the neighbours' target vectors. Inverse-
//! distance weighting is provided as an option (the paper uses uniform
//! averaging; the ablation benches compare).

use serde::{Deserialize, Serialize};

use pv_stats::StatsError;

use crate::dataset::{Dataset, DenseMatrix};
use crate::distance::{cosine_with_sq_norms, squared_norm, Distance};
use crate::kernel::{self, F32Train, TILE_Q, TILE_T};
use crate::{Regressor, Result};

/// The canonical neighbour *selection* order: ascending distance, ties
/// broken by training-row index. A total order (exact-tie handling
/// independent of scan order) makes the selected k-set deterministic, so
/// the incremental evaluator can compare neighbour sets computed over
/// different corpus generations.
#[inline]
fn canonical(a: &(usize, f64), b: &(usize, f64)) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))
}

/// Neighbour weighting schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WeightScheme {
    /// Plain average of the k neighbours.
    #[default]
    Uniform,
    /// Weights `1/(d + ε)`; an exact feature match dominates.
    InverseDistance,
}

/// k-nearest-neighbour regressor for vector targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    /// Number of neighbours (clamped to the training-set size at predict
    /// time).
    pub k: usize,
    /// Distance metric.
    pub distance: Distance,
    /// Neighbour weighting.
    pub weights: WeightScheme,
    train_x: Option<DenseMatrix>,
    train_y: Option<DenseMatrix>,
    /// Per-row `Σx²`, computed once at fit time for cosine distance so
    /// predict stops re-deriving every candidate norm per query. `None`
    /// (other metrics) falls back to the bit-identical naive path.
    train_sq_norms: Option<Vec<f64>>,
    /// Screen cosine candidates in f32 lanes before the exact f64
    /// re-score (see [`crate::kernel::F32Train`]). Off by default; the
    /// selected neighbour set — and hence every prediction — is
    /// unchanged either way (pinned by `tests/kernel_parity.rs`).
    pub f32_prescreen: bool,
    /// f32 shadow of the training rows, built at fit time when the
    /// prescreen is enabled. Round-trips through serde with the rest of
    /// the model; a model without one (prescreen off, or the shadow
    /// stripped) falls back to the exact path with identical predictions
    /// because the screen never changes the neighbour set.
    train_f32: Option<F32Train>,
}

impl KnnRegressor {
    /// Creates a regressor with the paper's defaults: k = 15, cosine
    /// distance, uniform weights.
    pub fn new(k: usize) -> Self {
        KnnRegressor {
            k,
            distance: Distance::Cosine,
            weights: WeightScheme::Uniform,
            train_x: None,
            train_y: None,
            train_sq_norms: None,
            f32_prescreen: false,
            train_f32: None,
        }
    }

    /// Builder: distance metric.
    pub fn with_distance(mut self, d: Distance) -> Self {
        self.distance = d;
        self
    }

    /// Builder: weighting scheme.
    pub fn with_weights(mut self, w: WeightScheme) -> Self {
        self.weights = w;
        self
    }

    /// Builder: f32 candidate prescreen on/off. Takes effect at the next
    /// `fit` (the f32 shadow of the training rows is built there); only
    /// the cosine metric uses it.
    pub fn with_f32_prescreen(mut self, on: bool) -> Self {
        self.f32_prescreen = on;
        self
    }

    /// Indices and distances of the `k` nearest training rows to `x`,
    /// in [`canonical`] order (ascending distance, index-tie-broken).
    ///
    /// # Errors
    /// Fails when unfitted or on feature-width mismatch.
    pub fn neighbors(&self, x: &[f64]) -> Result<Vec<(usize, f64)>> {
        let (tx, _) = self.fitted()?;
        if x.len() != tx.cols() {
            return Err(StatsError::invalid(
                "KnnRegressor::predict",
                format!("row has {} features, model expects {}", x.len(), tx.cols()),
            ));
        }
        let mut dists: Vec<(usize, f64)> = match (self.distance, &self.train_sq_norms) {
            (Distance::Cosine, Some(norms)) => {
                let qn = squared_norm(x);
                match (self.f32_prescreen, &self.train_f32) {
                    (true, Some(shadow)) => {
                        // f32 screen, exact re-score of the survivors.
                        // The candidate set provably contains the exact
                        // top-k, and selection below uses only exact f64
                        // distances, so the chosen k-set is identical to
                        // the unscreened path's.
                        pv_obs::counter_inc!("pv.ml.kernel.knn_f32_prescreen");
                        let cand = shadow.prescreen(x, self.k);
                        pv_obs::counter_add!(
                            "pv.ml.kernel.knn_f32_rescore_rows",
                            cand.rows.len() as u64
                        );
                        cand.rows
                            .into_iter()
                            .map(|r| (r, cosine_with_sq_norms(x, tx.row(r), qn, norms[r])))
                            .collect()
                    }
                    _ => {
                        pv_obs::counter_inc!("pv.ml.kernel.knn_row_path");
                        (0..tx.rows())
                            .map(|r| (r, cosine_with_sq_norms(x, tx.row(r), qn, norms[r])))
                            .collect()
                    }
                }
            }
            _ => {
                pv_obs::counter_inc!("pv.ml.kernel.knn_row_path");
                (0..tx.rows())
                    .map(|r| (r, self.distance.eval(x, tx.row(r))))
                    .collect()
            }
        };
        let k = self.k.min(dists.len());
        // Partial selection then sort of the head: O(n + k log k).
        dists.select_nth_unstable_by(k - 1, canonical);
        dists.truncate(k);
        dists.sort_unstable_by(canonical);
        Ok(dists)
    }

    /// The neighbour row positions alone (no distances), sorted
    /// ascending — the canonical *set* representation the incremental
    /// fold cache stores and compares. Uniform-weight predictions are a
    /// pure function of this set ([`Self::predict`] accumulates in
    /// ascending row order), so two equal lists guarantee bit-identical
    /// predictions even when the distance ranking differs.
    ///
    /// # Errors
    /// Fails when unfitted or on feature-width mismatch.
    pub fn neighbor_indices(&self, x: &[f64]) -> Result<Vec<u32>> {
        let mut idx: Vec<u32> = self
            .neighbors(x)?
            .into_iter()
            .map(|(i, _)| i as u32)
            .collect();
        idx.sort_unstable();
        Ok(idx)
    }

    /// Turns a selected neighbour list into a prediction. Accumulates in
    /// ascending row order, not distance rank: float addition is
    /// commutative but not associative, so rank-order summation would
    /// let near-tie rank swaps move the prediction's last bits even when
    /// the neighbour set is unchanged. Row order makes a uniform-weight
    /// prediction a pure function of the neighbour set — the property
    /// the incremental fold cache's delta path relies on (weights travel
    /// with their rows, so inverse-distance weighting is unaffected by
    /// the order).
    fn predict_from_neighbors(&self, mut neigh: Vec<(usize, f64)>) -> Result<Vec<f64>> {
        neigh.sort_unstable_by_key(|&(idx, _)| idx);
        let (_, ty) = self.fitted()?;
        let t = ty.cols();
        let mut out = vec![0.0; t];
        let mut wsum = 0.0;
        for &(idx, dist) in &neigh {
            let w = match self.weights {
                WeightScheme::Uniform => 1.0,
                WeightScheme::InverseDistance => 1.0 / (dist + 1e-12),
            };
            wsum += w;
            for (o, v) in out.iter_mut().zip(ty.row(idx)) {
                *o += w * v;
            }
        }
        for o in out.iter_mut() {
            *o /= wsum;
        }
        Ok(out)
    }

    fn fitted(&self) -> Result<(&DenseMatrix, &DenseMatrix)> {
        match (&self.train_x, &self.train_y) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(StatsError::invalid("KnnRegressor", "model not fitted")),
        }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        let _timer = pv_obs::timed!("pv.ml.knn.fit_ns");
        if self.k == 0 {
            return Err(StatsError::invalid("KnnRegressor", "k must be ≥ 1"));
        }
        if data.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "KnnRegressor::fit",
                needed: 1,
                got: 0,
            });
        }
        self.train_sq_norms = match self.distance {
            Distance::Cosine => Some(
                (0..data.x.rows())
                    .map(|r| squared_norm(data.x.row(r)))
                    .collect(),
            ),
            _ => None,
        };
        self.train_f32 = (self.f32_prescreen && self.distance == Distance::Cosine)
            .then(|| F32Train::build(&data.x));
        self.train_x = Some(data.x.clone());
        self.train_y = Some(data.y.clone());
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        let _timer = pv_obs::timed!("pv.ml.knn.predict_ns");
        let neigh = self.neighbors(x)?;
        self.predict_from_neighbors(neigh)
    }

    fn predict_batch(&self, xs: &DenseMatrix) -> Result<DenseMatrix> {
        // The blocked all-pairs kernel serves cosine with cached norms
        // (the fitted configuration of the paper's model); other metrics
        // keep the row-at-a-time loop. Bit-identical either way: the
        // batch matrix entry for (query, row) is the exact per-pair
        // kernel `neighbors` evaluates, so selection and prediction see
        // the same numbers (pinned by `tests/kernel_parity.rs`).
        let (tx, ty) = self.fitted()?;
        let (Distance::Cosine, Some(norms)) = (self.distance, &self.train_sq_norms) else {
            let mut out = Vec::with_capacity(xs.rows() * ty.cols());
            for r in 0..xs.rows() {
                out.extend(self.predict(xs.row(r))?);
            }
            return DenseMatrix::from_flat(xs.rows(), ty.cols(), out);
        };
        if xs.cols() != tx.cols() {
            return Err(StatsError::invalid(
                "KnnRegressor::predict",
                format!(
                    "rows have {} features, model expects {}",
                    xs.cols(),
                    tx.cols()
                ),
            ));
        }
        let _timer = pv_obs::timed!("pv.ml.knn.predict_batch_ns");
        pv_obs::counter_add!("pv.ml.kernel.knn_batch_rows", xs.rows() as u64);
        let q_norms: Vec<f64> = (0..xs.rows()).map(|r| squared_norm(xs.row(r))).collect();
        let dmat = kernel::cosine_distance_matrix(xs, &q_norms, tx, norms, TILE_Q, TILE_T);
        let nt = tx.rows();
        let k = self.k.min(nt);
        let mut out = Vec::with_capacity(xs.rows() * ty.cols());
        for q in 0..xs.rows() {
            let mut dists: Vec<(usize, f64)> = dmat[q * nt..(q + 1) * nt]
                .iter()
                .copied()
                .enumerate()
                .collect();
            dists.select_nth_unstable_by(k - 1, canonical);
            dists.truncate(k);
            out.extend(self.predict_from_neighbors(dists)?);
        }
        DenseMatrix::from_flat(xs.rows(), ty.cols(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // Four points on a line; target = 10x (2 outputs: 10x and -x).
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![10.0, 10.0],
            vec![11.0, 11.0],
        ])
        .unwrap();
        let y = DenseMatrix::from_rows(&[
            vec![10.0, -1.0],
            vec![20.0, -2.0],
            vec![100.0, -10.0],
            vec![110.0, -11.0],
        ])
        .unwrap();
        Dataset::ungrouped(x, y).unwrap()
    }

    #[test]
    fn one_nn_returns_nearest_target() {
        let mut m = KnnRegressor::new(1).with_distance(Distance::Euclidean);
        m.fit(&toy()).unwrap();
        assert_eq!(m.predict(&[1.1, 1.1]).unwrap(), vec![10.0, -1.0]);
        assert_eq!(m.predict(&[10.6, 10.6]).unwrap(), vec![110.0, -11.0]);
    }

    #[test]
    fn two_nn_averages_cluster() {
        let mut m = KnnRegressor::new(2).with_distance(Distance::Euclidean);
        m.fit(&toy()).unwrap();
        let p = m.predict(&[1.5, 1.5]).unwrap();
        assert_eq!(p, vec![15.0, -1.5]);
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let mut m = KnnRegressor::new(100).with_distance(Distance::Euclidean);
        m.fit(&toy()).unwrap();
        let p = m.predict(&[5.0, 5.0]).unwrap();
        assert_eq!(p, vec![60.0, -6.0]); // mean of all targets
    }

    #[test]
    fn inverse_distance_weighting_prefers_closer_points() {
        let mut m = KnnRegressor::new(2)
            .with_distance(Distance::Euclidean)
            .with_weights(WeightScheme::InverseDistance);
        m.fit(&toy()).unwrap();
        // Query nearly on top of (1,1): prediction ≈ its target.
        let p = m.predict(&[1.000001, 1.000001]).unwrap();
        assert!((p[0] - 10.0).abs() < 0.01, "p = {p:?}");
    }

    #[test]
    fn cosine_distance_ignores_magnitude() {
        // Profiles (1,0) and (0,1); queries scaled arbitrarily.
        let x = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut m = KnnRegressor::new(1).with_distance(Distance::Cosine);
        m.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        assert_eq!(m.predict(&[1000.0, 1.0]).unwrap(), vec![1.0]);
        assert_eq!(m.predict(&[0.001, 0.9]).unwrap(), vec![2.0]);
    }

    #[test]
    fn neighbors_are_sorted_by_distance() {
        let mut m = KnnRegressor::new(3).with_distance(Distance::Euclidean);
        m.fit(&toy()).unwrap();
        let n = m.neighbors(&[2.1, 2.1]).unwrap();
        assert_eq!(n.len(), 3);
        assert!(n[0].1 <= n[1].1 && n[1].1 <= n[2].1);
        assert_eq!(n[0].0, 1); // (2,2) is closest
    }

    #[test]
    fn unfitted_and_invalid_usage_errors() {
        let m = KnnRegressor::new(3);
        assert!(m.predict(&[1.0]).is_err());

        let mut m = KnnRegressor::new(0);
        assert!(m.fit(&toy()).is_err());

        let mut m = KnnRegressor::new(2);
        m.fit(&toy()).unwrap();
        assert!(m.predict(&[1.0]).is_err()); // wrong width
    }

    #[test]
    fn cached_norms_predict_matches_naive_path_bitwise() {
        // Irrational-ish features so cosine actually exercises rounding.
        let rows: Vec<Vec<f64>> = (1..40)
            .map(|i| {
                let f = i as f64;
                vec![f.sqrt(), (f * 0.37).sin() + 1.5, f.ln() + 0.1, 1.0 / f]
            })
            .collect();
        let ys: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![i as f64 * 0.31, -(i as f64)])
            .collect();
        let data = Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap();
        let mut cached = KnnRegressor::new(7).with_distance(Distance::Cosine);
        cached.fit(&data).unwrap();
        assert!(cached.train_sq_norms.is_some());
        let mut naive = cached.clone();
        naive.train_sq_norms = None; // what a deserialized model looks like
        for q in &rows {
            let a = cached.predict(q).unwrap();
            let b = naive.predict(q).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(
                cached.neighbor_indices(q).unwrap(),
                naive.neighbor_indices(q).unwrap()
            );
        }
    }

    #[test]
    fn uniform_predict_accumulates_in_row_order() {
        // The prediction must be a pure function of the neighbour set:
        // bit-equal to a manual mean over the selected rows in ascending
        // row order, regardless of their distance ranking.
        let rows: Vec<Vec<f64>> = (1..30)
            .map(|i| {
                let f = i as f64;
                vec![(f * 0.7).sin() + 2.0, f.sqrt(), 1.0 / f]
            })
            .collect();
        let ys: Vec<Vec<f64>> = (1..30)
            .map(|i| vec![(i as f64 * 0.13).cos(), i as f64 * 0.01])
            .collect();
        let data = Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap();
        let mut m = KnnRegressor::new(7).with_distance(Distance::Cosine);
        m.fit(&data).unwrap();
        for q in rows.iter().step_by(5) {
            let idx = m.neighbor_indices(q).unwrap();
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
            let mut want = vec![0.0; 2];
            for &i in &idx {
                for (o, v) in want.iter_mut().zip(&ys[i as usize]) {
                    *o += *v;
                }
            }
            for o in want.iter_mut() {
                *o /= idx.len() as f64;
            }
            let got = m.predict(q).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn exact_distance_ties_break_by_row_index() {
        // Three identical rows: all distances tie exactly; the canonical
        // order must pick ascending indices regardless of k.
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![5.0, 9.0],
        ])
        .unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let mut m = KnnRegressor::new(2).with_distance(Distance::Euclidean);
        m.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
        assert_eq!(m.neighbor_indices(&[1.0, 2.0]).unwrap(), vec![0, 1]);
    }

    fn wide_dataset(rows: usize, cols: usize) -> Dataset {
        let mut state = 0xD1CE_5EED_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        let xs: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| next()).collect())
            .collect();
        let ys: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..3).map(|_| next()).collect())
            .collect();
        Dataset::ungrouped(
            DenseMatrix::from_rows(&xs).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn batch_predict_is_bit_identical_to_row_predict() {
        let data = wide_dataset(80, 68);
        let mut m = KnnRegressor::new(15).with_distance(Distance::Cosine);
        m.fit(&data).unwrap();
        let queries = wide_dataset(17, 68); // odd count: exercises tile tails
        let batch = m.predict_batch(&queries.x).unwrap();
        for r in 0..queries.x.rows() {
            let row = m.predict(queries.x.row(r)).unwrap();
            for (a, b) in batch.row(r).iter().zip(&row) {
                assert_eq!(a.to_bits(), b.to_bits(), "query {r}");
            }
        }
        // Width mismatch errors like the row path.
        let narrow = DenseMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(m.predict_batch(&narrow).is_err());
    }

    #[test]
    fn f32_prescreen_preserves_neighbor_sets_and_predictions() {
        let data = wide_dataset(150, 68);
        let mut exact = KnnRegressor::new(15).with_distance(Distance::Cosine);
        exact.fit(&data).unwrap();
        let mut screened = KnnRegressor::new(15)
            .with_distance(Distance::Cosine)
            .with_f32_prescreen(true);
        screened.fit(&data).unwrap();
        assert!(screened.train_f32.is_some());
        for r in (0..150).step_by(7) {
            let q = data.x.row(r);
            assert_eq!(
                exact.neighbor_indices(q).unwrap(),
                screened.neighbor_indices(q).unwrap(),
                "query {r}"
            );
            let a = exact.predict(q).unwrap();
            let b = screened.predict(q).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "query {r}");
            }
        }
    }

    #[test]
    fn prescreen_model_roundtrips_and_survives_shadow_stripping() {
        let data = wide_dataset(60, 33);
        let mut m = KnnRegressor::new(7)
            .with_distance(Distance::Cosine)
            .with_f32_prescreen(true);
        m.fit(&data).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let reloaded: KnnRegressor = serde_json::from_str(&json).unwrap();
        // The f32 shadow round-trips (f32 → f64 JSON → f32 is exact)...
        assert!(reloaded.train_f32.is_some());
        // ...and a model whose shadow is stripped falls back to the
        // exact path; both must match the original bit-for-bit.
        let mut stripped = reloaded.clone();
        stripped.train_f32 = None;
        for r in (0..60).step_by(11) {
            let q = data.x.row(r);
            let want = m.predict(q).unwrap();
            assert_eq!(want, reloaded.predict(q).unwrap(), "query {r}");
            assert_eq!(want, stripped.predict(q).unwrap(), "query {r}");
        }
    }

    #[test]
    fn predict_batch_shapes() {
        let mut m = KnnRegressor::new(1).with_distance(Distance::Euclidean);
        m.fit(&toy()).unwrap();
        let q = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![11.0, 11.0]]).unwrap();
        let out = m.predict_batch(&q).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.cols(), 2);
        assert_eq!(out.row(0), &[10.0, -1.0]);
        assert_eq!(out.row(1), &[110.0, -11.0]);
    }
}
