//! Cross-validation: leave-one-group-out and k-fold.
//!
//! The paper evaluates every (representation, model) combination with
//! leave-one-group-out cross-validation from scikit-learn, where a group
//! is a benchmark: all rows of the held-out benchmark are removed from
//! training so the model must generalize to an *unseen application*.

use pv_stats::rng::Xoshiro256pp;
use pv_stats::StatsError;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::Result;

/// One cross-validation split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Held-out row indices.
    pub test: Vec<usize>,
}

/// Leave-one-group-out: one split per distinct group label; the split's
/// test set is every row with that label.
///
/// Splits are ordered by ascending group label, so the iteration order is
/// deterministic.
///
/// # Errors
/// Fails when fewer than two distinct groups exist (no training data
/// would remain for some split otherwise).
pub fn leave_one_group_out(groups: &[usize]) -> Result<Vec<Split>> {
    let mut labels: Vec<usize> = groups.to_vec();
    labels.sort_unstable();
    labels.dedup();
    if labels.len() < 2 {
        return Err(StatsError::invalid(
            "leave_one_group_out",
            format!("need ≥ 2 distinct groups, got {}", labels.len()),
        ));
    }
    Ok(labels
        .into_iter()
        .map(|g| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &gi) in groups.iter().enumerate() {
                if gi == g {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Split { train, test }
        })
        .collect())
}

/// k-fold cross-validation with optional shuffling.
///
/// # Errors
/// Fails when `k < 2` or `k > n`.
pub fn k_fold(n: usize, k: usize, shuffle_seed: Option<u64>) -> Result<Vec<Split>> {
    if k < 2 || k > n {
        return Err(StatsError::invalid(
            "k_fold",
            format!("k must be in [2, n={n}], got {k}"),
        ));
    }
    let mut order: Vec<usize> = (0..n).collect();
    if let Some(seed) = shuffle_seed {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
    }
    let base = n / k;
    let extra = n % k;
    let mut splits = Vec::with_capacity(k);
    let mut start = 0;
    for fold in 0..k {
        let len = base + usize::from(fold < extra);
        let test: Vec<usize> = order[start..start + len].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + len..])
            .copied()
            .collect();
        splits.push(Split { train, test });
        start += len;
    }
    Ok(splits)
}

/// Runs a model-agnostic cross-validation: for every split, `train_fn`
/// receives the training subset and the held-out subset and returns one
/// result (e.g. a vector of per-benchmark KS scores).
///
/// # Errors
/// Propagates errors from `train_fn` or the splitter.
pub fn cross_validate<T, F>(data: &Dataset, splits: &[Split], mut train_fn: F) -> Result<Vec<T>>
where
    F: FnMut(&Dataset, &Dataset) -> Result<T>,
{
    let mut out = Vec::with_capacity(splits.len());
    for s in splits {
        let train = data.subset(&s.train);
        let test = data.subset(&s.test);
        out.push(train_fn(&train, &test)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DenseMatrix;
    use crate::knn::KnnRegressor;
    use crate::Distance;
    use crate::Regressor;

    #[test]
    fn logo_produces_one_split_per_group() {
        let groups = vec![0, 0, 1, 1, 1, 2];
        let splits = leave_one_group_out(&groups).unwrap();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].test, vec![0, 1]);
        assert_eq!(splits[0].train, vec![2, 3, 4, 5]);
        assert_eq!(splits[2].test, vec![5]);
    }

    #[test]
    fn logo_covers_every_row_exactly_once_as_test() {
        let groups = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let splits = leave_one_group_out(&groups).unwrap();
        let mut seen = vec![0usize; groups.len()];
        for s in &splits {
            for &i in &s.test {
                seen[i] += 1;
            }
            // Train and test are disjoint and complete.
            let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..groups.len()).collect::<Vec<_>>());
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn logo_needs_two_groups() {
        assert!(leave_one_group_out(&[7, 7, 7]).is_err());
        assert!(leave_one_group_out(&[]).is_err());
    }

    #[test]
    fn kfold_partitions_everything() {
        let splits = k_fold(10, 3, None).unwrap();
        assert_eq!(splits.len(), 3);
        let sizes: Vec<usize> = splits.iter().map(|s| s.test.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut all: Vec<usize> = splits.iter().flat_map(|s| s.test.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_shuffling_is_deterministic() {
        let a = k_fold(20, 4, Some(7)).unwrap();
        let b = k_fold(20, 4, Some(7)).unwrap();
        assert_eq!(a, b);
        let c = k_fold(20, 4, Some(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kfold_validates_parameters() {
        assert!(k_fold(5, 1, None).is_err());
        assert!(k_fold(5, 6, None).is_err());
        assert!(k_fold(5, 5, None).is_ok());
    }

    #[test]
    fn cross_validate_trains_on_disjoint_data() {
        // Two groups with very different targets; 1-NN trained without the
        // test group must predict the *other* group's target.
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![2.0], vec![2.0]]).unwrap();
        let data = Dataset::new(x, y, vec![0, 0, 1, 1]).unwrap();
        let splits = leave_one_group_out(&data.groups).unwrap();
        let results = cross_validate(&data, &splits, |train, test| {
            let mut m = KnnRegressor::new(1).with_distance(Distance::Euclidean);
            m.fit(train)?;
            // Predict the first test row.
            m.predict(test.x.row(0))
        })
        .unwrap();
        // Fold 0 (test group 0) trains only on group 1 → predicts 2.0;
        // fold 1 the reverse.
        assert_eq!(results[0], vec![2.0]);
        assert_eq!(results[1], vec![1.0]);
    }
}
