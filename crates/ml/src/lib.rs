//! # pv-ml — from-scratch machine learning for distribution prediction
//!
//! The paper compares three regression models for predicting performance
//! distributions (Section III-B3): **k-nearest neighbours** with cosine
//! similarity (k = 15), **random forests**, and **XGBoost**-style gradient
//! boosting. This crate implements all three from scratch as *multi-output*
//! regressors — the prediction target is a whole feature vector (histogram
//! bins or four moments), not a scalar — plus the supporting machinery:
//!
//! * [`dataset`] — dense row-major feature/target matrices with group
//!   labels (the paper's groups are benchmarks, for leave-one-group-out
//!   cross-validation),
//! * [`scaler`] — feature standardization,
//! * [`distance`] — Euclidean / Manhattan / cosine / Chebyshev metrics,
//! * [`kernel`] — vectorized distance kernels: the blocked batch-kNN
//!   path and the f32 candidate prescreen (lane-order contracts in
//!   DESIGN.md),
//! * [`knn`] — multi-output kNN with uniform or inverse-distance weights,
//! * [`tree`] — multi-output CART regression trees (variance-sum
//!   impurity),
//! * [`forest`] — bagged random forests, trained in parallel with rayon,
//! * [`gbt`] — gradient-boosted trees with XGBoost-style L2-regularized
//!   leaf weights and shrinkage,
//! * [`cv`] — leave-one-group-out and k-fold cross-validation,
//! * [`metrics`] — MSE / MAE / R².
//!
//! All models implement the [`Regressor`] trait so the prediction
//! pipelines in `pv-core` can swap them freely.

pub mod cv;
pub mod dataset;
pub mod distance;
pub mod forest;
pub mod gbt;
pub mod importance;
pub mod kernel;
pub mod knn;
pub mod metrics;
pub mod scaler;
pub mod tree;

pub use dataset::{Dataset, DatasetView, DenseMatrix, RowsView};
pub use distance::Distance;
pub use forest::{MaxFeatures, RandomForestRegressor};
pub use gbt::GradientBoostingRegressor;
pub use importance::{forest_importances, permutation_importance};
pub use kernel::F32Train;
pub use knn::{KnnRegressor, WeightScheme};
pub use scaler::StandardScaler;
pub use tree::RegressionTree;

/// Result alias re-using the statistical substrate's error type.
pub type Result<T> = std::result::Result<T, pv_stats::StatsError>;

/// A trained multi-output regression model.
///
/// `fit` consumes a [`Dataset`] (features `n×d`, targets `n×t`); `predict`
/// maps one feature row to a `t`-vector.
pub trait Regressor: Send + Sync {
    /// Trains the model on the given dataset.
    ///
    /// # Errors
    /// Fails on shape mismatches or empty data.
    fn fit(&mut self, data: &Dataset) -> Result<()>;

    /// Predicts the target vector for one feature row.
    ///
    /// # Errors
    /// Fails when the model is not fitted or the row width is wrong.
    fn predict(&self, x: &[f64]) -> Result<Vec<f64>>;

    /// Predicts for a batch of rows (default: row-by-row).
    ///
    /// # Errors
    /// Propagates per-row prediction failures.
    fn predict_batch(&self, xs: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = Vec::new();
        let mut width = 0;
        for r in 0..xs.rows() {
            let y = self.predict(xs.row(r))?;
            width = y.len();
            out.extend_from_slice(&y);
        }
        DenseMatrix::from_flat(xs.rows(), width, out)
    }
}
