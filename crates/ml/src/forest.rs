//! Random forest regression: bootstrap-aggregated CART trees.
//!
//! Trees are trained in parallel with rayon; each tree derives its own RNG
//! stream from `(seed, tree_index)`, so the fitted forest is identical for
//! any thread count.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeConfig};
use crate::{Regressor, Result};

/// Per-node feature subsampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MaxFeatures {
    /// All features at every node (bagged trees).
    All,
    /// `⌈√d⌉` features per node — the standard forest default.
    #[default]
    Sqrt,
    /// A fixed fraction of the features (clamped to `[1, d]`).
    Fraction(f64),
}

impl MaxFeatures {
    fn resolve(&self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Fraction(f) => ((d as f64 * f).round() as usize).clamp(1, d),
        }
        .clamp(1, d)
    }
}

/// A bootstrap-aggregated ensemble of regression trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Feature subsampling policy.
    pub max_features: MaxFeatures,
    /// Whether to bootstrap rows (true = classic bagging).
    pub bootstrap: bool,
    /// Use histogram (pre-binned) split finding in every tree; see
    /// [`TreeConfig::binned`]. Off by default — the exact path is what
    /// the pinned goldens run on.
    pub binned: bool,
    /// Root RNG seed.
    pub seed: u64,
    trees: Vec<RegressionTree>,
    n_outputs: usize,
}

impl Default for RandomForestRegressor {
    fn default() -> Self {
        RandomForestRegressor::new(100)
    }
}

impl RandomForestRegressor {
    /// Creates a forest with scikit-learn-like defaults.
    pub fn new(n_trees: usize) -> Self {
        RandomForestRegressor {
            n_trees,
            max_depth: 16,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            binned: false,
            seed: 0,
            trees: Vec::new(),
            n_outputs: 0,
        }
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: maximum depth.
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder: feature policy.
    pub fn with_max_features(mut self, m: MaxFeatures) -> Self {
        self.max_features = m;
        self
    }

    /// Builder: row bootstrapping on/off.
    pub fn with_bootstrap(mut self, b: bool) -> Self {
        self.bootstrap = b;
        self
    }

    /// Builder: histogram (pre-binned) split finding on/off.
    pub fn with_binned(mut self, b: bool) -> Self {
        self.binned = b;
        self
    }

    /// Number of fitted trees.
    pub fn n_fitted_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees (empty when unfitted); used by
    /// [`crate::importance::forest_importances`].
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        let _timer = pv_obs::timed!("pv.ml.forest.fit_ns");
        if self.n_trees == 0 {
            return Err(StatsError::invalid(
                "RandomForestRegressor",
                "n_trees must be ≥ 1",
            ));
        }
        if data.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "RandomForestRegressor::fit",
                needed: 1,
                got: 0,
            });
        }
        let n = data.len();
        let d = data.n_features();
        let max_feats = self.max_features.resolve(d);
        let seed = self.seed;
        let bootstrap = self.bootstrap;
        let binned = self.binned;
        let max_depth = self.max_depth;
        let min_leaf = self.min_samples_leaf;

        // One bin table serves the whole forest: binning only reads the
        // feature matrix, and every bootstrap row is a copy of an
        // original row, so each tree maps its rows back into the shared
        // table instead of re-sorting every feature per replicate.
        let shared_bins = binned.then(|| crate::tree::BinnedFeatures::build(data));
        let trees: Result<Vec<RegressionTree>> = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                let stream = derive_stream(seed, t as u64);
                let mut rng = Xoshiro256pp::seed_from_u64(stream);
                let idx: Option<Vec<usize>> =
                    bootstrap.then(|| (0..n).map(|_| rng.gen_range(0..n)).collect());
                let subset = match &idx {
                    Some(idx) => data.subset(idx),
                    None => data.clone(),
                };
                let cfg = TreeConfig {
                    max_depth,
                    min_samples_split: 2 * min_leaf.max(1),
                    min_samples_leaf: min_leaf,
                    max_features: Some(max_feats),
                    leaf_lambda: 0.0,
                    seed: derive_stream(stream, 1),
                    binned,
                };
                let mut tree = RegressionTree::new(cfg);
                match &shared_bins {
                    Some(bins) => tree.fit_with_shared_bins(&subset, bins, idx.as_deref())?,
                    None => tree.fit(&subset)?,
                }
                Ok(tree)
            })
            .collect();
        self.trees = trees?;
        self.n_outputs = data.n_outputs();
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        let _timer = pv_obs::timed!("pv.ml.forest.predict_ns");
        if self.trees.is_empty() {
            return Err(StatsError::invalid(
                "RandomForestRegressor",
                "model not fitted",
            ));
        }
        let mut acc = vec![0.0; self.n_outputs];
        for tree in &self.trees {
            let p = tree.predict(x)?;
            for (a, v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
        }
        for a in acc.iter_mut() {
            *a /= self.trees.len() as f64;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DenseMatrix;

    /// y = x0 + 2·x1 on a grid, two outputs (second = −first).
    fn grid_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let (a, b) = (i as f64, j as f64);
                rows.push(vec![a, b]);
                let v = a + 2.0 * b;
                ys.push(vec![v, -v]);
            }
        }
        Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fits_a_smooth_function_reasonably() {
        let mut f = RandomForestRegressor::new(60).with_seed(1);
        let data = grid_dataset();
        f.fit(&data).unwrap();
        // In-distribution accuracy: relative error below ~15%.
        for (x, want) in [([3.0, 4.0], 11.0), ([8.0, 2.0], 12.0), ([5.0, 9.0], 23.0)] {
            let p = f.predict(&x).unwrap();
            assert!(
                (p[0] - want).abs() < 0.15 * want + 1.0,
                "predict({x:?}) = {p:?}, want ≈ {want}"
            );
            assert!((p[0] + p[1]).abs() < 1e-9, "outputs must mirror");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = grid_dataset();
        let mut f1 = RandomForestRegressor::new(20).with_seed(42);
        let mut f2 = RandomForestRegressor::new(20).with_seed(42);
        f1.fit(&data).unwrap();
        f2.fit(&data).unwrap();
        for x in [[0.0, 0.0], [7.0, 3.0], [11.0, 11.0]] {
            assert_eq!(f1.predict(&x).unwrap(), f2.predict(&x).unwrap());
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let data = grid_dataset();
        let mut f1 = RandomForestRegressor::new(10).with_seed(1);
        let mut f2 = RandomForestRegressor::new(10).with_seed(2);
        f1.fit(&data).unwrap();
        f2.fit(&data).unwrap();
        let any_diff = [[1.5, 2.5], [6.5, 8.5], [10.5, 0.5]]
            .iter()
            .any(|x| f1.predict(x).unwrap() != f2.predict(x).unwrap());
        assert!(any_diff);
    }

    #[test]
    fn more_trees_reduce_error() {
        let data = grid_dataset();
        let err = |n_trees: usize| {
            let mut f = RandomForestRegressor::new(n_trees).with_seed(3);
            f.fit(&data).unwrap();
            let mut e = 0.0;
            for i in 0..12 {
                for j in 0..12 {
                    let p = f.predict(&[i as f64, j as f64]).unwrap();
                    e += (p[0] - (i as f64 + 2.0 * j as f64)).powi(2);
                }
            }
            e
        };
        assert!(err(50) < err(1));
    }

    #[test]
    fn without_bootstrap_and_all_features_reproduces_single_tree() {
        let data = grid_dataset();
        let mut f = RandomForestRegressor::new(5)
            .with_bootstrap(false)
            .with_max_features(MaxFeatures::All)
            .with_seed(9);
        f.fit(&data).unwrap();
        // All 5 trees see identical data and features → forest = one tree.
        let mut tree = RegressionTree::default_cart();
        tree.fit(&data).unwrap();
        for x in [[2.0, 2.0], [9.0, 4.0]] {
            let pf = f.predict(&x).unwrap();
            let pt = tree.predict(&x).unwrap();
            for (a, b) in pf.iter().zip(&pt) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Fraction(0.5).resolve(10), 5);
        assert_eq!(MaxFeatures::Fraction(0.0).resolve(10), 1);
        assert_eq!(MaxFeatures::Fraction(2.0).resolve(10), 10);
    }

    #[test]
    fn invalid_usage_errors() {
        let f = RandomForestRegressor::new(10);
        assert!(f.predict(&[1.0]).is_err()); // unfitted
        let mut f = RandomForestRegressor::new(0);
        assert!(f.fit(&grid_dataset()).is_err());
    }

    #[test]
    fn n_fitted_trees_reports_ensemble_size() {
        let mut f = RandomForestRegressor::new(7).with_seed(5);
        assert_eq!(f.n_fitted_trees(), 0);
        f.fit(&grid_dataset()).unwrap();
        assert_eq!(f.n_fitted_trees(), 7);
    }
}
