//! Regression quality metrics (multi-output aware).

use pv_stats::StatsError;

use crate::dataset::DenseMatrix;
use crate::Result;

fn check_shapes(what: &'static str, a: &DenseMatrix, b: &DenseMatrix) -> Result<()> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(StatsError::invalid(
            what,
            format!(
                "shape mismatch: {}×{} vs {}×{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        ));
    }
    if a.rows() == 0 {
        return Err(StatsError::EmptyInput {
            what,
            needed: 1,
            got: 0,
        });
    }
    Ok(())
}

/// Mean squared error over every (row, output) cell.
///
/// # Errors
/// Fails on shape mismatch or empty input.
pub fn mse(truth: &DenseMatrix, pred: &DenseMatrix) -> Result<f64> {
    check_shapes("mse", truth, pred)?;
    let n = (truth.rows() * truth.cols()) as f64;
    Ok(truth
        .as_slice()
        .iter()
        .zip(pred.as_slice())
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / n)
}

/// Mean absolute error over every (row, output) cell.
///
/// # Errors
/// Fails on shape mismatch or empty input.
pub fn mae(truth: &DenseMatrix, pred: &DenseMatrix) -> Result<f64> {
    check_shapes("mae", truth, pred)?;
    let n = (truth.rows() * truth.cols()) as f64;
    Ok(truth
        .as_slice()
        .iter()
        .zip(pred.as_slice())
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / n)
}

/// Coefficient of determination, averaged across outputs
/// (scikit-learn's `uniform_average` convention). Constant-truth columns
/// contribute R² = 0 unless predicted exactly.
///
/// # Errors
/// Fails on shape mismatch or empty input.
pub fn r2(truth: &DenseMatrix, pred: &DenseMatrix) -> Result<f64> {
    check_shapes("r2", truth, pred)?;
    let mut acc = 0.0;
    for c in 0..truth.cols() {
        let t = truth.column(c);
        let p = pred.column(c);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let ss_res: f64 = t.iter().zip(&p).map(|(a, b)| (a - b) * (a - b)).sum();
        let ss_tot: f64 = t.iter().map(|a| (a - mean) * (a - mean)).sum();
        acc += if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else if ss_res == 0.0 {
            1.0
        } else {
            0.0
        };
    }
    Ok(acc / truth.cols() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> DenseMatrix {
        DenseMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn perfect_prediction_scores() {
        let t = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(mse(&t, &t).unwrap(), 0.0);
        assert_eq!(mae(&t, &t).unwrap(), 0.0);
        assert_eq!(r2(&t, &t).unwrap(), 1.0);
    }

    #[test]
    fn known_mse_and_mae() {
        let t = m(&[vec![0.0], vec![0.0]]);
        let p = m(&[vec![1.0], vec![-3.0]]);
        assert!((mse(&t, &p).unwrap() - 5.0).abs() < 1e-12);
        assert!((mae(&t, &p).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = m(&[vec![1.0], vec![2.0], vec![3.0]]);
        let p = m(&[vec![2.0], vec![2.0], vec![2.0]]);
        assert!(r2(&t, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative_for_bad_models() {
        let t = m(&[vec![1.0], vec![2.0], vec![3.0]]);
        let p = m(&[vec![10.0], vec![10.0], vec![10.0]]);
        assert!(r2(&t, &p).unwrap() < 0.0);
    }

    #[test]
    fn r2_constant_truth_convention() {
        let t = m(&[vec![5.0], vec![5.0]]);
        assert_eq!(r2(&t, &t).unwrap(), 1.0);
        let p = m(&[vec![4.0], vec![6.0]]);
        assert_eq!(r2(&t, &p).unwrap(), 0.0);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = m(&[vec![1.0]]);
        let b = m(&[vec![1.0, 2.0]]);
        assert!(mse(&a, &b).is_err());
        assert!(mae(&a, &b).is_err());
        assert!(r2(&a, &b).is_err());
    }
}
