//! Dense matrices and grouped supervised datasets.

use serde::{Deserialize, Serialize};

use pv_stats::StatsError;

use crate::Result;

/// A dense, row-major `f64` matrix.
///
/// The crate's common currency for features (`n × d`) and multi-output
/// targets (`n × t`). Row-major layout keeps per-sample access — the hot
/// pattern in kNN and tree training — contiguous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Fails when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(StatsError::invalid(
                "DenseMatrix",
                format!("expected {} values, got {}", rows * cols, data.len()),
            ));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Errors
    /// Fails when rows have inconsistent widths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "DenseMatrix::from_rows",
                needed: 1,
                got: 0,
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(StatsError::invalid(
                    "DenseMatrix::from_rows",
                    format!("row {i} has {} values, expected {cols}", r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix by copying borrowed row slices.
    ///
    /// The fold-runner assembles training sets as slices borrowed from a
    /// precomputed corpus cache; this constructor turns them into an owned
    /// matrix with a single copy (no intermediate `Vec<Vec<f64>>`).
    ///
    /// # Errors
    /// Fails when rows have inconsistent widths or the input is empty.
    pub fn from_row_refs(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "DenseMatrix::from_row_refs",
                needed: 1,
                got: 0,
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(StatsError::invalid(
                    "DenseMatrix::from_row_refs",
                    format!("row {i} has {} values, expected {cols}", r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Borrowing view of a subset of rows — no data is copied until
    /// [`RowsView::to_matrix`]. Indices may repeat.
    pub fn view_rows<'m>(&'m self, idx: &'m [usize]) -> RowsView<'m> {
        RowsView { matrix: self, idx }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row view.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Copies out one column.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Builds a new matrix from a subset of row indices (rows may repeat —
    /// bootstrap sampling uses this).
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        DenseMatrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// A borrowed row-subset view of a [`DenseMatrix`].
///
/// Fold training repeatedly needs "all rows except the held-out group";
/// a view carries only the parent matrix and the index list, deferring
/// the copy to the one place that truly needs owned data.
#[derive(Debug, Clone, Copy)]
pub struct RowsView<'m> {
    matrix: &'m DenseMatrix,
    idx: &'m [usize],
}

impl<'m> RowsView<'m> {
    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.idx.len()
    }

    /// Number of columns (same as the parent matrix).
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }

    /// The `i`-th viewed row (borrowed from the parent matrix).
    pub fn row(&self, i: usize) -> &'m [f64] {
        self.matrix.row(self.idx[i])
    }

    /// Iterates the viewed rows in order.
    pub fn iter(&self) -> impl Iterator<Item = &'m [f64]> + '_ {
        self.idx.iter().map(|&i| self.matrix.row(i))
    }

    /// The viewed rows as a slice list (for APIs taking `&[&[f64]]`).
    pub fn row_slices(&self) -> Vec<&'m [f64]> {
        self.iter().collect()
    }

    /// Materializes the view into an owned matrix (the single copy).
    pub fn to_matrix(&self) -> DenseMatrix {
        self.matrix.select_rows(self.idx)
    }
}

/// A supervised dataset: features, multi-output targets, and a group label
/// per row.
///
/// Groups drive leave-one-group-out cross-validation: the paper groups the
/// ~10 profile rows of each benchmark under one label so that a model is
/// never evaluated on a benchmark it saw during training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, `n × d`.
    pub x: DenseMatrix,
    /// Target matrix, `n × t`.
    pub y: DenseMatrix,
    /// Group label per row (`n`); rows of the same application share one.
    pub groups: Vec<usize>,
}

impl Dataset {
    /// Bundles features, targets, and groups into a dataset.
    ///
    /// # Errors
    /// Fails when row counts disagree or the dataset is empty.
    pub fn new(x: DenseMatrix, y: DenseMatrix, groups: Vec<usize>) -> Result<Self> {
        if x.rows() == 0 {
            return Err(StatsError::EmptyInput {
                what: "Dataset",
                needed: 1,
                got: 0,
            });
        }
        if x.rows() != y.rows() || x.rows() != groups.len() {
            return Err(StatsError::invalid(
                "Dataset",
                format!(
                    "row mismatch: x={}, y={}, groups={}",
                    x.rows(),
                    y.rows(),
                    groups.len()
                ),
            ));
        }
        Ok(Dataset { x, y, groups })
    }

    /// Convenience constructor when group structure is irrelevant (each
    /// row is its own group).
    ///
    /// # Errors
    /// Same as [`Dataset::new`].
    pub fn ungrouped(x: DenseMatrix, y: DenseMatrix) -> Result<Self> {
        let groups = (0..x.rows()).collect();
        Dataset::new(x, y, groups)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset has no rows (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of target outputs.
    pub fn n_outputs(&self) -> usize {
        self.y.cols()
    }

    /// Extracts the sub-dataset at the given row indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: self.y.select_rows(idx),
            groups: idx.iter().map(|&i| self.groups[i]).collect(),
        }
    }

    /// Borrowing row-subset view (the no-copy counterpart of
    /// [`Dataset::subset`]).
    pub fn view<'d>(&'d self, idx: &'d [usize]) -> DatasetView<'d> {
        DatasetView {
            x: self.x.view_rows(idx),
            y: self.y.view_rows(idx),
            dataset: self,
            idx,
        }
    }
}

/// A borrowed row-subset view of a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'d> {
    /// Feature rows of the subset.
    pub x: RowsView<'d>,
    /// Target rows of the subset.
    pub y: RowsView<'d>,
    dataset: &'d Dataset,
    idx: &'d [usize],
}

impl<'d> DatasetView<'d> {
    /// Number of samples in the view.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Group label of the `i`-th viewed row.
    pub fn group(&self, i: usize) -> usize {
        self.dataset.groups[self.idx[i]]
    }

    /// Materializes the view into an owned [`Dataset`].
    pub fn materialize(&self) -> Dataset {
        self.dataset.subset(self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let x = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![10.0], vec![20.0], vec![30.0]]).unwrap();
        Dataset::new(x, y, vec![0, 0, 1]).unwrap()
    }

    #[test]
    fn from_flat_validates_shape() {
        assert!(DenseMatrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
        assert!(DenseMatrix::from_flat(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(DenseMatrix::from_rows(&[]).is_err());
    }

    #[test]
    fn row_and_column_access() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn select_rows_allows_repeats() {
        let m = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[3.0]);
        assert_eq!(s.row(2), &[1.0]);
    }

    #[test]
    fn dataset_shape_checks() {
        let d = sample_dataset();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_outputs(), 1);
        assert!(!d.is_empty());

        let x = DenseMatrix::zeros(2, 2);
        let y = DenseMatrix::zeros(3, 1);
        assert!(Dataset::new(x, y, vec![0, 1]).is_err());
    }

    #[test]
    fn subset_carries_groups() {
        let d = sample_dataset();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.groups, vec![1, 0]);
        assert_eq!(s.x.row(0), &[5.0, 6.0]);
        assert_eq!(s.y.row(1), &[10.0]);
    }

    #[test]
    fn ungrouped_assigns_unique_groups() {
        let x = DenseMatrix::zeros(3, 1);
        let y = DenseMatrix::zeros(3, 1);
        let d = Dataset::ungrouped(x, y).unwrap();
        assert_eq!(d.groups, vec![0, 1, 2]);
    }

    #[test]
    fn from_row_refs_matches_from_rows() {
        let owned = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let refs: Vec<&[f64]> = owned.iter().map(|r| r.as_slice()).collect();
        assert_eq!(
            DenseMatrix::from_row_refs(&refs).unwrap(),
            DenseMatrix::from_rows(&owned).unwrap()
        );
        let ragged: Vec<&[f64]> = vec![&[1.0], &[1.0, 2.0]];
        assert!(DenseMatrix::from_row_refs(&ragged).is_err());
        assert!(DenseMatrix::from_row_refs(&[]).is_err());
    }

    #[test]
    fn rows_view_borrows_without_copying() {
        let m = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let idx = [2, 0, 2];
        let v = m.view_rows(&idx);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 1);
        assert_eq!(v.row(0), &[3.0]);
        assert_eq!(v.row(1), &[1.0]);
        let collected: Vec<&[f64]> = v.iter().collect();
        assert_eq!(collected, v.row_slices());
        assert_eq!(v.to_matrix(), m.select_rows(&idx));
    }

    #[test]
    fn dataset_view_matches_subset() {
        let d = sample_dataset();
        let idx = [2, 0];
        let v = d.view(&idx);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.group(0), 1);
        assert_eq!(v.x.row(0), &[5.0, 6.0]);
        assert_eq!(v.y.row(1), &[10.0]);
        let materialized = v.materialize();
        assert_eq!(materialized.groups, d.subset(&idx).groups);
        assert_eq!(materialized.x, d.subset(&idx).x);
    }
}
