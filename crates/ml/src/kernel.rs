//! Vectorized distance kernels for the kNN hot path.
//!
//! Three layers, all sharing the lane-order contract of
//! [`pv_stats::kernel`] so that every route to a given distance value is
//! bit-identical (see DESIGN.md "Kernel contracts"):
//!
//! * **Per-pair kernels** — chunked four-lane accumulation behind
//!   [`crate::distance::Distance::eval`], `squared_norm`, and
//!   `cosine_with_sq_norms`. One set of primitives, three callers.
//! * **Blocked batch path** — [`cosine_distance_matrix`] computes an
//!   all-pairs query-tile × train-tile distance matrix. The per-pair
//!   arithmetic is exactly the per-pair kernel, so the matrix is
//!   bit-identical to row-at-a-time scoring at *any* tile shape; the
//!   tiling exists purely to keep a train tile hot in cache across a
//!   whole query tile.
//! * **f32 prescreen** — [`F32Candidates`] scores every training row in
//!   f32 (eight lanes), keeps everything within a conservative margin of
//!   the k-th best f32 score, and leaves the exact f64 kernel to re-score
//!   only the survivors. The margin over-covers the f32 rounding error,
//!   so the exact top-k set is always among the candidates and selected
//!   neighbour sets are unchanged (pinned by `tests/kernel_parity.rs`).
//!
//! Dispatch counters (`pv.ml.kernel.*`) record which path served each
//! query so obs artifacts show what actually ran.

use serde::{Deserialize, Serialize};

use pv_stats::kernel::{dot4, dot8_f32, sq_norm4, sq_norm8_f32};

use crate::dataset::DenseMatrix;

/// Query rows per tile of the blocked batch path.
pub const TILE_Q: usize = 8;
/// Training rows per tile of the blocked batch path.
pub const TILE_T: usize = 64;

/// Shared cosine finalization: every cosine path (naive, cached-norm,
/// batch, f32-rescore) funnels through this one expression, which is
/// what makes them mutually bit-identical.
#[inline]
pub(crate) fn cosine_finish(dot: f64, na: f64, nb: f64) -> f64 {
    if na == 0.0 || nb == 0.0 {
        // A zero vector has no direction: maximally distant.
        return 1.0;
    }
    (1.0 - (dot / (na.sqrt() * nb.sqrt()))).clamp(0.0, 2.0)
}

/// Cosine distance from scratch: chunked dot and both chunked norms.
#[inline]
pub(crate) fn cosine(a: &[f64], b: &[f64]) -> f64 {
    cosine_finish(dot4(a, b), sq_norm4(a), sq_norm4(b))
}

/// Cosine distance with both squared norms precomputed (by [`sq_norm4`],
/// or this is no longer the same chain).
#[inline]
pub(crate) fn cosine_cached(a: &[f64], b: &[f64], na: f64, nb: f64) -> f64 {
    cosine_finish(dot4(a, b), na, nb)
}

/// All-pairs cosine distances between `queries` (with precomputed
/// [`sq_norm4`] norms `q_norms`) and `train` (norms `t_norms`), written
/// row-major into a `queries.rows() × train.rows()` buffer.
///
/// Walks the pair space in `tile_q × tile_t` blocks so a train tile
/// stays cache-resident across a whole query tile. The per-pair value is
/// [`cosine_cached`] verbatim — bit-identical to the row-at-a-time loop
/// for every tile shape (pinned by `tests/kernel_parity.rs`).
pub fn cosine_distance_matrix(
    queries: &DenseMatrix,
    q_norms: &[f64],
    train: &DenseMatrix,
    t_norms: &[f64],
    tile_q: usize,
    tile_t: usize,
) -> Vec<f64> {
    debug_assert_eq!(queries.cols(), train.cols());
    debug_assert_eq!(q_norms.len(), queries.rows());
    debug_assert_eq!(t_norms.len(), train.rows());
    let (nq, nt) = (queries.rows(), train.rows());
    let (tile_q, tile_t) = (tile_q.max(1), tile_t.max(1));
    let mut out = vec![0.0; nq * nt];
    let mut q0 = 0;
    while q0 < nq {
        let q1 = (q0 + tile_q).min(nq);
        let mut t0 = 0;
        while t0 < nt {
            let t1 = (t0 + tile_t).min(nt);
            pv_obs::counter_inc!("pv.ml.kernel.batch_tiles");
            for q in q0..q1 {
                let qrow = queries.row(q);
                let qn = q_norms[q];
                let dst = &mut out[q * nt + t0..q * nt + t1];
                for (d, t) in dst.iter_mut().zip(t0..t1) {
                    *d = cosine_cached(qrow, train.row(t), qn, t_norms[t]);
                }
            }
            t0 = t1;
        }
        q0 = q1;
    }
    out
}

/// f32 shadow of a cosine training set: row-major f32 copies of the
/// training rows plus their f32 squared norms, built once at fit time.
///
/// Serializes with the model (f32 values round-trip exactly through the
/// shortest-repr f64 JSON path), but the prescreen is a pure
/// accelerator: a model whose shadow is absent falls back to the exact
/// path with bit-identical predictions, so the serialized form is a
/// cache, never a correctness input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F32Train {
    data: Vec<f32>,
    norms: Vec<f32>,
    cols: usize,
}

/// The outcome of an f32 prescreen: candidate training-row indices that
/// provably contain the exact cosine top-k.
pub struct F32Candidates {
    /// Surviving row indices, ascending.
    pub rows: Vec<usize>,
}

/// Relative error bound of an f32 cosine score against the f64 value.
///
/// The f32 pipeline rounds inputs (2⁻²⁴ each), every product, and every
/// of the ~d additions; for the feature widths this crate sees (≤ a few
/// thousand) the accumulated relative error on a quantity in [0, 2] is
/// well under 2⁻¹⁴. The prescreen margin uses 2⁻¹⁰ — a ~16× safety
/// factor that still rejects the vast majority of rows — and the parity
/// tier hammers neighbour-set identity on adversarial near-tie data.
const F32_MARGIN: f32 = 1.0 / 1024.0;

impl F32Train {
    /// Builds the f32 shadow of a training matrix.
    pub fn build(train: &DenseMatrix) -> Self {
        let cols = train.cols();
        let mut data = Vec::with_capacity(train.rows() * cols);
        for r in 0..train.rows() {
            data.extend(train.row(r).iter().map(|&x| x as f32));
        }
        let norms = (0..train.rows())
            .map(|r| sq_norm8_f32(&data[r * cols..(r + 1) * cols]))
            .collect();
        F32Train { data, norms, cols }
    }

    /// Number of shadowed training rows.
    pub fn rows(&self) -> usize {
        self.norms.len()
    }

    /// Scores `query` against every shadowed row in f32 and returns the
    /// rows whose f32 cosine distance is within [`F32_MARGIN`] of the
    /// k-th smallest — a superset of the exact top-k whenever the f32
    /// error bound holds (which the margin over-covers).
    pub fn prescreen(&self, query: &[f64], k: usize) -> F32Candidates {
        let n = self.rows();
        let qf: Vec<f32> = query.iter().map(|&x| x as f32).collect();
        let qn = sq_norm8_f32(&qf);
        let scores: Vec<f32> = (0..n)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                let dot = dot8_f32(&qf, row);
                let (na, nb) = (qn, self.norms[r]);
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    (1.0 - (dot / (na.sqrt() * nb.sqrt()))).clamp(0.0, 2.0)
                }
            })
            .collect();
        let k = k.min(n);
        let mut order: Vec<usize> = (0..n).collect();
        order.select_nth_unstable_by(k - 1, |&a, &b| scores[a].total_cmp(&scores[b]));
        let kth = order[..k]
            .iter()
            .map(|&r| scores[r])
            .fold(f32::NEG_INFINITY, f32::max);
        let cut = kth + F32_MARGIN;
        // NaN scores (degenerate f32 overflow, never seen on scaled
        // features) are kept: the exact re-score decides, never the
        // screen.
        let rows: Vec<usize> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s <= cut || s.is_nan())
            .map(|(r, _)| r)
            .collect();
        F32Candidates { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        DenseMatrix::from_flat(rows, cols, data).expect("matrix")
    }

    #[test]
    fn batch_matrix_matches_per_pair_kernel_at_odd_tile_shapes() {
        let q = matrix(5, 37, 1);
        let t = matrix(23, 37, 2);
        let qn: Vec<f64> = (0..q.rows()).map(|r| sq_norm4(q.row(r))).collect();
        let tn: Vec<f64> = (0..t.rows()).map(|r| sq_norm4(t.row(r))).collect();
        let mut want = Vec::new();
        for (i, &qni) in qn.iter().enumerate() {
            for (j, &tnj) in tn.iter().enumerate() {
                want.push(cosine_cached(q.row(i), t.row(j), qni, tnj));
            }
        }
        for (tq, tt) in [(1, 1), (2, 7), (8, 64), (100, 100)] {
            let got = cosine_distance_matrix(&q, &qn, &t, &tn, tq, tt);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "tile ({tq},{tt})");
            }
        }
    }

    #[test]
    fn prescreen_candidates_contain_exact_top_k() {
        let t = matrix(200, 68, 3);
        let tn: Vec<f64> = (0..t.rows()).map(|r| sq_norm4(t.row(r))).collect();
        let shadow = F32Train::build(&t);
        let q = matrix(1, 68, 4);
        for k in [1usize, 5, 15, 50] {
            let cand = shadow.prescreen(q.row(0), k);
            // Exact top-k by f64 cosine.
            let mut exact: Vec<(usize, f64)> = (0..t.rows())
                .map(|r| {
                    (
                        r,
                        cosine_cached(q.row(0), t.row(r), sq_norm4(q.row(0)), tn[r]),
                    )
                })
                .collect();
            exact.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            for (r, _) in &exact[..k] {
                assert!(cand.rows.contains(r), "k={k} lost exact neighbour {r}");
            }
            // And it actually screens: nowhere near all rows survive.
            assert!(cand.rows.len() < t.rows(), "k={k} screened nothing");
        }
    }

    #[test]
    fn prescreen_handles_k_larger_than_train() {
        let t = matrix(3, 8, 5);
        let shadow = F32Train::build(&t);
        let q = matrix(1, 8, 6);
        let cand = shadow.prescreen(q.row(0), 10);
        assert_eq!(cand.rows, vec![0, 1, 2]);
    }
}
