//! Gradient-boosted regression trees (XGBoost-style).
//!
//! For squared loss the second-order XGBoost objective reduces to fitting
//! each round's tree on the current residuals with L2-regularized leaf
//! weights `w* = Σresidual / (n_leaf + λ)` — exactly what
//! [`crate::tree::TreeConfig::leaf_lambda`] implements. Boosting is
//! multi-output: every round fits one multi-output tree on the full
//! residual matrix, and rounds are damped by the learning rate.

use serde::{Deserialize, Serialize};

use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::{Dataset, DenseMatrix};
use crate::tree::{RegressionTree, TreeConfig};
use crate::{Regressor, Result};

/// Gradient-boosting hyper-parameters and fitted state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoostingRegressor {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage applied to every round's contribution.
    pub learning_rate: f64,
    /// Depth of each weak learner (XGBoost default: 6; small data wants
    /// 2–3).
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Fraction of rows sampled (without replacement) per round; 1.0
    /// disables subsampling.
    pub subsample: f64,
    /// Root RNG seed (used only when `subsample < 1`).
    pub seed: u64,
    /// Use histogram (pre-binned) split finding in every round's tree;
    /// see [`TreeConfig::binned`]. Off by default.
    pub binned: bool,
    base: Vec<f64>,
    trees: Vec<RegressionTree>,
}

impl Default for GradientBoostingRegressor {
    fn default() -> Self {
        GradientBoostingRegressor::new(100)
    }
}

impl GradientBoostingRegressor {
    /// Creates a booster with XGBoost-like defaults (η = 0.1, depth 3,
    /// λ = 1).
    pub fn new(n_rounds: usize) -> Self {
        GradientBoostingRegressor {
            n_rounds,
            learning_rate: 0.1,
            max_depth: 3,
            lambda: 1.0,
            subsample: 1.0,
            seed: 0,
            binned: false,
            base: Vec::new(),
            trees: Vec::new(),
        }
    }

    /// Builder: learning rate.
    pub fn with_learning_rate(mut self, eta: f64) -> Self {
        self.learning_rate = eta;
        self
    }

    /// Builder: weak-learner depth.
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder: leaf L2 regularization.
    pub fn with_lambda(mut self, l: f64) -> Self {
        self.lambda = l;
        self
    }

    /// Builder: per-round row subsampling fraction.
    pub fn with_subsample(mut self, s: f64) -> Self {
        self.subsample = s;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: histogram (pre-binned) split finding on/off.
    pub fn with_binned(mut self, b: bool) -> Self {
        self.binned = b;
        self
    }

    /// Number of fitted boosting rounds.
    pub fn n_fitted_rounds(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for GradientBoostingRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        let _timer = pv_obs::timed!("pv.ml.gbt.fit_ns");
        if self.n_rounds == 0 {
            return Err(StatsError::invalid(
                "GradientBoostingRegressor",
                "n_rounds must be ≥ 1",
            ));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(StatsError::invalid(
                "GradientBoostingRegressor",
                format!("learning_rate must be in (0,1], got {}", self.learning_rate),
            ));
        }
        if !(0.0 < self.subsample && self.subsample <= 1.0) {
            return Err(StatsError::invalid(
                "GradientBoostingRegressor",
                format!("subsample must be in (0,1], got {}", self.subsample),
            ));
        }
        if data.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "GradientBoostingRegressor::fit",
                needed: 1,
                got: 0,
            });
        }
        let n = data.len();
        let t = data.n_outputs();

        // Base prediction: per-output mean.
        let mut base = vec![0.0; t];
        for r in 0..n {
            for (b, &y) in base.iter_mut().zip(data.y.row(r)) {
                *b += y;
            }
        }
        for b in base.iter_mut() {
            *b /= n as f64;
        }

        // Current ensemble prediction per training row.
        let mut current = DenseMatrix::zeros(n, t);
        for r in 0..n {
            current.row_mut(r).copy_from_slice(&base);
        }

        let mut trees = Vec::with_capacity(self.n_rounds);
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        // Residuals change every round but the feature matrix never
        // does, and binning only reads features — so one bin table
        // serves all rounds, with each round's subsample mapped back
        // into it.
        let shared_bins = self
            .binned
            .then(|| crate::tree::BinnedFeatures::build(data));
        for round in 0..self.n_rounds {
            // Residual matrix for this round.
            let mut resid = DenseMatrix::zeros(n, t);
            for r in 0..n {
                for c in 0..t {
                    resid.set(r, c, data.y.get(r, c) - current.get(r, c));
                }
            }
            // Row subsample (without replacement).
            let rows: Vec<usize> = if self.subsample < 1.0 {
                let m = ((n as f64 * self.subsample).round() as usize).clamp(1, n);
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..m {
                    let j = rng.gen_range(i..n);
                    idx.swap(i, j);
                }
                idx.truncate(m);
                idx
            } else {
                (0..n).collect()
            };
            let round_data = Dataset::new(
                data.x.select_rows(&rows),
                resid.select_rows(&rows),
                rows.iter().map(|&i| data.groups[i]).collect(),
            )?;
            let cfg = TreeConfig {
                max_depth: self.max_depth,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
                leaf_lambda: self.lambda,
                seed: derive_stream(self.seed, round as u64),
                binned: self.binned,
            };
            let mut tree = RegressionTree::new(cfg);
            match &shared_bins {
                Some(bins) => tree.fit_with_shared_bins(&round_data, bins, Some(&rows))?,
                None => tree.fit(&round_data)?,
            }
            // Update the running prediction.
            for r in 0..n {
                let p = tree.predict(data.x.row(r))?;
                for (c, v) in p.iter().enumerate() {
                    let updated = current.get(r, c) + self.learning_rate * v;
                    current.set(r, c, updated);
                }
            }
            trees.push(tree);
        }
        self.base = base;
        self.trees = trees;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        let _timer = pv_obs::timed!("pv.ml.gbt.predict_ns");
        if self.trees.is_empty() {
            return Err(StatsError::invalid(
                "GradientBoostingRegressor",
                "model not fitted",
            ));
        }
        let mut out = self.base.clone();
        for tree in &self.trees {
            let p = tree.predict(x)?;
            for (o, v) in out.iter_mut().zip(&p) {
                *o += self.learning_rate * v;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r[0].sin() * 3.0, r[0].cos()])
            .collect();
        Dataset::ungrouped(
            DenseMatrix::from_rows(&rows).unwrap(),
            DenseMatrix::from_rows(&ys).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fits_nonlinear_function() {
        let mut g = GradientBoostingRegressor::new(200).with_learning_rate(0.2);
        let data = sine_dataset();
        g.fit(&data).unwrap();
        for x in [0.5, 2.0, 4.5] {
            let p = g.predict(&[x]).unwrap();
            assert!(
                (p[0] - x.sin() * 3.0).abs() < 0.2,
                "predict({x}): {} vs {}",
                p[0],
                x.sin() * 3.0
            );
            assert!((p[1] - x.cos()).abs() < 0.15);
        }
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = sine_dataset();
        let err = |rounds: usize| {
            let mut g = GradientBoostingRegressor::new(rounds);
            g.fit(&data).unwrap();
            let mut e = 0.0;
            for r in 0..data.len() {
                let p = g.predict(data.x.row(r)).unwrap();
                e += (p[0] - data.y.get(r, 0)).powi(2);
            }
            e
        };
        let (e1, e10, e100) = (err(1), err(10), err(100));
        assert!(e10 < e1);
        assert!(e100 < e10);
    }

    #[test]
    fn zero_rounds_prediction_is_base_mean() {
        // One round with learning_rate → 0 approximates the base.
        let data = sine_dataset();
        let mut g = GradientBoostingRegressor::new(1).with_learning_rate(1e-9);
        g.fit(&data).unwrap();
        let p = g.predict(&[1.0]).unwrap();
        let mean0: f64 = (0..data.len()).map(|r| data.y.get(r, 0)).sum::<f64>() / data.len() as f64;
        assert!((p[0] - mean0).abs() < 1e-6);
    }

    #[test]
    fn heavy_lambda_shrinks_toward_base() {
        let data = sine_dataset();
        let mut light = GradientBoostingRegressor::new(20).with_lambda(0.0);
        let mut heavy = GradientBoostingRegressor::new(20).with_lambda(1e6);
        light.fit(&data).unwrap();
        heavy.fit(&data).unwrap();
        let base: f64 = (0..data.len()).map(|r| data.y.get(r, 0)).sum::<f64>() / 64.0;
        let x = [1.5];
        let dl = (light.predict(&x).unwrap()[0] - base).abs();
        let dh = (heavy.predict(&x).unwrap()[0] - base).abs();
        assert!(dh < dl, "heavy λ must stay closer to the base");
        assert!(dh < 1e-3);
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let data = sine_dataset();
        let mut g1 = GradientBoostingRegressor::new(30)
            .with_subsample(0.5)
            .with_seed(11);
        let mut g2 = GradientBoostingRegressor::new(30)
            .with_subsample(0.5)
            .with_seed(11);
        g1.fit(&data).unwrap();
        g2.fit(&data).unwrap();
        for x in [0.3, 3.3, 6.0] {
            assert_eq!(g1.predict(&[x]).unwrap(), g2.predict(&[x]).unwrap());
        }
    }

    #[test]
    fn invalid_parameters_error() {
        let data = sine_dataset();
        assert!(GradientBoostingRegressor::new(0).fit(&data).is_err());
        assert!(GradientBoostingRegressor::new(5)
            .with_learning_rate(0.0)
            .fit(&data)
            .is_err());
        assert!(GradientBoostingRegressor::new(5)
            .with_learning_rate(1.5)
            .fit(&data)
            .is_err());
        assert!(GradientBoostingRegressor::new(5)
            .with_subsample(0.0)
            .fit(&data)
            .is_err());
        let g = GradientBoostingRegressor::new(5);
        assert!(g.predict(&[1.0]).is_err()); // unfitted
    }

    #[test]
    fn n_fitted_rounds_reports() {
        let mut g = GradientBoostingRegressor::new(13);
        assert_eq!(g.n_fitted_rounds(), 0);
        g.fit(&sine_dataset()).unwrap();
        assert_eq!(g.n_fitted_rounds(), 13);
    }
}
