//! Distance metrics for the kNN regressor.
//!
//! The paper found cosine distance to outperform Euclidean and other
//! metrics for application-profile neighbourhoods (Section III-B3); all
//! four common options are provided so the ablation benches can reproduce
//! that comparison.

use serde::{Deserialize, Serialize};

use pv_stats::kernel::{max_abs_diff4, sq_norm4, sum_abs_diff4, sum_sq_diff4};

/// Distance metric between feature rows.
///
/// `Hash` (alongside `Eq`/serde) lets ablation-grid configs that carry a
/// distance axis key cell sets and caches the same way the core sweep
/// configs do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Distance {
    /// `√Σ(aᵢ−bᵢ)²`.
    Euclidean,
    /// `Σ|aᵢ−bᵢ|`.
    Manhattan,
    /// `1 − cos(a, b)`; the paper's choice for profile features.
    #[default]
    Cosine,
    /// `max|aᵢ−bᵢ|`.
    Chebyshev,
}

impl Distance {
    /// Evaluates the distance between two equal-length rows.
    ///
    /// Rows are assumed finite and equal length (the kNN regressor
    /// validates at fit/predict boundaries); in debug builds a mismatch
    /// panics.
    ///
    /// All four metrics accumulate through the chunked four-lane
    /// kernels of [`pv_stats::kernel`]. Cosine keeps `dot`, `na`, `nb`
    /// as three independent chains (now in chunked lane order), so the
    /// norm-hoisted [`cosine_with_sq_norms`] stays bit-identical to this
    /// path — the same invariant the old element-order scalar loops had,
    /// re-established on the vectorized lane order.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::Euclidean => sum_sq_diff4(a, b).sqrt(),
            Distance::Manhattan => sum_abs_diff4(a, b),
            Distance::Cosine => crate::kernel::cosine(a, b),
            Distance::Chebyshev => max_abs_diff4(a, b),
        }
    }
}

/// `Σxᵢ²` of a row, accumulated in the chunked lane order of
/// [`pv_stats::kernel::sq_norm4`] — the quantity cosine recomputes for
/// both rows on every pair. Callers that score one query against many
/// candidates (kNN) compute it once per row and pass it to
/// [`cosine_with_sq_norms`].
#[inline]
pub fn squared_norm(v: &[f64]) -> f64 {
    sq_norm4(v)
}

/// Cosine distance with both squared norms precomputed.
///
/// Bit-identical to [`Distance::Cosine`]'s `eval`: both paths compute
/// `dot`, `na`, `nb` through the same chunked kernels as three
/// independent chains, so hoisting the norm chains out changes no
/// rounding (asserted in `cached_norms_match_naive_cosine_bitwise`).
/// The norms must come from [`squared_norm`] for the guarantee to hold.
#[inline]
pub fn cosine_with_sq_norms(a: &[f64], b: &[f64], na: f64, nb: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernel::cosine_cached(a, b, na, nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean() {
        // √(9 + 16 + 0) = 5
        assert!((Distance::Euclidean.eval(&A, &B) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan() {
        assert!((Distance::Manhattan.eval(&A, &B) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev() {
        assert!((Distance::Chebyshev.eval(&A, &B) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_identical_rows_are_distance_zero() {
        assert!(Distance::Cosine.eval(&A, &A).abs() < 1e-12);
    }

    #[test]
    fn cosine_scaled_rows_are_distance_zero() {
        let scaled: Vec<f64> = A.iter().map(|x| x * 7.0).collect();
        assert!(Distance::Cosine.eval(&A, &scaled).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_rows_are_distance_two() {
        let neg: Vec<f64> = A.iter().map(|x| -x).collect();
        assert!((Distance::Cosine.eval(&A, &neg) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_maximally_distant() {
        assert_eq!(Distance::Cosine.eval(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn all_metrics_are_zero_on_identical_and_nonnegative() {
        for d in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Cosine,
            Distance::Chebyshev,
        ] {
            assert!(d.eval(&A, &A).abs() < 1e-12, "{d:?}");
            assert!(d.eval(&A, &B) >= 0.0, "{d:?}");
        }
    }

    #[test]
    fn default_is_cosine() {
        assert_eq!(Distance::default(), Distance::Cosine);
    }

    #[test]
    fn cached_norms_match_naive_cosine_bitwise() {
        // Deterministic pseudo-random rows (LCG) across widths, plus the
        // zero-vector edge case: the cached-norm path must reproduce the
        // naive interleaved loop to the last bit.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        for width in [1usize, 3, 8, 33] {
            for _ in 0..16 {
                let a: Vec<f64> = (0..width).map(|_| next()).collect();
                let b: Vec<f64> = (0..width).map(|_| next()).collect();
                let naive = Distance::Cosine.eval(&a, &b);
                let cached = cosine_with_sq_norms(&a, &b, squared_norm(&a), squared_norm(&b));
                assert_eq!(naive.to_bits(), cached.to_bits());
            }
        }
        let z = vec![0.0; 4];
        let b: Vec<f64> = (0..4).map(|_| next()).collect();
        assert_eq!(
            Distance::Cosine.eval(&z, &b).to_bits(),
            cosine_with_sq_norms(&z, &b, squared_norm(&z), squared_norm(&b)).to_bits()
        );
    }
}
