//! Property tests for the ML substrate.

use proptest::prelude::*;
use pv_ml::cv::{k_fold, leave_one_group_out};
use pv_ml::{
    Dataset, DenseMatrix, Distance, GradientBoostingRegressor, KnnRegressor, RandomForestRegressor,
    Regressor, StandardScaler,
};

fn small_dataset() -> impl Strategy<Value = Dataset> {
    // 4..24 rows, 1..5 features, 1..3 outputs, values in a sane range.
    (4usize..24, 1usize..5, 1usize..3).prop_flat_map(|(n, d, t)| {
        (
            prop::collection::vec(-100.0..100.0f64, n * d),
            prop::collection::vec(-100.0..100.0f64, n * t),
        )
            .prop_map(move |(xs, ys)| {
                Dataset::ungrouped(
                    DenseMatrix::from_flat(n, d, xs).unwrap(),
                    DenseMatrix::from_flat(n, t, ys).unwrap(),
                )
                .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn knn_prediction_stays_in_target_hull(data in small_dataset(), q in -120.0..120.0f64) {
        let mut m = KnnRegressor::new(3).with_distance(Distance::Euclidean);
        m.fit(&data).unwrap();
        let query = vec![q; data.n_features()];
        let p = m.predict(&query).unwrap();
        for (c, &pc) in p.iter().enumerate().take(data.n_outputs()) {
            let col = data.y.column(c);
            let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(pc >= lo - 1e-9 && pc <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_prediction_stays_in_target_hull(data in small_dataset()) {
        let mut m = RandomForestRegressor::new(10).with_seed(1);
        m.fit(&data).unwrap();
        let q: Vec<f64> = data.x.row(0).to_vec();
        let p = m.predict(&q).unwrap();
        for (c, &pc) in p.iter().enumerate().take(data.n_outputs()) {
            let col = data.y.column(c);
            let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(pc >= lo - 1e-9 && pc <= hi + 1e-9);
        }
    }

    #[test]
    fn gbt_training_prediction_close_on_pure_targets(n in 4usize..20, v in -50.0..50.0f64) {
        // Constant targets: boosting must recover them (base = mean).
        let x = DenseMatrix::from_flat(n, 1, (0..n).map(|i| i as f64).collect()).unwrap();
        let y = DenseMatrix::from_flat(n, 1, vec![v; n]).unwrap();
        let data = Dataset::ungrouped(x, y).unwrap();
        let mut g = GradientBoostingRegressor::new(5);
        g.fit(&data).unwrap();
        let p = g.predict(&[0.0]).unwrap();
        prop_assert!((p[0] - v).abs() < 1e-6);
    }

    #[test]
    fn scaler_roundtrip(data in small_dataset()) {
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&data.x).unwrap();
        for r in 0..data.x.rows() {
            let mut row = t.row(r).to_vec();
            s.inverse_row(&mut row).unwrap();
            for (got, want) in row.iter().zip(data.x.row(r)) {
                prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn logo_splits_are_a_partition(groups in prop::collection::vec(0usize..6, 4..40)) {
        let distinct: std::collections::BTreeSet<_> = groups.iter().collect();
        prop_assume!(distinct.len() >= 2);
        let splits = leave_one_group_out(&groups).unwrap();
        prop_assert_eq!(splits.len(), distinct.len());
        let mut seen = vec![0usize; groups.len()];
        for s in &splits {
            for &i in &s.test {
                seen[i] += 1;
            }
            for &i in &s.train {
                prop_assert!(!s.test.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_is_a_partition(n in 4usize..60, k in 2usize..6, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let splits = k_fold(n, k, Some(seed)).unwrap();
        let mut all: Vec<usize> = splits.iter().flat_map(|s| s.test.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for s in &splits {
            prop_assert_eq!(s.train.len() + s.test.len(), n);
        }
    }
}
