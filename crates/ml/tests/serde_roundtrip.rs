//! Fitted-model serialization: every regressor (and the scaler) must
//! survive a JSON round trip with its prediction bits intact — the
//! invariant the model registry's serving guarantee rests on. These
//! tests pin the *stored state*, not just behaviour: kNN keeps its
//! training rows verbatim, trees keep their split thresholds.

use pv_ml::{
    Dataset, DenseMatrix, Distance, GradientBoostingRegressor, KnnRegressor, MaxFeatures,
    RandomForestRegressor, Regressor, StandardScaler,
};

/// A small deterministic regression problem: 40 rows, 6 features,
/// 2 targets, one group per row (LOGO-compatible).
fn dataset() -> Dataset {
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..40 {
        let row: Vec<f64> = (0..6).map(|_| next() * 10.0 - 5.0).collect();
        let y0 = row.iter().sum::<f64>() + next() * 0.1;
        let y1 = row[0] * row[1] - row[2] + next() * 0.1;
        targets.push(vec![y0, y1]);
        rows.push(row);
    }
    let x = DenseMatrix::from_rows(&rows).expect("x");
    let y = DenseMatrix::from_rows(&targets).expect("y");
    let groups = (0..40).collect();
    Dataset::new(x, y, groups).expect("dataset")
}

fn probes() -> Vec<Vec<f64>> {
    vec![
        vec![0.5, -1.0, 2.0, 0.0, 1.5, -0.5],
        vec![-4.0, 3.0, 0.25, 1.0, -2.0, 0.75],
        vec![1.0; 6],
    ]
}

fn assert_bit_identical<M: Regressor>(fitted: &M, reloaded: &M, tag: &str) {
    for (i, p) in probes().iter().enumerate() {
        assert_eq!(
            fitted.predict(p).expect("predict"),
            reloaded.predict(p).expect("predict"),
            "{tag}: probe {i} prediction changed across serde round trip"
        );
    }
}

#[test]
fn knn_round_trip_preserves_stored_rows_and_predictions() {
    let data = dataset();
    let mut knn = KnnRegressor::new(5).with_distance(Distance::Cosine);
    knn.fit(&data).expect("fit");
    let json = serde_json::to_string(&knn).expect("serialize");
    let reloaded: KnnRegressor = serde_json::from_str(&json).expect("deserialize");
    // The stored training rows are the model: the serialized form must
    // carry them bit-exactly, which the vendored serde shows as full
    // structural equality of the JSON re-serialization.
    assert_eq!(
        json,
        serde_json::to_string(&reloaded).expect("reserialize"),
        "kNN stored state drifted across a round trip"
    );
    for row in [data.x.row(0), data.x.row(17)] {
        assert!(json.contains(&format!("{}", row[0])) || row[0].fract() == 0.0);
    }
    assert_bit_identical(&knn, &reloaded, "knn");
}

#[test]
fn forest_round_trip_preserves_thresholds_and_predictions() {
    let data = dataset();
    let mut forest = RandomForestRegressor::new(12)
        .with_max_depth(6)
        .with_max_features(MaxFeatures::Sqrt)
        .with_seed(7);
    forest.fit(&data).expect("fit");
    let json = serde_json::to_string(&forest).expect("serialize");
    let reloaded: RandomForestRegressor = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(
        json,
        serde_json::to_string(&reloaded).expect("reserialize"),
        "forest split thresholds drifted across a round trip"
    );
    assert_bit_identical(&forest, &reloaded, "forest");
}

#[test]
fn gbt_round_trip_preserves_thresholds_and_predictions() {
    let data = dataset();
    let mut gbt = GradientBoostingRegressor::new(20)
        .with_learning_rate(0.1)
        .with_max_depth(3)
        .with_lambda(1.0)
        .with_subsample(0.9)
        .with_seed(7);
    gbt.fit(&data).expect("fit");
    let json = serde_json::to_string(&gbt).expect("serialize");
    let reloaded: GradientBoostingRegressor = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(
        json,
        serde_json::to_string(&reloaded).expect("reserialize"),
        "boosting ensemble drifted across a round trip"
    );
    assert_bit_identical(&gbt, &reloaded, "gbt");
}

#[test]
fn scaler_round_trip_preserves_moments() {
    let data = dataset();
    let mut scaler = StandardScaler::new();
    scaler.fit(&data.x).expect("fit");
    let json = serde_json::to_string(&scaler).expect("serialize");
    let reloaded: StandardScaler = serde_json::from_str(&json).expect("deserialize");
    let probe = probes().remove(0);
    let mut a = probe.clone();
    let mut b = probe;
    scaler.transform_row(&mut a).expect("transform");
    reloaded.transform_row(&mut b).expect("transform");
    assert_eq!(a, b, "scaler moments drifted across a round trip");
}
