//! Incremental fold-level evaluation: per-fold score cache with
//! corpus-append delta recompute.
//!
//! A LOGO evaluation is a set of independent folds, and each fold's score
//! is a pure function of (config, held-out benchmark, ordered training
//! set). This module keys every fold by a **fold fingerprint** — FNV-1a
//! over the config's canonical JSON, the held-out benchmark's content
//! digest, and the *ordered* per-benchmark digests of its training set
//! (order matters: [`pv_ml::StandardScaler`] accumulates moments in row
//! order, so permuted training sets are not bit-identical) — and reuses
//! cached [`FoldEntry`]s whenever the fingerprint proves nothing the fold
//! can observe has changed.
//!
//! When a corpus *grows* (benchmarks appended to the roster), every old
//! fold's training set changes, so exact fingerprint hits never fire on
//! an append. For uniform-weight kNN there is a cheaper truth: the
//! prediction is the mean of the neighbours' unscaled target rows,
//! accumulated in ascending row order — a pure function of the
//! neighbour *set*. If the held-out query's k-set survives the append
//! (standardization shifts every distance and near-ties swap ranks, but
//! membership only changes when the new rows actually enter the
//! neighbourhood — expected rate ≈ k/n per appended benchmark), the
//! prediction — and the decode and KS score behind it, which dominate
//! fold cost — is bit-identical. The **delta path** prepares the fold
//! (cheap: row assembly + scaling), fits the kNN (cheap: it just stores
//! rows), recomputes the canonical neighbour set, and reuses the cached
//! score on an exact match; any mismatch falls through to a full
//! recompute. Soundness rests on three pinned properties:
//!
//! * `ModelKind::neighbor_delta_model` is exactly what `build` runs for
//!   kNN (uniform weights, k = 15, cosine), and uniform-kNN accumulates
//!   its mean in ascending row order, so the neighbour set fully
//!   determines the prediction bit-for-bit.
//! * Fold assembly is include-rank-major, so surviving rows keep their
//!   matrix positions when the roster grows and cached `u32` row indices
//!   stay comparable.
//! * kNN neighbour *selection* is canonical — `(distance, row index)`
//!   under `total_cmp` — so the k-set is deterministic, not a
//!   `select_nth` accident, and `neighbor_indices` reports it sorted
//!   ascending.
//!
//! Every cached entry carries an integrity digest over its own fields; a
//! tampered or torn entry fails [`FoldEntry::verify`] and is recomputed,
//! never trusted (mirroring the sweep cell cache's verified loads).

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pv_ml::{KnnRegressor, Regressor};
use pv_stats::fingerprint::Fnv1a;
use pv_stats::StatsError;

use crate::eval::{
    cross_system_assemble, cross_system_runner, cross_system_truth, few_runs_assemble,
    few_runs_runner, few_runs_truth, validate_cross_system_pair, validate_cross_system_sharded,
    BenchScore, EvalSummary,
};
use crate::pipeline::{EncodedCorpus, FoldRunner, FoldTruth, FoldView};
use crate::shard::{
    cross_system_assemble_sharded, few_runs_assemble_sharded, sharded_truth, ShardedCorpus,
};
use crate::usecase1::FewRunsConfig;
use crate::usecase2::CrossSystemConfig;

/// Domain tag of the fold fingerprint; bump to orphan all cached folds
/// on any change to fold evaluation semantics.
const FOLD_FP_TAG: &str = "pv-fold-v1";

/// The fold fingerprint: everything fold `held_index`'s score is a
/// function of, hashed bit-exactly.
///
/// `config_json` is the canonical serde_json form of the evaluation
/// config (repr, model, sample count, windows, seed); `held_fp` is the
/// held-out benchmark's content digest; `train_fps` are the training
/// benchmarks' digests **in training order**.
pub fn fold_fingerprint(
    config_json: &str,
    held_index: usize,
    held_fp: u64,
    train_fps: &[u64],
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(FOLD_FP_TAG);
    h.write_str(config_json);
    h.write_usize(held_index);
    h.write_u64(held_fp);
    h.write_usize(train_fps.len());
    for &fp in train_fps {
        h.write_u64(fp);
    }
    h.finish()
}

/// One cached fold: its fingerprint inputs, its score, and (for kNN) the
/// held-out query's canonical ordered neighbour list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldEntry {
    /// Fold index (= held-out benchmark's roster index).
    pub held_index: usize,
    /// Content digest of the held-out benchmark.
    pub held_fp: u64,
    /// Content digests of the training benchmarks, training order.
    pub train_fps: Vec<u64>,
    /// The fold fingerprint ([`fold_fingerprint`] over the above plus
    /// the config).
    pub fold_fp: u64,
    /// The fold's KS score.
    pub score: BenchScore,
    /// The held-out query's neighbour row indices, ascending (`Some`
    /// only for neighbour-delta-eligible models, i.e. kNN).
    pub neighbors: Option<Vec<u32>>,
    /// Integrity digest over every field above; entries that fail
    /// [`FoldEntry::verify`] are recomputed, not trusted.
    pub check: u64,
}

impl FoldEntry {
    fn integrity(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("pv-fold-entry-v1");
        h.write_usize(self.held_index);
        h.write_u64(self.held_fp);
        h.write_usize(self.train_fps.len());
        for &fp in &self.train_fps {
            h.write_u64(fp);
        }
        h.write_u64(self.fold_fp);
        h.write_str(&self.score.id.qualified());
        h.write_f64(self.score.ks);
        match &self.neighbors {
            None => h.write_usize(0),
            Some(n) => {
                h.write_usize(1);
                h.write_usize(n.len());
                for &i in n {
                    h.write_u64(i as u64);
                }
            }
        }
        h.finish()
    }

    /// Seals the entry: stamps the integrity digest.
    fn sealed(mut self) -> Self {
        self.check = self.integrity();
        self
    }

    /// Whether the entry's integrity digest matches its content.
    pub fn verify(&self) -> bool {
        self.check == self.integrity()
    }
}

/// Per-fold cache tallies of one incremental evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldCacheStats {
    /// Folds reused on an exact fold-fingerprint match.
    pub hits: usize,
    /// Folds reused after a verified kNN neighbour-delta check.
    pub deltas: usize,
    /// Folds recomputed in full.
    pub misses: usize,
}

impl FoldCacheStats {
    /// Total folds the evaluation covered.
    pub fn total(&self) -> usize {
        self.hits + self.deltas + self.misses
    }

    /// Folds served from cache (exact hits + verified deltas).
    pub fn reused(&self) -> usize {
        self.hits + self.deltas
    }

    /// Element-wise sum (for aggregating across sweep cells).
    pub fn add(&mut self, other: &FoldCacheStats) {
        self.hits += other.hits;
        self.deltas += other.deltas;
        self.misses += other.misses;
    }
}

/// An incremental evaluation's full result: the summary (bit-identical
/// to a cold run), the fold entries to persist for the next run, and
/// the hit/delta/miss tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalEval {
    /// The aggregate, bit-identical to the non-incremental evaluation.
    pub summary: EvalSummary,
    /// Per-fold entries (fold order) for the next run's `prior`.
    pub folds: Vec<FoldEntry>,
    /// How the folds were served.
    pub stats: FoldCacheStats,
}

/// Whether `old` is a strict prefix of `new` — the training-set shape a
/// pure corpus append produces for every surviving fold.
fn is_strict_prefix(old: &[u64], new: &[u64]) -> bool {
    old.len() < new.len() && new[..old.len()] == *old
}

/// The generic incremental fold loop shared by both use cases.
///
/// For each fold: an exact fold-fingerprint match against a verified
/// prior entry reuses the cached score outright; otherwise, when
/// `delta_model` is available and the prior entry describes the same
/// held-out benchmark under this config with a strictly-grown training
/// set, the fold is prepared and the cached score reused iff the
/// recomputed canonical neighbour set matches; everything else is a
/// full recompute. Folds run in parallel; rayon preserves order, and
/// every reuse is bit-identical by construction, so the summary is
/// independent of both thread count and cache state.
/// The cache-side inputs of [`run_folds`]: everything fold identity and
/// reuse decisions read, as opposed to the evaluation closures.
struct FoldReuse<'p> {
    /// Per-benchmark content digests, roster order.
    bench_fps: &'p [u64],
    /// Canonical config JSON (hashed into every fold fingerprint).
    config_json: &'p str,
    /// The neighbour-delta probe model, when the config's model is
    /// delta-eligible (kNN).
    delta_model: Option<KnnRegressor>,
    /// Fold entries from a previous run (any corpus state).
    prior: &'p [FoldEntry],
}

fn run_folds<'a, M, A, T>(
    runner: &FoldRunner<'_>,
    build_model: M,
    assemble: A,
    truth: T,
    reuse: FoldReuse<'_>,
) -> Result<IncrementalEval, StatsError>
where
    M: Fn(u64) -> Box<dyn Regressor> + Send + Sync,
    A: Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError> + Send + Sync,
    T: Fn(usize) -> Result<FoldTruth<'a>, StatsError> + Send + Sync,
{
    let FoldReuse {
        bench_fps,
        config_json,
        delta_model,
        prior,
    } = reuse;
    let _span = pv_obs::span!("pv.core.pipeline.logo_eval", folds = runner.n_folds);
    let hits = AtomicUsize::new(0);
    let deltas = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let folds: Result<Vec<FoldEntry>, StatsError> = (0..runner.n_folds)
        .into_par_iter()
        .map(|held| {
            let _fold_span = pv_obs::span!("pv.core.pipeline.fold", held = held);
            let held_fp = bench_fps[held];
            let train_fps: Vec<u64> = (0..runner.n_folds)
                .filter(|&i| i != held)
                .map(|i| bench_fps[i])
                .collect();
            let fold_fp = fold_fingerprint(config_json, held, held_fp, &train_fps);
            // Verification at the point of consumption: a prior entry
            // that fails its integrity digest is simply absent.
            let cached = prior.iter().find(|e| e.held_index == held && e.verify());

            if let Some(e) = cached {
                if e.fold_fp == fold_fp {
                    // Nothing this fold observes has changed.
                    pv_obs::counter_inc!("pv.core.pipeline.fold_cache.hit");
                    hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(FoldEntry {
                        held_index: held,
                        held_fp,
                        train_fps,
                        fold_fp,
                        score: e.score,
                        neighbors: e.neighbors.clone(),
                        check: 0,
                    }
                    .sealed());
                }
                // Delta eligibility: the entry must have been produced
                // under this exact config (its own fold fingerprint must
                // reproduce from its stored inputs — that pins the
                // config JSON), describe the same held-out content, and
                // its training set must be a strict prefix of ours (a
                // pure append).
                let same_config_and_held = e.held_fp == held_fp
                    && fold_fingerprint(config_json, held, e.held_fp, &e.train_fps) == e.fold_fp;
                if let (Some(knn), Some(old_neighbors), true) = (
                    &delta_model,
                    e.neighbors.as_ref(),
                    same_config_and_held && is_strict_prefix(&e.train_fps, &train_fps),
                ) {
                    let prepared = runner.prepare_fold(held, &assemble)?;
                    let mut knn = knn.clone();
                    knn.fit(&prepared.data)?;
                    let neighbors = knn.neighbor_indices(&prepared.query)?;
                    if &neighbors == old_neighbors {
                        // Same neighbour set ⇒ same row-ordered mean of
                        // the same unscaled target rows ⇒ bit-identical
                        // predict, decode, and KS. Skip all three.
                        pv_obs::counter_inc!("pv.core.pipeline.fold_cache.delta");
                        deltas.fetch_add(1, Ordering::Relaxed);
                        return Ok(FoldEntry {
                            held_index: held,
                            held_fp,
                            train_fps,
                            fold_fp,
                            score: e.score,
                            neighbors: Some(neighbors),
                            check: 0,
                        }
                        .sealed());
                    }
                    // The append disturbed the neighbourhood: pay for
                    // the back half on the already-prepared fold.
                    pv_obs::counter_inc!("pv.core.pipeline.fold_cache.miss");
                    misses.fetch_add(1, Ordering::Relaxed);
                    let score = runner.score_fold(held, &prepared, &build_model, &truth)?;
                    return Ok(FoldEntry {
                        held_index: held,
                        held_fp,
                        train_fps,
                        fold_fp,
                        score,
                        neighbors: Some(neighbors),
                        check: 0,
                    }
                    .sealed());
                }
            }

            // Full recompute; for delta-eligible models also record the
            // canonical neighbour list so the *next* run can delta.
            pv_obs::counter_inc!("pv.core.pipeline.fold_cache.miss");
            misses.fetch_add(1, Ordering::Relaxed);
            let prepared = runner.prepare_fold(held, &assemble)?;
            let neighbors = match &delta_model {
                Some(knn) => {
                    let mut knn = knn.clone();
                    knn.fit(&prepared.data)?;
                    Some(knn.neighbor_indices(&prepared.query)?)
                }
                None => None,
            };
            let score = runner.score_fold(held, &prepared, &build_model, &truth)?;
            Ok(FoldEntry {
                held_index: held,
                held_fp,
                train_fps,
                fold_fp,
                score,
                neighbors,
                check: 0,
            }
            .sealed())
        })
        .collect();
    let folds = folds?;
    let summary = EvalSummary::from_scores(folds.iter().map(|f| f.score).collect())?;
    Ok(IncrementalEval {
        summary,
        folds,
        stats: FoldCacheStats {
            hits: hits.load(Ordering::Relaxed),
            deltas: deltas.load(Ordering::Relaxed),
            misses: misses.load(Ordering::Relaxed),
        },
    })
}

/// Serializes a config into the canonical JSON the fold fingerprint
/// hashes.
fn config_json<C: Serialize>(tag: &str, cfg: &C) -> Result<String, StatsError> {
    let json = serde_json::to_string(cfg)
        .map_err(|e| StatsError::invalid("incremental", format!("serialize config: {e}")))?;
    Ok(format!("{tag}:{json}"))
}

/// Incremental [`crate::eval::evaluate_few_runs_encoded`]: bit-identical
/// summary, but folds whose fingerprints (or kNN neighbour lists) match
/// verified `prior` entries are served from cache.
///
/// With an empty `prior` this is a cold run that additionally returns
/// the fold entries to seed the next one.
///
/// # Errors
/// Everything the non-incremental evaluation can fail with.
pub fn evaluate_few_runs_incremental(
    enc: &EncodedCorpus,
    cfg: FewRunsConfig,
    prior: &[FoldEntry],
) -> Result<IncrementalEval, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.few_runs",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.n_profile_runs,
    );
    let json = config_json("uc1", &cfg)?;
    let repr = cfg.repr.build();
    let runner = few_runs_runner(enc.len(), &cfg, repr.as_ref());
    run_folds(
        &runner,
        |fold_seed| cfg.model.build(fold_seed),
        few_runs_assemble(enc, cfg),
        few_runs_truth(enc),
        FoldReuse {
            bench_fps: enc.bench_fingerprints(),
            config_json: &json,
            delta_model: cfg.model.neighbor_delta_model(),
            prior,
        },
    )
}

/// Incremental [`crate::eval::evaluate_cross_system_encoded`]; see
/// [`evaluate_few_runs_incremental`].
///
/// Per-fold fingerprints hash the *pair* of source/destination benchmark
/// digests, so a change on either system invalidates exactly the folds
/// that observe it.
///
/// # Errors
/// Everything the non-incremental evaluation can fail with.
pub fn evaluate_cross_system_incremental(
    src: &EncodedCorpus,
    dst: &EncodedCorpus,
    cfg: CrossSystemConfig,
    prior: &[FoldEntry],
) -> Result<IncrementalEval, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.cross_system",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.profile_runs,
    );
    validate_cross_system_pair(src.corpus(), dst.corpus())?;
    let json = config_json("uc2", &cfg)?;
    let bench_fps: Vec<u64> = src
        .bench_fingerprints()
        .iter()
        .zip(dst.bench_fingerprints())
        .map(|(&s, &d)| {
            let mut h = Fnv1a::new();
            h.write_str("pv-bench-pair");
            h.write_u64(s);
            h.write_u64(d);
            h.finish()
        })
        .collect();
    let repr = cfg.repr.build();
    let runner = cross_system_runner(src.len(), &cfg, repr.as_ref());
    run_folds(
        &runner,
        |fold_seed| cfg.model.build(fold_seed),
        cross_system_assemble(src, dst, cfg),
        cross_system_truth(dst),
        FoldReuse {
            bench_fps: &bench_fps,
            config_json: &json,
            delta_model: cfg.model.neighbor_delta_model(),
            prior,
        },
    )
}

/// Incremental [`crate::eval::evaluate_few_runs_sharded`]: the sharded
/// corpus analogue of [`evaluate_few_runs_incremental`].
///
/// Fold fingerprints hash the per-benchmark digests the shards carry —
/// the same digests the monolithic path computes, independent of shard
/// layout — so fold entries written by a monolithic run serve exact hits
/// and append-deltas to a sharded run of the same campaign and vice
/// versa, at any shard size.
///
/// # Errors
/// Everything the non-incremental sharded evaluation can fail with.
pub fn evaluate_few_runs_incremental_sharded(
    sh: &ShardedCorpus<'_>,
    cfg: FewRunsConfig,
    prior: &[FoldEntry],
) -> Result<IncrementalEval, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.few_runs",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.n_profile_runs,
    );
    let json = config_json("uc1", &cfg)?;
    let repr = cfg.repr.build();
    let runner = few_runs_runner(sh.len(), &cfg, repr.as_ref());
    run_folds(
        &runner,
        |fold_seed| cfg.model.build(fold_seed),
        few_runs_assemble_sharded(sh, cfg),
        sharded_truth(sh),
        FoldReuse {
            bench_fps: sh.bench_fingerprints(),
            config_json: &json,
            delta_model: cfg.model.neighbor_delta_model(),
            prior,
        },
    )
}

/// Incremental [`crate::eval::evaluate_cross_system_sharded`]; see
/// [`evaluate_few_runs_incremental_sharded`].
///
/// # Errors
/// Everything the non-incremental sharded evaluation can fail with.
pub fn evaluate_cross_system_incremental_sharded(
    src: &ShardedCorpus<'_>,
    dst: &ShardedCorpus<'_>,
    cfg: CrossSystemConfig,
    prior: &[FoldEntry],
) -> Result<IncrementalEval, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.cross_system",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.profile_runs,
    );
    validate_cross_system_sharded(src, dst)?;
    let json = config_json("uc2", &cfg)?;
    let bench_fps: Vec<u64> = src
        .bench_fingerprints()
        .iter()
        .zip(dst.bench_fingerprints())
        .map(|(&s, &d)| {
            let mut h = Fnv1a::new();
            h.write_str("pv-bench-pair");
            h.write_u64(s);
            h.write_u64(d);
            h.finish()
        })
        .collect();
    let repr = cfg.repr.build();
    let runner = cross_system_runner(src.len(), &cfg, repr.as_ref());
    run_folds(
        &runner,
        |fold_seed| cfg.model.build(fold_seed),
        cross_system_assemble_sharded(src, dst, cfg),
        sharded_truth(dst),
        FoldReuse {
            bench_fps: &bench_fps,
            config_json: &json,
            delta_model: cfg.model.neighbor_delta_model(),
            prior,
        },
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_few_runs_encoded, few_runs_spec};
    use crate::model::ModelKind;
    use crate::pipeline::EncodingSpec;
    use crate::repr::ReprKind;
    use pv_sysmodel::{Corpus, SystemModel};

    fn corpus(n_runs: usize) -> Corpus {
        Corpus::collect(&SystemModel::intel(), n_runs, 5)
    }

    fn truncated(c: &Corpus, drop: usize) -> Corpus {
        let mut t = c.clone();
        t.benchmarks.truncate(t.benchmarks.len() - drop);
        t
    }

    fn cfg() -> FewRunsConfig {
        FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: 5,
            profiles_per_benchmark: 1,
            seed: 9,
        }
    }

    #[test]
    fn cold_incremental_matches_plain_eval_bitwise() {
        let c = corpus(30);
        let enc = EncodedCorpus::build(&c, &few_runs_spec(&cfg())).unwrap();
        let plain = evaluate_few_runs_encoded(&enc, cfg()).unwrap();
        let inc = evaluate_few_runs_incremental(&enc, cfg(), &[]).unwrap();
        assert_eq!(inc.summary, plain);
        assert_eq!(inc.stats.misses, c.len());
        assert_eq!(inc.stats.reused(), 0);
        assert_eq!(inc.folds.len(), c.len());
        assert!(inc.folds.iter().all(|f| f.verify()));
        assert!(inc.folds.iter().all(|f| f.neighbors.is_some()));
    }

    #[test]
    fn same_corpus_rerun_is_all_exact_hits() {
        let c = corpus(30);
        let enc = EncodedCorpus::build(&c, &few_runs_spec(&cfg())).unwrap();
        let cold = evaluate_few_runs_incremental(&enc, cfg(), &[]).unwrap();
        let warm = evaluate_few_runs_incremental(&enc, cfg(), &cold.folds).unwrap();
        assert_eq!(warm.summary, cold.summary);
        assert_eq!(warm.stats.hits, c.len());
        assert_eq!(warm.stats.misses, 0);
        assert_eq!(warm.folds, cold.folds);
    }

    #[test]
    fn append_reuses_unchanged_folds_and_stays_bit_identical() {
        let full = corpus(30);
        let small = truncated(&full, 1);
        let spec = few_runs_spec(&cfg());
        let small_enc = EncodedCorpus::build(&small, &spec).unwrap();
        let prior = evaluate_few_runs_incremental(&small_enc, cfg(), &[]).unwrap();

        let full_enc = EncodedCorpus::build(&full, &spec).unwrap();
        let warm = evaluate_few_runs_incremental(&full_enc, cfg(), &prior.folds).unwrap();
        let cold = evaluate_few_runs_encoded(&full_enc, cfg()).unwrap();
        assert_eq!(warm.summary, cold, "reuse must be bit-identical");
        // An append changes every surviving fold's training set, so
        // exact hits cannot fire; reuse comes from the delta path.
        assert_eq!(warm.stats.hits, 0);
        assert!(
            warm.stats.deltas > 0,
            "expected some neighbour-stable folds: {:?}",
            warm.stats
        );
        // The appended benchmark's own fold has no prior entry.
        assert!(warm.stats.misses >= 1);
        assert_eq!(warm.stats.total(), full.len());
    }

    #[test]
    fn append_result_is_thread_count_independent() {
        let full = corpus(30);
        let small = truncated(&full, 1);
        let spec = few_runs_spec(&cfg());
        let small_enc = EncodedCorpus::build(&small, &spec).unwrap();
        let prior = evaluate_few_runs_incremental(&small_enc, cfg(), &[]).unwrap();
        let full_enc = EncodedCorpus::build(&full, &spec).unwrap();
        let baseline = evaluate_few_runs_incremental(&full_enc, cfg(), &prior.folds).unwrap();
        for n in [1, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            let under = pool
                .install(|| evaluate_few_runs_incremental(&full_enc, cfg(), &prior.folds))
                .unwrap();
            assert_eq!(baseline.summary, under.summary, "{n} threads");
            assert_eq!(baseline.stats, under.stats, "{n} threads");
            assert_eq!(baseline.folds, under.folds, "{n} threads");
        }
    }

    #[test]
    fn tampered_prior_entry_is_recomputed_not_trusted() {
        let c = corpus(30);
        let enc = EncodedCorpus::build(&c, &few_runs_spec(&cfg())).unwrap();
        let cold = evaluate_few_runs_incremental(&enc, cfg(), &[]).unwrap();
        let mut vandalized = cold.folds.clone();
        // A lying score with a stale integrity digest…
        vandalized[3].score.ks += 0.25;
        // …and one where the attacker also "fixed" nothing else.
        vandalized[7].fold_fp ^= 1;
        let warm = evaluate_few_runs_incremental(&enc, cfg(), &vandalized).unwrap();
        // Both tampered folds fail verification and recompute; the
        // summary still comes out bit-identical to the cold run.
        assert_eq!(warm.summary, cold.summary);
        assert_eq!(warm.stats.hits, c.len() - 2);
        assert_eq!(warm.stats.misses, 2);
    }

    #[test]
    fn config_change_invalidates_every_fold() {
        let c = corpus(30);
        let spec = EncodingSpec::new()
            .profiles(5, 1)
            .target(ReprKind::PearsonRnd)
            .target(ReprKind::Histogram);
        let enc = EncodedCorpus::build(&c, &spec).unwrap();
        let cold = evaluate_few_runs_incremental(&enc, cfg(), &[]).unwrap();
        let other = FewRunsConfig {
            repr: ReprKind::Histogram,
            ..cfg()
        };
        let cross = evaluate_few_runs_incremental(&enc, other, &cold.folds).unwrap();
        // Same corpus, different config: no hit, no delta (the prior
        // entries' fingerprints don't reproduce under this config).
        assert_eq!(cross.stats.reused(), 0);
        assert_eq!(cross.stats.misses, c.len());
    }

    #[test]
    fn non_knn_models_never_take_the_delta_path() {
        let full = corpus(20);
        let small = truncated(&full, 1);
        let rf = FewRunsConfig {
            model: ModelKind::RandomForest,
            ..cfg()
        };
        let spec = few_runs_spec(&rf);
        let small_enc = EncodedCorpus::build(&small, &spec).unwrap();
        let prior = evaluate_few_runs_incremental(&small_enc, rf, &[]).unwrap();
        assert!(prior.folds.iter().all(|f| f.neighbors.is_none()));
        let full_enc = EncodedCorpus::build(&full, &spec).unwrap();
        let warm = evaluate_few_runs_incremental(&full_enc, rf, &prior.folds).unwrap();
        assert_eq!(warm.stats.reused(), 0);
        assert_eq!(warm.stats.misses, full.len());
        // And it still matches the cold evaluation bitwise.
        let cold = evaluate_few_runs_encoded(&full_enc, rf).unwrap();
        assert_eq!(warm.summary, cold);
    }

    #[test]
    fn cross_system_incremental_matches_and_caches() {
        let amd = Corpus::collect(&SystemModel::amd(), 30, 5);
        let intel = corpus(30);
        let uc2 = CrossSystemConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            profile_runs: 15,
            seed: 4,
        };
        let (src_spec, dst_spec) = crate::eval::cross_system_specs(&amd, &uc2);
        let src = EncodedCorpus::build(&amd, &src_spec).unwrap();
        let dst = EncodedCorpus::build(&intel, &dst_spec).unwrap();
        let cold = evaluate_cross_system_incremental(&src, &dst, uc2, &[]).unwrap();
        let plain = crate::eval::evaluate_cross_system_encoded(&src, &dst, uc2).unwrap();
        assert_eq!(cold.summary, plain);
        let warm = evaluate_cross_system_incremental(&src, &dst, uc2, &cold.folds).unwrap();
        assert_eq!(warm.stats.hits, amd.len());
        assert_eq!(warm.summary, plain);
    }

    #[test]
    fn strict_prefix_detection() {
        assert!(is_strict_prefix(&[1, 2], &[1, 2, 3]));
        assert!(!is_strict_prefix(&[1, 2], &[1, 2]));
        assert!(!is_strict_prefix(&[1, 3], &[1, 2, 3]));
        assert!(!is_strict_prefix(&[1, 2, 3], &[1, 2]));
        assert!(is_strict_prefix(&[], &[9]));
    }
}
