//! Accuracy-side ablations of the paper's inline design choices.
//!
//! Section III-B3 justifies two choices without showing data: cosine
//! similarity ("as opposed to the Euclidean distance or other distance
//! metrics which did not perform as well") and k = 15. This module makes
//! both claims reproducible experiments, plus two ablations of our own
//! knobs: histogram bin count and the reconstruction floor (how well each
//! representation does when handed the *true* encoding — the irreducible
//! error of the representation itself, with no model in the loop).

use rand::SeedableRng;

use pv_ml::{Dataset, DenseMatrix, Distance, KnnRegressor, Regressor, StandardScaler};
use pv_stats::ks::ks2_statistic;
use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use pv_sysmodel::Corpus;

use crate::eval::{BenchScore, EvalSummary, RECONSTRUCTION_SAMPLES};
use crate::profile::Profile;
use crate::repr::{DistributionRepr, HistogramRepr, ReprKind, REL_TIME_RANGE};

/// Leave-one-out kNN evaluation with an explicit distance metric and `k`,
/// PearsonRnd representation, `s`-run profiles. This is the engine behind
/// the distance and k ablations.
///
/// # Errors
/// Propagates training/encoding failures.
pub fn evaluate_knn_variant(
    corpus: &Corpus,
    distance: Distance,
    k: usize,
    s: usize,
    seed: u64,
) -> Result<EvalSummary, StatsError> {
    let repr = ReprKind::PearsonRnd.build();
    let n = corpus.len();
    // Precompute features and targets once (they don't depend on the
    // fold).
    let mut features: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut targets: Vec<Vec<f64>> = Vec::with_capacity(n);
    for b in &corpus.benchmarks {
        features.push(Profile::from_runs(&b.runs, s)?.features);
        targets.push(repr.encode(&b.runs.rel_times())?);
    }
    let scores = (0..n)
        .map(|held| {
            let train_idx: Vec<usize> = (0..n).filter(|&i| i != held).collect();
            let x_rows: Vec<Vec<f64>> =
                train_idx.iter().map(|&i| features[i].clone()).collect();
            let y_rows: Vec<Vec<f64>> = train_idx.iter().map(|&i| targets[i].clone()).collect();
            let x = DenseMatrix::from_rows(&x_rows)?;
            let y = DenseMatrix::from_rows(&y_rows)?;
            let mut scaler = StandardScaler::new();
            let x = scaler.fit_transform(&x)?;
            let mut model = KnnRegressor::new(k).with_distance(distance);
            model.fit(&Dataset::ungrouped(x, y)?)?;
            let mut q = features[held].clone();
            scaler.transform_row(&mut q)?;
            let predicted_features = model.predict(&q)?;
            let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(seed, held as u64));
            let predicted =
                repr.decode(&predicted_features, &mut rng, RECONSTRUCTION_SAMPLES)?;
            let ks = ks2_statistic(&predicted, &corpus.benchmarks[held].runs.rel_times())?;
            Ok(BenchScore {
                id: corpus.benchmarks[held].id,
                ks,
            })
        })
        .collect::<Result<Vec<_>, StatsError>>()?;
    EvalSummary::from_scores(scores)
}

/// The reconstruction floor of a representation: encode each benchmark's
/// *measured* distribution and decode it straight back (oracle
/// prediction). The resulting KS is the error attributable to the
/// representation alone.
///
/// # Errors
/// Propagates encoding/decoding failures.
pub fn reconstruction_floor(
    corpus: &Corpus,
    repr: &dyn DistributionRepr,
    seed: u64,
) -> Result<EvalSummary, StatsError> {
    let scores = corpus
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let rel = b.runs.rel_times();
            let f = repr.encode(&rel)?;
            let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(seed, i as u64));
            let back = repr.decode(&f, &mut rng, RECONSTRUCTION_SAMPLES)?;
            let ks = ks2_statistic(&back, &rel)?;
            Ok(BenchScore { id: b.id, ks })
        })
        .collect::<Result<Vec<_>, StatsError>>()?;
    EvalSummary::from_scores(scores)
}

/// Reconstruction floor of a histogram with an explicit bin count.
///
/// # Errors
/// Propagates encoding/decoding failures.
pub fn histogram_floor(corpus: &Corpus, bins: usize, seed: u64) -> Result<EvalSummary, StatsError> {
    let repr = HistogramRepr {
        n_bins: bins,
        range: REL_TIME_RANGE,
    };
    reconstruction_floor(corpus, &repr, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_sysmodel::SystemModel;

    fn corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 100, 0xC0FFEE)
    }

    #[test]
    fn knn_variant_produces_scores_for_all_benchmarks() {
        let c = corpus();
        let s = evaluate_knn_variant(&c, Distance::Cosine, 15, 10, 1).unwrap();
        assert_eq!(s.scores.len(), 60);
        assert!(s.mean > 0.0 && s.mean < 1.0);
    }

    #[test]
    fn extreme_k_is_worse_than_moderate_k() {
        // k = n−1 predicts the population average for everyone; that must
        // lose to a moderate neighbourhood.
        let c = corpus();
        let k15 = evaluate_knn_variant(&c, Distance::Cosine, 15, 10, 1).unwrap();
        let kall = evaluate_knn_variant(&c, Distance::Cosine, 59, 10, 1).unwrap();
        assert!(k15.mean < kall.mean, "k=15 {} vs k=59 {}", k15.mean, kall.mean);
    }

    #[test]
    fn reconstruction_floor_is_below_predicted_error() {
        // Oracle encodings must score at least as well as predictions.
        let c = corpus();
        let repr = ReprKind::PearsonRnd.build();
        let floor = reconstruction_floor(&c, repr.as_ref(), 2).unwrap();
        let predicted = evaluate_knn_variant(&c, Distance::Cosine, 15, 10, 2).unwrap();
        assert!(floor.mean <= predicted.mean + 0.01);
    }

    #[test]
    fn histogram_floor_improves_with_resolution() {
        let c = corpus();
        let coarse = histogram_floor(&c, 5, 3).unwrap();
        let fine = histogram_floor(&c, 80, 3).unwrap();
        assert!(fine.mean < coarse.mean);
    }

    #[test]
    fn variant_evaluation_is_deterministic() {
        let c = corpus();
        let a = evaluate_knn_variant(&c, Distance::Manhattan, 5, 5, 9).unwrap();
        let b = evaluate_knn_variant(&c, Distance::Manhattan, 5, 5, 9).unwrap();
        assert_eq!(a, b);
    }
}
