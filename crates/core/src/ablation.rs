//! Accuracy-side ablations of the paper's inline design choices.
//!
//! Section III-B3 justifies two choices without showing data: cosine
//! similarity ("as opposed to the Euclidean distance or other distance
//! metrics which did not perform as well") and k = 15. This module makes
//! both claims reproducible experiments, plus two ablations of our own
//! knobs: histogram bin count and the reconstruction floor (how well each
//! representation does when handed the *true* encoding — the irreducible
//! error of the representation itself, with no model in the loop).

use std::borrow::Cow;

use rand::SeedableRng;

use pv_ml::{Distance, KnnRegressor, Regressor};
use pv_stats::ks::ks2_statistic;
use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use pv_sysmodel::Corpus;

use crate::eval::{BenchScore, EvalSummary, RECONSTRUCTION_SAMPLES};
use crate::pipeline::{EncodedCorpus, EncodingSpec, FoldRunner, FoldTruth, FoldView, SeedMode};
use crate::repr::{DistributionRepr, HistogramRepr, ReprKind, REL_TIME_RANGE};

/// Leave-one-out kNN evaluation with an explicit distance metric and `k`,
/// PearsonRnd representation, `s`-run profiles. This is the engine behind
/// the distance and k ablations.
///
/// Runs on the shared [`pipeline`](crate::pipeline) layer with
/// [`SeedMode::Shared`], which preserves this module's historical seed
/// chain (decode streams derive directly from `seed`), so scores are
/// bit-identical to the original serial fold loop — now in parallel.
///
/// # Errors
/// Propagates training/encoding failures.
pub fn evaluate_knn_variant(
    corpus: &Corpus,
    distance: Distance,
    k: usize,
    s: usize,
    seed: u64,
) -> Result<EvalSummary, StatsError> {
    let spec = EncodingSpec::new()
        .profiles(s, 1)
        .target(ReprKind::PearsonRnd);
    let enc = EncodedCorpus::build(corpus, &spec)?;
    evaluate_knn_variant_encoded(&enc, distance, k, s, seed)
}

/// [`evaluate_knn_variant`] on a prebuilt cache (the k/distance grids
/// reuse one cache per `s`).
///
/// # Errors
/// Fails when the cache is missing `s`-run profiles or PearsonRnd
/// targets, plus anything [`evaluate_knn_variant`] can fail with.
pub fn evaluate_knn_variant_encoded(
    enc: &EncodedCorpus,
    distance: Distance,
    k: usize,
    s: usize,
    seed: u64,
) -> Result<EvalSummary, StatsError> {
    let repr = ReprKind::PearsonRnd.build();
    let corpus = enc.corpus();
    let runner = FoldRunner {
        n_folds: enc.len(),
        seed,
        seed_mode: SeedMode::Shared,
        standardize: true,
        n_samples: RECONSTRUCTION_SAMPLES,
        repr: repr.as_ref(),
    };
    runner.run(
        |_fold_seed| Box::new(KnnRegressor::new(k).with_distance(distance)) as Box<dyn Regressor>,
        |held, include| {
            let query = enc.profile(s, held, 0)?.to_vec();
            let x_dim = query.len();
            let y_dim = enc.target(ReprKind::PearsonRnd, held)?.len();
            Ok(FoldView::new(
                include.len(),
                x_dim,
                y_dim,
                query,
                move |sink| {
                    for (rank, &i) in include.iter().enumerate() {
                        // The historical loop used `Dataset::ungrouped`, so
                        // groups are include ranks, not benchmark indices.
                        sink(
                            enc.profile(s, i, 0)?,
                            enc.target(ReprKind::PearsonRnd, i)?,
                            rank,
                        )?;
                    }
                    Ok(())
                },
            ))
        },
        |held| {
            Ok(FoldTruth {
                id: corpus.benchmarks[held].id,
                rel: Cow::Borrowed(enc.rel_times_sorted(held)),
                sorted: true,
            })
        },
    )
}

/// The reconstruction floor of a representation: encode each benchmark's
/// *measured* distribution and decode it straight back (oracle
/// prediction). The resulting KS is the error attributable to the
/// representation alone.
///
/// # Errors
/// Propagates encoding/decoding failures.
pub fn reconstruction_floor(
    corpus: &Corpus,
    repr: &dyn DistributionRepr,
    seed: u64,
) -> Result<EvalSummary, StatsError> {
    let scores = corpus
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let rel = b.runs.rel_times();
            let f = repr.encode(&rel)?;
            let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(seed, i as u64));
            let back = repr.decode(&f, &mut rng, RECONSTRUCTION_SAMPLES)?;
            let ks = ks2_statistic(&back, &rel)?;
            Ok(BenchScore { id: b.id, ks })
        })
        .collect::<Result<Vec<_>, StatsError>>()?;
    EvalSummary::from_scores(scores)
}

/// Reconstruction floor of a histogram with an explicit bin count.
///
/// # Errors
/// Propagates encoding/decoding failures.
pub fn histogram_floor(corpus: &Corpus, bins: usize, seed: u64) -> Result<EvalSummary, StatsError> {
    let repr = HistogramRepr {
        n_bins: bins,
        range: REL_TIME_RANGE,
    };
    reconstruction_floor(corpus, &repr, seed)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use pv_ml::{Dataset, DenseMatrix, StandardScaler};
    use pv_sysmodel::SystemModel;

    fn corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 100, 0xC0FFEE)
    }

    /// The pre-pipeline implementation, verbatim: a serial fold loop over
    /// cloned rows. Kept as the ground truth the parallel runner must
    /// reproduce bit for bit.
    fn serial_reference(
        corpus: &Corpus,
        distance: Distance,
        k: usize,
        s: usize,
        seed: u64,
    ) -> EvalSummary {
        let repr = ReprKind::PearsonRnd.build();
        let n = corpus.len();
        let mut features: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut targets: Vec<Vec<f64>> = Vec::with_capacity(n);
        for b in &corpus.benchmarks {
            features.push(Profile::from_runs(&b.runs, s).unwrap().features);
            targets.push(repr.encode(&b.runs.rel_times()).unwrap());
        }
        let scores = (0..n)
            .map(|held| {
                let train_idx: Vec<usize> = (0..n).filter(|&i| i != held).collect();
                let x_rows: Vec<Vec<f64>> =
                    train_idx.iter().map(|&i| features[i].clone()).collect();
                let y_rows: Vec<Vec<f64>> = train_idx.iter().map(|&i| targets[i].clone()).collect();
                let x = DenseMatrix::from_rows(&x_rows).unwrap();
                let y = DenseMatrix::from_rows(&y_rows).unwrap();
                let mut scaler = StandardScaler::new();
                let x = scaler.fit_transform(&x).unwrap();
                let mut model = KnnRegressor::new(k).with_distance(distance);
                model.fit(&Dataset::ungrouped(x, y).unwrap()).unwrap();
                let mut q = features[held].clone();
                scaler.transform_row(&mut q).unwrap();
                let predicted_features = model.predict(&q).unwrap();
                let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(seed, held as u64));
                let predicted = repr
                    .decode(&predicted_features, &mut rng, RECONSTRUCTION_SAMPLES)
                    .unwrap();
                let ks =
                    ks2_statistic(&predicted, &corpus.benchmarks[held].runs.rel_times()).unwrap();
                BenchScore {
                    id: corpus.benchmarks[held].id,
                    ks,
                }
            })
            .collect::<Vec<_>>();
        EvalSummary::from_scores(scores).unwrap()
    }

    #[test]
    fn parallel_runner_matches_serial_reference() {
        let c = Corpus::collect(&SystemModel::intel(), 40, 7);
        for (distance, k, s, seed) in [
            (Distance::Cosine, 15, 10, 1),
            (Distance::Manhattan, 5, 5, 9),
        ] {
            let parallel = evaluate_knn_variant(&c, distance, k, s, seed).unwrap();
            let serial = serial_reference(&c, distance, k, s, seed);
            assert_eq!(parallel, serial, "{distance:?} k={k} s={s}");
        }
    }

    #[test]
    fn knn_variant_produces_scores_for_all_benchmarks() {
        let c = corpus();
        let s = evaluate_knn_variant(&c, Distance::Cosine, 15, 10, 1).unwrap();
        assert_eq!(s.scores.len(), 60);
        assert!(s.mean > 0.0 && s.mean < 1.0);
    }

    #[test]
    fn extreme_k_is_worse_than_moderate_k() {
        // k = n−1 predicts the population average for everyone; that must
        // lose to a moderate neighbourhood.
        let c = corpus();
        let k15 = evaluate_knn_variant(&c, Distance::Cosine, 15, 10, 1).unwrap();
        let kall = evaluate_knn_variant(&c, Distance::Cosine, 59, 10, 1).unwrap();
        assert!(
            k15.mean < kall.mean,
            "k=15 {} vs k=59 {}",
            k15.mean,
            kall.mean
        );
    }

    #[test]
    fn reconstruction_floor_is_below_predicted_error() {
        // Oracle encodings must score at least as well as predictions.
        let c = corpus();
        let repr = ReprKind::PearsonRnd.build();
        let floor = reconstruction_floor(&c, repr.as_ref(), 2).unwrap();
        let predicted = evaluate_knn_variant(&c, Distance::Cosine, 15, 10, 2).unwrap();
        assert!(floor.mean <= predicted.mean + 0.01);
    }

    #[test]
    fn histogram_floor_improves_with_resolution() {
        let c = corpus();
        let coarse = histogram_floor(&c, 5, 3).unwrap();
        let fine = histogram_floor(&c, 80, 3).unwrap();
        assert!(fine.mean < coarse.mean);
    }

    #[test]
    fn variant_evaluation_is_deterministic() {
        let c = corpus();
        let a = evaluate_knn_variant(&c, Distance::Manhattan, 5, 5, 9).unwrap();
        let b = evaluate_knn_variant(&c, Distance::Manhattan, 5, 5, 9).unwrap();
        assert_eq!(a, b);
    }
}
