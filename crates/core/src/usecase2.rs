//! Use case #2: predicting a performance distribution on a *new* system
//! from a measured distribution on a different system (Section III-A2).
//!
//! A system-to-system model is trained on benchmarks measured on both
//! systems: the features are the application's profile on the source
//! system concatenated with the chosen representation of its *measured*
//! source-system distribution, and the target is the representation of
//! its distribution on the destination system. A user who cannot access
//! the destination machine measures on the machine they own and predicts
//! what they would see on the new one.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pv_ml::{Dataset, DenseMatrix, StandardScaler};
use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use pv_sysmodel::{BenchmarkData, Corpus};

use crate::model::{FittedModel, ModelKind};
use crate::pipeline::{EncodedCorpus, EncodingSpec};
use crate::profile::Profile;
use crate::repr::{DistributionRepr, ReprKind};

/// Configuration of a cross-system predictor.
///
/// All fields are discrete, so the config is `Eq + Hash` and can key
/// sweep-cell sets and caches directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrossSystemConfig {
    /// Distribution representation (both the input distribution on the
    /// source system and the predicted one on the destination).
    pub repr: ReprKind,
    /// Regression model.
    pub model: ModelKind,
    /// Number of source-system runs summarized into the profile features.
    pub profile_runs: usize,
    /// Root seed for model randomness and reconstruction sampling.
    pub seed: u64,
}

impl Default for CrossSystemConfig {
    fn default() -> Self {
        CrossSystemConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            profile_runs: 100,
            seed: 0xC0FFEE,
        }
    }
}

/// A trained system-to-system distribution predictor.
pub struct CrossSystemPredictor {
    repr: Box<dyn DistributionRepr>,
    model: FittedModel,
    scaler: Option<StandardScaler>,
    cfg: CrossSystemConfig,
}

/// The serializable state of a [`CrossSystemPredictor`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossSystemArtifact {
    /// Training configuration.
    pub config: CrossSystemConfig,
    /// Fitted model state.
    pub model: FittedModel,
    /// Fitted standardization moments, when the model standardizes.
    pub scaler: Option<StandardScaler>,
}

impl CrossSystemPredictor {
    /// Trains on benchmarks present in both corpora whose roster indices
    /// are in `include`. The corpora must be over the same roster
    /// (`Corpus::collect` guarantees this) but different systems.
    ///
    /// # Errors
    /// Fails on empty `include`, mismatched corpora, or fit failure.
    pub fn train(
        src: &Corpus,
        dst: &Corpus,
        include: &[usize],
        cfg: CrossSystemConfig,
    ) -> Result<Self, StatsError> {
        if include.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "CrossSystemPredictor::train",
                needed: 1,
                got: 0,
            });
        }
        let s_eff = cfg.profile_runs.min(src.n_runs).max(1);
        let src_enc = EncodedCorpus::build(src, &EncodingSpec::new().joined(s_eff, cfg.repr))?;
        let dst_enc = EncodedCorpus::build(dst, &EncodingSpec::new().target(cfg.repr))?;
        Self::train_encoded(&src_enc, &dst_enc, include, cfg)
    }

    /// [`CrossSystemPredictor::train`] on prebuilt caches — produces a
    /// bit-identical model without recomputing profiles or encodings. The
    /// source cache must cover joined rows for the effective profile-run
    /// count (`profile_runs` clamped to the corpus) under `cfg.repr`, the
    /// destination cache target encodings under `cfg.repr`.
    ///
    /// # Errors
    /// Fails on empty `include`, mismatched corpora, missing cache
    /// entries, or fit failure.
    pub fn train_encoded(
        src: &EncodedCorpus,
        dst: &EncodedCorpus,
        include: &[usize],
        cfg: CrossSystemConfig,
    ) -> Result<Self, StatsError> {
        if include.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "CrossSystemPredictor::train",
                needed: 1,
                got: 0,
            });
        }
        let src_corpus = src.corpus();
        let dst_corpus = dst.corpus();
        if src_corpus.len() != dst_corpus.len() {
            return Err(StatsError::invalid(
                "CrossSystemPredictor::train",
                "source and destination corpora cover different rosters",
            ));
        }
        if src_corpus.system == dst_corpus.system {
            return Err(StatsError::invalid(
                "CrossSystemPredictor::train",
                "source and destination are the same system",
            ));
        }
        let s_eff = cfg.profile_runs.min(src_corpus.n_runs).max(1);
        let repr = cfg.repr.build();
        let mut x_rows: Vec<&[f64]> = Vec::with_capacity(include.len());
        let mut y_rows: Vec<&[f64]> = Vec::with_capacity(include.len());
        let mut groups = Vec::with_capacity(include.len());
        for &bi in include {
            let s = src_corpus
                .benchmarks
                .get(bi)
                .ok_or_else(|| StatsError::invalid("CrossSystemPredictor::train", "bad index"))?;
            let d = &dst_corpus.benchmarks[bi];
            if s.id != d.id {
                return Err(StatsError::invalid(
                    "CrossSystemPredictor::train",
                    "corpora rosters are misaligned",
                ));
            }
            x_rows.push(src.joined(s_eff, cfg.repr, bi)?);
            y_rows.push(dst.target(cfg.repr, bi)?);
            groups.push(bi);
        }
        let x = DenseMatrix::from_row_refs(&x_rows)?;
        let y = DenseMatrix::from_row_refs(&y_rows)?;
        // kNN runs on raw per-second features (see
        // `ModelKind::wants_standardization`).
        let (scaler, x) = if cfg.model.wants_standardization() {
            let mut sc = StandardScaler::new();
            let x = sc.fit_transform(&x)?;
            (Some(sc), x)
        } else {
            (None, x)
        };
        let data = Dataset::new(x, y, groups)?;
        let mut model = cfg.model.build_fitted(cfg.seed);
        model.regressor_mut().fit(&data)?;
        Ok(CrossSystemPredictor {
            repr,
            model,
            scaler,
            cfg,
        })
    }

    /// The configuration this predictor was trained with.
    pub fn config(&self) -> &CrossSystemConfig {
        &self.cfg
    }

    /// Extracts the predictor's serializable state (for the model
    /// registry).
    pub fn to_artifact(&self) -> CrossSystemArtifact {
        CrossSystemArtifact {
            config: self.cfg,
            model: self.model.clone(),
            scaler: self.scaler.clone(),
        }
    }

    /// Reconstructs a predictor from its serialized state. The result
    /// predicts bit-identically to the predictor the artifact was taken
    /// from.
    ///
    /// # Errors
    /// Fails when the fitted model's kind disagrees with the config.
    pub fn from_artifact(artifact: CrossSystemArtifact) -> Result<Self, StatsError> {
        if artifact.model.kind() != artifact.config.model {
            return Err(StatsError::invalid(
                "CrossSystemPredictor::from_artifact",
                format!(
                    "artifact model is {}, config says {}",
                    artifact.model.kind().name(),
                    artifact.config.model.name()
                ),
            ));
        }
        Ok(CrossSystemPredictor {
            repr: artifact.config.repr.build(),
            model: artifact.model,
            scaler: artifact.scaler,
            cfg: artifact.config,
        })
    }

    /// Assembles a feature row: source profile ⊕ source distribution
    /// representation.
    fn feature_row(
        repr: &dyn DistributionRepr,
        bench: &BenchmarkData,
        profile_runs: usize,
    ) -> Result<Vec<f64>, StatsError> {
        let s = profile_runs.min(bench.runs.len()).max(1);
        let p = Profile::from_runs(&bench.runs, s)?;
        let mut row = p.features;
        row.extend(repr.encode(&bench.runs.rel_times())?);
        Ok(row)
    }

    /// Predicts the destination-system representation vector for a
    /// benchmark measured on the source system.
    ///
    /// # Errors
    /// Propagates profile/encoding/prediction failures.
    pub fn predict_features(&self, src_bench: &BenchmarkData) -> Result<Vec<f64>, StatsError> {
        let mut row = Self::feature_row(self.repr.as_ref(), src_bench, self.cfg.profile_runs)?;
        if let Some(sc) = &self.scaler {
            sc.transform_row(&mut row)?;
        }
        self.model.regressor().predict(&row)
    }

    /// Predicts the destination representation vector from a prebuilt
    /// source-system [`Profile`] plus the measured source relative times
    /// — the serving path. The profile must cover the same metric set
    /// the model was trained on (the scaler's dimension check catches a
    /// mismatch).
    ///
    /// # Errors
    /// Propagates encoding/standardization/prediction failures.
    pub fn predict_features_profile(
        &self,
        profile: &Profile,
        src_rel_times: &[f64],
    ) -> Result<Vec<f64>, StatsError> {
        let mut row = profile.features.clone();
        row.extend(self.repr.encode(src_rel_times)?);
        if let Some(sc) = &self.scaler {
            sc.transform_row(&mut row)?;
        }
        self.model.regressor().predict(&row)
    }

    /// Predicts and reconstructs the destination distribution as
    /// `n_samples` relative times.
    ///
    /// # Errors
    /// Propagates prediction/decoding failures.
    pub fn predict_distribution(
        &self,
        src_bench: &BenchmarkData,
        n_samples: usize,
        sample_seed: u64,
    ) -> Result<Vec<f64>, StatsError> {
        let f = self.predict_features(src_bench)?;
        let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(self.cfg.seed, sample_seed));
        self.repr.decode(&f, &mut rng, n_samples)
    }

    /// [`Self::predict_distribution`] from a prebuilt profile plus
    /// measured source relative times.
    ///
    /// # Errors
    /// Propagates prediction/decoding failures.
    pub fn predict_distribution_profile(
        &self,
        profile: &Profile,
        src_rel_times: &[f64],
        n_samples: usize,
        sample_seed: u64,
    ) -> Result<Vec<f64>, StatsError> {
        let f = self.predict_features_profile(profile, src_rel_times)?;
        self.decode_features(&f, n_samples, sample_seed)
    }

    /// Reconstructs `n_samples` relative times from an
    /// already-predicted representation vector — lets a caller that
    /// needs both the vector and the samples predict once.
    ///
    /// # Errors
    /// Propagates decoding failures.
    pub fn decode_features(
        &self,
        features: &[f64],
        n_samples: usize,
        sample_seed: u64,
    ) -> Result<Vec<f64>, StatsError> {
        let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(self.cfg.seed, sample_seed));
        self.repr.decode(features, &mut rng, n_samples)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_sysmodel::SystemModel;

    fn corpora() -> (Corpus, Corpus) {
        (
            Corpus::collect(&SystemModel::amd(), 60, 5),
            Corpus::collect(&SystemModel::intel(), 60, 5),
        )
    }

    fn cfg() -> CrossSystemConfig {
        CrossSystemConfig {
            profile_runs: 30,
            ..CrossSystemConfig::default()
        }
    }

    #[test]
    fn trains_and_predicts() {
        let (amd, intel) = corpora();
        let all: Vec<usize> = (0..amd.len()).collect();
        let p = CrossSystemPredictor::train(&amd, &intel, &all, cfg()).unwrap();
        let pred = p.predict_distribution(&amd.benchmarks[0], 500, 1).unwrap();
        assert_eq!(pred.len(), 500);
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_same_system_pairs() {
        let (amd, _) = corpora();
        let all: Vec<usize> = (0..amd.len()).collect();
        assert!(CrossSystemPredictor::train(&amd, &amd, &all, cfg()).is_err());
    }

    #[test]
    fn rejects_empty_include() {
        let (amd, intel) = corpora();
        assert!(CrossSystemPredictor::train(&amd, &intel, &[], cfg()).is_err());
    }

    #[test]
    fn train_encoded_matches_train() {
        let (amd, intel) = corpora();
        let include: Vec<usize> = (1..amd.len()).collect();
        let c = cfg();
        let s_eff = c.profile_runs.min(amd.n_runs).max(1);
        let src_enc =
            EncodedCorpus::build(&amd, &EncodingSpec::new().joined(s_eff, c.repr)).unwrap();
        let dst_enc = EncodedCorpus::build(&intel, &EncodingSpec::new().target(c.repr)).unwrap();
        let a = CrossSystemPredictor::train(&amd, &intel, &include, c).unwrap();
        let b = CrossSystemPredictor::train_encoded(&src_enc, &dst_enc, &include, c).unwrap();
        let pa = a.predict_distribution(&amd.benchmarks[0], 400, 5).unwrap();
        let pb = b.predict_distribution(&amd.benchmarks[0], 400, 5).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn held_out_prediction_is_finite_and_deterministic() {
        let (amd, intel) = corpora();
        let include: Vec<usize> = (1..amd.len()).collect();
        let p = CrossSystemPredictor::train(&amd, &intel, &include, cfg()).unwrap();
        let a = p.predict_distribution(&amd.benchmarks[0], 300, 7).unwrap();
        let b = p.predict_distribution(&amd.benchmarks[0], 300, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn both_directions_train() {
        let (amd, intel) = corpora();
        let all: Vec<usize> = (0..amd.len()).collect();
        assert!(CrossSystemPredictor::train(&amd, &intel, &all, cfg()).is_ok());
        assert!(CrossSystemPredictor::train(&intel, &amd, &all, cfg()).is_ok());
    }

    #[test]
    fn all_repr_model_combinations_train() {
        let (amd, intel) = corpora();
        let all: Vec<usize> = (0..amd.len()).collect();
        for repr in ReprKind::ALL {
            for model in ModelKind::ALL {
                let c = CrossSystemConfig {
                    repr,
                    model,
                    profile_runs: 20,
                    seed: 2,
                };
                let p = CrossSystemPredictor::train(&amd, &intel, &all, c).unwrap();
                let pred = p.predict_distribution(&amd.benchmarks[2], 100, 3).unwrap();
                assert_eq!(pred.len(), 100, "{} × {}", repr.name(), model.name());
            }
        }
    }
}
