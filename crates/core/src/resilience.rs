//! Fault tolerance for long unattended sweeps.
//!
//! A config-grid sweep is exactly the kind of computation the
//! HPC-variability literature runs for days: hundreds of cells, each a
//! full LOGO evaluation, scheduled across a worker pool. One panicking
//! cell must not sink the campaign. This module supplies the pieces the
//! [`sweep`](crate::sweep) layer threads through its execution path:
//!
//! * [`PvError`] — the typed error taxonomy. Every failure a cell can
//!   produce is classified (solver non-convergence, degenerate input,
//!   numeric domain violation, cache I/O, panic-in-cell) so retry and
//!   fallback policy can dispatch on *kind* instead of string-matching.
//! * [`FaultPlan`] — a deterministic fault-injection harness. Faults are
//!   keyed by cell index and attempt number and the plan is seeded, so a
//!   failing campaign replays exactly — the property the
//!   `tests/fault_injection.rs` tier is built on.
//! * [`ServeFaultPlan`] — the same discipline for the query plane:
//!   faults are keyed by request arrival sequence (slow predictions,
//!   forced sheds) or reload attempt (registry I/O failures), so the
//!   `tests/serve_chaos.rs` tier can pin *exactly-k* shed and timed-out
//!   requests regardless of thread count.
//! * [`Quarantine`] — a persisted list of known-bad cells kept next to
//!   the cell cache; re-runs skip-and-report them instead of burning
//!   retries on a cell that failed deterministically last time.
//! * [`CacheLock`] — an advisory lock (atomic marker file) held for the
//!   duration of a sweep's cache writes, so two concurrent `repro sweep`
//!   invocations sharing a directory cannot interleave temp-file renames.
//! * [`retry_seed`] / [`validate_summary`] — deterministic re-seeding
//!   for retry attempts and the numeric post-condition every computed
//!   summary must satisfy before it is trusted.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;

use crate::eval::EvalSummary;

/// Retries a failing cell gets by default (attempts = 1 + retries).
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Typed error taxonomy for the evaluation and sweep paths.
///
/// Where [`StatsError`] describes *what a statistical routine objected
/// to*, `PvError` describes *what the sweep should do about it*: solver
/// failures are eligible for a degraded fallback, degenerate input and
/// numeric-domain failures are data problems worth quarantining, cache
/// I/O failures are environmental, and a panic is a bug that must be
/// contained but reported loudly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PvError {
    /// An iterative solver failed to converge.
    Solver {
        /// Operation that failed to converge.
        what: String,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input was structurally degenerate (constant sample, empty
    /// range, NaN observations).
    DegenerateInput {
        /// Operation that was attempted.
        what: String,
        /// Human-readable description of the degeneracy.
        detail: String,
    },
    /// A computed value left its numeric domain (NaN/∞ where a finite
    /// number is required).
    NumericDomain {
        /// Where the violation was detected.
        what: String,
    },
    /// A cell-cache or lock filesystem operation failed.
    CacheIo {
        /// Operation that was attempted.
        what: String,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A cell panicked and was caught at the isolation boundary.
    CellPanic {
        /// The panic payload, stringified.
        message: String,
    },
    /// A parameter or configuration was invalid.
    Invalid {
        /// Operation that was attempted.
        what: String,
        /// Human-readable description of the violated constraint.
        detail: String,
    },
}

impl PvError {
    /// Short kind tag, for failure tables and CSV columns.
    pub fn kind(&self) -> &'static str {
        match self {
            PvError::Solver { .. } => "solver",
            PvError::DegenerateInput { .. } => "degenerate-input",
            PvError::NumericDomain { .. } => "numeric-domain",
            PvError::CacheIo { .. } => "cache-io",
            PvError::CellPanic { .. } => "panic",
            PvError::Invalid { .. } => "invalid",
        }
    }

    /// Whether a degraded-representation fallback is worth attempting:
    /// only solver non-convergence is — the histogram representation has
    /// no solver to fail, whereas degenerate input or a panic would hit
    /// the fallback exactly the same way.
    pub fn fallback_eligible(&self) -> bool {
        matches!(self, PvError::Solver { .. })
    }
}

impl From<StatsError> for PvError {
    fn from(e: StatsError) -> Self {
        match e {
            StatsError::NoConvergence { what, iterations } => PvError::Solver {
                what: what.to_string(),
                iterations,
            },
            StatsError::SingularMatrix { what } => PvError::Solver {
                what: what.to_string(),
                iterations: 0,
            },
            StatsError::NonFinite { what } => PvError::NumericDomain {
                what: what.to_string(),
            },
            StatsError::EmptyInput { what, needed, got } => PvError::DegenerateInput {
                what: what.to_string(),
                detail: format!("needs at least {needed} observation(s), got {got}"),
            },
            StatsError::DegenerateInput { what, detail } => PvError::DegenerateInput {
                what: what.to_string(),
                detail,
            },
            StatsError::InvalidParameter { what, detail } => PvError::Invalid {
                what: what.to_string(),
                detail,
            },
        }
    }
}

impl fmt::Display for PvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvError::Solver { what, iterations } => {
                write!(f, "{what}: no convergence after {iterations} iterations")
            }
            PvError::DegenerateInput { what, detail } => {
                write!(f, "{what}: degenerate input: {detail}")
            }
            PvError::NumericDomain { what } => {
                write!(f, "{what}: non-finite value in numeric domain")
            }
            PvError::CacheIo { what, detail } => write!(f, "{what}: cache I/O: {detail}"),
            PvError::CellPanic { message } => write!(f, "cell panicked: {message}"),
            PvError::Invalid { what, detail } => write!(f, "{what}: invalid: {detail}"),
        }
    }
}

impl std::error::Error for PvError {}

/// Installs (once, process-wide) a panic hook that suppresses the
/// stderr noise of panics whose payload contains `"injected fault"` —
/// the marker every [`FaultPlan`]-injected panic carries — and defers
/// to the previously installed hook for everything else. Injected
/// panics are caught at the cell isolation boundary anyway; only their
/// hook output is unwanted. Real panics keep their full report.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if message.is_some_and(|m| m.contains("injected fault")) {
                return;
            }
            previous(info);
        }));
    });
}

/// Turns a caught panic payload into a readable message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic sub-seed for retry `attempt` of a cell rooted at
/// `root`. Attempt 0 must use `root` itself (so an un-faulted cell is
/// bit-identical with or without the retry machinery); attempts ≥ 1 get
/// decorrelated fresh streams.
pub fn retry_seed(root: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        root
    } else {
        derive_stream(root, attempt as u64)
    }
}

/// The numeric post-condition a computed [`EvalSummary`] must satisfy
/// before the sweep trusts (and caches) it.
///
/// # Errors
/// Returns [`PvError::NumericDomain`] when the mean, any quantile of the
/// spread, or any per-benchmark KS score is non-finite.
pub fn validate_summary(summary: &EvalSummary) -> Result<(), PvError> {
    let spread = &summary.spread;
    let aggregates = [
        summary.mean,
        spread.min,
        spread.q1,
        spread.median,
        spread.q3,
        spread.max,
        spread.mean,
    ];
    if aggregates.iter().any(|v| !v.is_finite()) {
        return Err(PvError::NumericDomain {
            what: "EvalSummary aggregates".to_string(),
        });
    }
    if summary.scores.iter().any(|s| !s.ks.is_finite()) {
        return Err(PvError::NumericDomain {
            what: "EvalSummary per-benchmark scores".to_string(),
        });
    }
    Ok(())
}

/// What kind of fault to inject at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Panic inside the cell evaluation (exercises `catch_unwind`).
    Panic,
    /// Return a solver non-convergence error (exercises the degraded
    /// histogram fallback).
    NonConvergence,
    /// Poison the computed summary with a NaN (exercises
    /// [`validate_summary`]).
    NanRun,
    /// Corrupt the cell's cache file after it is stored (exercises the
    /// verified-load recovery path on the next run).
    CacheCorruption,
}

impl FaultKind {
    /// Kinds that fire inside the evaluation attempt (as opposed to the
    /// store path).
    pub const EVAL_KINDS: [FaultKind; 3] = [
        FaultKind::Panic,
        FaultKind::NonConvergence,
        FaultKind::NanRun,
    ];

    /// Short name used by the CLI `--inject` spec.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::NonConvergence => "nonconv",
            FaultKind::NanRun => "nan",
            FaultKind::CacheCorruption => "corrupt",
        }
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "nonconv" => Ok(FaultKind::NonConvergence),
            "nan" => Ok(FaultKind::NanRun),
            "corrupt" => Ok(FaultKind::CacheCorruption),
            other => Err(format!(
                "unknown fault kind '{other}' (expected panic|nonconv|nan|corrupt)"
            )),
        }
    }
}

/// One injected fault: `kind` fires at cell `cell` while the attempt
/// number is below `fail_attempts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Grid index of the targeted cell.
    pub cell: usize,
    /// What to inject.
    pub kind: FaultKind,
    /// The fault fires while `attempt < fail_attempts`; `u32::MAX` means
    /// it always fires (a *persistent* fault), small values model
    /// *transient* faults that retries recover from.
    pub fail_attempts: u32,
}

/// A deterministic fault-injection plan.
///
/// Faults are keyed by `(cell index, attempt)`, both of which are
/// deterministic for a fixed grid regardless of thread count or
/// completion order — so a plan replays a failure campaign exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead on the happy path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Adds a persistent fault at `cell` (fires on every attempt).
    pub fn inject(mut self, cell: usize, kind: FaultKind) -> Self {
        self.faults.push(Fault {
            cell,
            kind,
            fail_attempts: u32::MAX,
        });
        self
    }

    /// Adds a transient fault at `cell`: fires while
    /// `attempt < fail_attempts`, then stops — a retry recovers it.
    pub fn inject_transient(mut self, cell: usize, kind: FaultKind, fail_attempts: u32) -> Self {
        self.faults.push(Fault {
            cell,
            kind,
            fail_attempts,
        });
        self
    }

    /// A seeded random plan: `k` distinct cells out of `n_cells`, each
    /// with a random evaluation fault kind and random persistence (1–3
    /// failing attempts or persistent). Same `(seed, n_cells, k)` →
    /// same plan, which is what the property tests rely on.
    pub fn random(seed: u64, n_cells: usize, k: usize) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(seed, 0x46_41_55_4C_54));
        let mut cells: Vec<usize> = Vec::new();
        let k = k.min(n_cells);
        while cells.len() < k {
            let c = rng.gen_range(0..n_cells);
            if !cells.contains(&c) {
                cells.push(c);
            }
        }
        let mut plan = FaultPlan::none();
        for cell in cells {
            let kind = FaultKind::EVAL_KINDS[rng.gen_range(0..FaultKind::EVAL_KINDS.len())];
            let fail_attempts = if rng.gen_range(0..2) == 0 {
                u32::MAX
            } else {
                rng.gen_range(1..4)
            };
            plan.faults.push(Fault {
                cell,
                kind,
                fail_attempts,
            });
        }
        plan
    }

    /// The evaluation fault (if any) that fires at `(cell, attempt)`.
    /// Cache-corruption faults never fire here — see
    /// [`FaultPlan::corrupts_store`].
    pub fn eval_fault(&self, cell: usize, attempt: u32) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| {
                f.cell == cell && f.kind != FaultKind::CacheCorruption && attempt < f.fail_attempts
            })
            .map(|f| f.kind)
    }

    /// Whether the plan corrupts `cell`'s cache file after it is stored.
    pub fn corrupts_store(&self, cell: usize) -> bool {
        self.faults
            .iter()
            .any(|f| f.cell == cell && f.kind == FaultKind::CacheCorruption)
    }

    /// Cells targeted by evaluation faults that never stop firing — the
    /// set a resilient sweep must report as failed or degraded.
    pub fn persistent_eval_cells(&self) -> Vec<usize> {
        let mut cells: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.kind != FaultKind::CacheCorruption && f.fail_attempts == u32::MAX)
            .map(|f| f.cell)
            .collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

/// What kind of fault to inject on the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServeFaultKind {
    /// The prediction for the targeted request takes `delay_ms` extra
    /// milliseconds. The delay is *virtual*: it is added arithmetically
    /// to the request's elapsed time for the deadline check, while the
    /// real sleep is capped small — so "slow model blows the deadline"
    /// replays bit-identically at any thread count instead of depending
    /// on scheduler timing.
    SlowPred {
        /// Virtual extra latency in milliseconds.
        delay_ms: u64,
    },
    /// The targeted request is shed at admission as if the queue were
    /// full — the deterministic stand-in for real overload, so
    /// exactly-k shed tests do not depend on reader/batcher races.
    Shed,
    /// The targeted reload attempt fails with a registry I/O error
    /// before any artifact is read (exercises the keep-old-snapshot,
    /// mark-degraded path).
    ReloadIo,
    /// The worker answering the targeted request panics mid-prediction
    /// (exercises the catch-unwind isolation: a typed `panic` error
    /// response, `pv.serve.panic` counted, daemon stays up).
    Panic,
}

/// One injected serving fault: `kind` fires at arrival sequence (or
/// reload attempt) `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeFault {
    /// Global request arrival sequence number (for `SlowPred`/`Shed`) or
    /// reload attempt number (for `ReloadIo`), both counted from 0.
    pub seq: u64,
    /// What to inject.
    pub kind: ServeFaultKind,
}

/// A deterministic fault-injection plan for the serving path.
///
/// Request faults are keyed by the *global arrival sequence* — the order
/// lines are read off connections, which is deterministic for a single
/// pipelined client — and reload faults by the reload attempt counter.
/// Both keys are independent of worker scheduling, so a chaos run
/// replays exactly.
///
/// The CLI spec grammar (`--inject-serve`) is comma-separated:
/// `slow@SEQ:MS` (virtual `MS`-millisecond delay at request `SEQ`),
/// `shed@SEQ` (forced shed at request `SEQ`), `reload-io@N`
/// (registry I/O failure at reload attempt `N`), and `panic@SEQ`
/// (worker panic answering request `SEQ`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeFaultPlan {
    faults: Vec<ServeFault>,
}

impl ServeFaultPlan {
    /// The empty plan: no faults, zero overhead on the happy path.
    pub fn none() -> Self {
        ServeFaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[ServeFault] {
        &self.faults
    }

    /// Adds a virtual `delay_ms`-millisecond slow prediction at request
    /// sequence `seq`.
    pub fn inject_slow(mut self, seq: u64, delay_ms: u64) -> Self {
        self.faults.push(ServeFault {
            seq,
            kind: ServeFaultKind::SlowPred { delay_ms },
        });
        self
    }

    /// Adds a forced admission shed at request sequence `seq`.
    pub fn inject_shed(mut self, seq: u64) -> Self {
        self.faults.push(ServeFault {
            seq,
            kind: ServeFaultKind::Shed,
        });
        self
    }

    /// Adds a registry I/O failure at reload attempt `attempt`.
    pub fn inject_reload_io(mut self, attempt: u64) -> Self {
        self.faults.push(ServeFault {
            seq: attempt,
            kind: ServeFaultKind::ReloadIo,
        });
        self
    }

    /// Adds a worker panic at request sequence `seq`.
    pub fn inject_panic(mut self, seq: u64) -> Self {
        self.faults.push(ServeFault {
            seq,
            kind: ServeFaultKind::Panic,
        });
        self
    }

    /// The virtual delay (ms) injected at request sequence `seq`, if any.
    pub fn slow_at(&self, seq: u64) -> Option<u64> {
        self.faults.iter().find_map(|f| match f.kind {
            ServeFaultKind::SlowPred { delay_ms } if f.seq == seq => Some(delay_ms),
            _ => None,
        })
    }

    /// Whether request sequence `seq` is force-shed at admission.
    pub fn sheds_at(&self, seq: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.seq == seq && f.kind == ServeFaultKind::Shed)
    }

    /// Whether reload attempt `attempt` fails with an injected registry
    /// I/O error.
    pub fn reload_io_at(&self, attempt: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.seq == attempt && f.kind == ServeFaultKind::ReloadIo)
    }

    /// Whether the worker answering request sequence `seq` panics.
    pub fn panics_at(&self, seq: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.seq == seq && f.kind == ServeFaultKind::Panic)
    }
}

impl std::str::FromStr for ServeFaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = ServeFaultPlan::none();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, at) = part
                .split_once('@')
                .ok_or_else(|| format!("bad serve fault '{part}' (expected KIND@SEQ)"))?;
            match kind {
                "slow" => {
                    let (seq, ms) = at
                        .split_once(':')
                        .ok_or_else(|| format!("bad slow fault '{part}' (expected slow@SEQ:MS)"))?;
                    let seq = seq
                        .parse::<u64>()
                        .map_err(|_| format!("bad sequence in '{part}'"))?;
                    let ms = ms
                        .parse::<u64>()
                        .map_err(|_| format!("bad delay in '{part}'"))?;
                    plan = plan.inject_slow(seq, ms);
                }
                "shed" => {
                    let seq = at
                        .parse::<u64>()
                        .map_err(|_| format!("bad sequence in '{part}'"))?;
                    plan = plan.inject_shed(seq);
                }
                "reload-io" => {
                    let attempt = at
                        .parse::<u64>()
                        .map_err(|_| format!("bad attempt in '{part}'"))?;
                    plan = plan.inject_reload_io(attempt);
                }
                "panic" => {
                    let seq = at
                        .parse::<u64>()
                        .map_err(|_| format!("bad sequence in '{part}'"))?;
                    plan = plan.inject_panic(seq);
                }
                other => {
                    return Err(format!(
                        "unknown serve fault kind '{other}' (expected slow|shed|reload-io|panic)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------
// Process liveness and temp-file hygiene

/// Whether `pid` definitely no longer exists. Linux only: a live pid has
/// a `/proc` entry. On other platforms the answer is always `false` —
/// being conservative about another process's death is the safe default
/// for every caller (lock breaking, temp sweeping).
pub fn pid_is_dead(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        !Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

/// A reuse-resistant identity token for `pid`: the process start time
/// (clock ticks since boot, field 22 of `/proc/<pid>/stat`). Two
/// processes that ever share a (pid, token) pair would have to start in
/// the same clock tick after a pid wrap — close enough to impossible for
/// an advisory lock. `None` when the process is gone or the platform has
/// no `/proc`.
pub fn pid_start_token(pid: u32) -> Option<u64> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // The comm field (2) is parenthesized and may itself contain spaces
    // or parens; everything after the *last* ')' is whitespace-split.
    // Start time is field 22 overall = index 19 after state (field 3).
    let after_comm = stat.rsplit_once(')')?.1;
    after_comm.split_whitespace().nth(19)?.parse::<u64>().ok()
}

/// Removes orphaned temp files left behind by crashed writers.
///
/// Every temp-file+rename site in this codebase names its temp
/// `<target>.tmp.<pid>`; a writer that dies between write and rename
/// leaks it. This sweep removes any `*.tmp.<pid>` in `dir` whose pid is
/// provably dead (or whose suffix is not a pid at all), and leaves temps
/// owned by this or any other live process untouched. Returns the number
/// of files removed; a missing or unreadable directory sweeps nothing.
pub fn sweep_stale_temps(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some((_, suffix)) = name.rsplit_once(".tmp.") else {
            continue;
        };
        let stale = match suffix.parse::<u32>() {
            Ok(pid) => pid != std::process::id() && pid_is_dead(pid),
            // A mangled suffix cannot belong to a live writer.
            Err(_) => true,
        };
        if stale && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// One quarantined cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The cell's cache key ([`crate::sweep::cell_key`]).
    pub key: u64,
    /// Human-readable cell label at quarantine time.
    pub label: String,
    /// The error that exhausted the cell's retries.
    pub error: PvError,
    /// Attempts spent before giving up.
    pub attempts: u32,
}

/// On-disk wrapper so the quarantine file is a self-describing object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuarantineFile {
    version: u32,
    entries: Vec<QuarantineEntry>,
}

/// The quarantine version tag; bump on layout changes.
const QUARANTINE_VERSION: u32 = 1;

/// Name of the quarantine file inside a cell-cache directory.
pub const QUARANTINE_FILE: &str = "quarantine.json";

/// A persisted list of known-bad cells, kept next to the cell cache.
///
/// A cell lands here when it exhausts its retries without a usable
/// (possibly degraded) result; subsequent sweeps over the same cache
/// directory skip it and report [`CellOutcome::Quarantined`]
/// (see [`crate::sweep::CellOutcome`]) instead of re-burning retries.
/// Like the cell cache, loading is infallible: a missing or corrupt
/// file is simply an empty quarantine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Quarantine {
    entries: Vec<QuarantineEntry>,
}

impl Quarantine {
    /// An empty quarantine.
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// Loads the quarantine stored in `dir` (empty when missing or
    /// unparsable — a quarantine must never be the thing that fails).
    pub fn load(dir: &Path) -> Self {
        let Ok(text) = fs::read_to_string(dir.join(QUARANTINE_FILE)) else {
            return Quarantine::default();
        };
        match serde_json::from_str::<QuarantineFile>(&text) {
            Ok(f) if f.version == QUARANTINE_VERSION => Quarantine { entries: f.entries },
            _ => Quarantine::default(),
        }
    }

    /// Persists the quarantine into `dir` (temp file + rename, like the
    /// cell cache).
    ///
    /// # Errors
    /// Returns [`PvError::CacheIo`] on filesystem failures.
    pub fn save(&self, dir: &Path) -> Result<(), PvError> {
        fs::create_dir_all(dir).map_err(|e| PvError::CacheIo {
            what: "Quarantine::save".to_string(),
            detail: format!("create {}: {e}", dir.display()),
        })?;
        let file = QuarantineFile {
            version: QUARANTINE_VERSION,
            entries: self.entries.clone(),
        };
        let json = serde_json::to_string(&file).map_err(|e| PvError::CacheIo {
            what: "Quarantine::save".to_string(),
            detail: format!("serialize: {e}"),
        })?;
        let path = dir.join(QUARANTINE_FILE);
        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        fs::write(&tmp, json).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            PvError::CacheIo {
                what: "Quarantine::save".to_string(),
                detail: format!("write {}: {e}", tmp.display()),
            }
        })?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            PvError::CacheIo {
                what: "Quarantine::save".to_string(),
                detail: format!("rename {}: {e}", path.display()),
            }
        })?;
        Ok(())
    }

    /// Removes the quarantine file from `dir` (idempotent).
    pub fn clear(dir: &Path) {
        let _ = fs::remove_file(dir.join(QUARANTINE_FILE));
    }

    /// Number of quarantined cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for cache key `key`, if quarantined.
    pub fn get(&self, key: u64) -> Option<&QuarantineEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Whether cache key `key` is quarantined.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, entry: QuarantineEntry) {
        match self.entries.iter_mut().find(|e| e.key == entry.key) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// All entries, insertion order.
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }
}

/// Name of the advisory lock file inside a cell-cache directory.
pub const LOCK_FILE: &str = "sweep.lock";

/// An advisory lock on a cell-cache directory, held for the duration of
/// a sweep that writes into it.
///
/// Implemented as an atomic marker file (`create_new` is atomic on every
/// platform we target) holding the owner's `pid start-token` pair (see
/// [`pid_start_token`]). A second sweep on the same directory polls
/// until the lock is released or its timeout expires; a lock whose
/// owner is provably gone — pid dead, *or* pid alive but with a
/// different start token, meaning the pid was recycled by an unrelated
/// process — is broken and re-acquired, so one SIGKILL never wedges a
/// cache directory and pid reuse never lets a stranger's pid pin a
/// stale lock forever. Legacy bare-pid lock files (no token) fall back
/// to pid liveness alone, conservatively. Dropping the guard releases
/// the lock.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
}

impl CacheLock {
    /// Acquires the lock for `dir`, waiting up to `timeout`.
    ///
    /// # Errors
    /// Returns [`PvError::CacheIo`] when the directory cannot be created
    /// or the lock is still held when the timeout expires.
    pub fn acquire(dir: &Path, timeout: Duration) -> Result<Self, PvError> {
        fs::create_dir_all(dir).map_err(|e| PvError::CacheIo {
            what: "CacheLock::acquire".to_string(),
            detail: format!("create {}: {e}", dir.display()),
        })?;
        let path = dir.join(LOCK_FILE);
        let wait_started = Instant::now();
        let deadline = wait_started + timeout;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    use std::io::Write;
                    let pid = std::process::id();
                    match pid_start_token(pid) {
                        Some(token) => {
                            let _ = write!(file, "{pid} {token}");
                        }
                        None => {
                            let _ = write!(file, "{pid}");
                        }
                    }
                    pv_obs::observe!(
                        "pv.core.sweep.lock_wait_ns",
                        pv_obs::BucketSpec::latency(),
                        wait_started.elapsed().as_nanos() as f64
                    );
                    return Ok(CacheLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if Self::holder_is_dead(&path) {
                        // Stale lock from a crashed sweep: break it and
                        // race for re-acquisition on the next iteration.
                        pv_obs::counter_inc!("pv.core.sweep.lock_steal");
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        let holder = fs::read_to_string(&path).unwrap_or_default();
                        return Err(PvError::CacheIo {
                            what: "CacheLock::acquire".to_string(),
                            detail: format!(
                                "{} held by pid {} past {timeout:?}",
                                path.display(),
                                holder.trim()
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => {
                    return Err(PvError::CacheIo {
                        what: "CacheLock::acquire".to_string(),
                        detail: format!("create {}: {e}", path.display()),
                    });
                }
            }
        }
    }

    /// Whether the process recorded in the lock file is provably gone.
    /// An unreadable or malformed lock file is treated as *live* —
    /// breaking a lock we cannot attribute would be worse than waiting
    /// it out. A recorded start token that no longer matches the live
    /// pid's means the pid was recycled: the original holder is gone.
    fn holder_is_dead(path: &Path) -> bool {
        let Ok(text) = fs::read_to_string(path) else {
            return false;
        };
        let mut parts = text.split_whitespace();
        let Some(Ok(pid)) = parts.next().map(str::parse::<u64>) else {
            return false;
        };
        let Ok(pid) = u32::try_from(pid) else {
            // A pid no platform can issue was never a live holder.
            return true;
        };
        if pid == std::process::id() {
            return false;
        }
        if pid_is_dead(pid) {
            return true;
        }
        // Alive — but is it the *same* process that took the lock?
        match (
            parts.next().and_then(|t| t.parse::<u64>().ok()),
            pid_start_token(pid),
        ) {
            (Some(recorded), Some(current)) => recorded != current,
            // Legacy bare-pid file or token unavailable: conservative.
            _ => false,
        }
    }

    /// The lock file path (visible for tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::BenchScore;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pv-resilience-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stats_errors_map_onto_the_taxonomy() {
        let cases: [(StatsError, &str); 5] = [
            (
                StatsError::NoConvergence {
                    what: "solve",
                    iterations: 7,
                },
                "solver",
            ),
            (StatsError::SingularMatrix { what: "lu" }, "solver"),
            (StatsError::NonFinite { what: "ks2" }, "numeric-domain"),
            (
                StatsError::degenerate("hist", "all NaN"),
                "degenerate-input",
            ),
            (StatsError::invalid("cfg", "bins = 0"), "invalid"),
        ];
        for (stats, kind) in cases {
            let pv: PvError = stats.into();
            assert_eq!(pv.kind(), kind, "{pv}");
        }
        // Only solver failures are fallback-eligible.
        let solver: PvError = StatsError::NoConvergence {
            what: "solve",
            iterations: 7,
        }
        .into();
        assert!(solver.fallback_eligible());
        assert!(!PvError::CellPanic {
            message: "boom".into()
        }
        .fallback_eligible());
    }

    #[test]
    fn pv_error_round_trips_through_json() {
        let errors = [
            PvError::Solver {
                what: "solve_maxent".into(),
                iterations: 200,
            },
            PvError::CellPanic {
                message: "injected".into(),
            },
            PvError::CacheIo {
                what: "store".into(),
                detail: "disk full".into(),
            },
        ];
        for e in errors {
            let json = serde_json::to_string(&e).unwrap();
            let back: PvError = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn retry_seeds_are_fresh_but_attempt_zero_is_the_root() {
        assert_eq!(retry_seed(42, 0), 42);
        assert_ne!(retry_seed(42, 1), 42);
        assert_ne!(retry_seed(42, 1), retry_seed(42, 2));
        assert_eq!(retry_seed(42, 3), retry_seed(42, 3));
    }

    #[test]
    fn summary_validation_rejects_nan() {
        let roster = pv_sysmodel::roster();
        let good = EvalSummary::from_scores(vec![
            BenchScore {
                id: roster[0],
                ks: 0.2,
            },
            BenchScore {
                id: roster[1],
                ks: 0.4,
            },
        ])
        .unwrap();
        assert!(validate_summary(&good).is_ok());

        let mut poisoned_mean = good.clone();
        poisoned_mean.mean = f64::NAN;
        assert!(validate_summary(&poisoned_mean).is_err());

        let mut poisoned_score = good.clone();
        poisoned_score.scores[1].ks = f64::INFINITY;
        assert!(validate_summary(&poisoned_score).is_err());
    }

    #[test]
    fn fault_plan_fires_by_cell_and_attempt() {
        let plan = FaultPlan::none()
            .inject(3, FaultKind::Panic)
            .inject_transient(5, FaultKind::NanRun, 2);
        assert_eq!(plan.eval_fault(3, 0), Some(FaultKind::Panic));
        assert_eq!(plan.eval_fault(3, 99), Some(FaultKind::Panic));
        assert_eq!(plan.eval_fault(5, 0), Some(FaultKind::NanRun));
        assert_eq!(plan.eval_fault(5, 1), Some(FaultKind::NanRun));
        assert_eq!(plan.eval_fault(5, 2), None);
        assert_eq!(plan.eval_fault(0, 0), None);
        assert_eq!(plan.persistent_eval_cells(), vec![3]);
    }

    #[test]
    fn corruption_faults_never_fire_in_eval() {
        let plan = FaultPlan::none().inject(2, FaultKind::CacheCorruption);
        assert_eq!(plan.eval_fault(2, 0), None);
        assert!(plan.corrupts_store(2));
        assert!(!plan.corrupts_store(1));
        assert!(plan.persistent_eval_cells().is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_and_distinct_cells() {
        let a = FaultPlan::random(9, 20, 6);
        let b = FaultPlan::random(9, 20, 6);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 6);
        let mut cells: Vec<usize> = a.faults().iter().map(|f| f.cell).collect();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), 6, "cells must be distinct");
        assert!(cells.iter().all(|&c| c < 20));
        // k is clamped to the cell count.
        assert_eq!(FaultPlan::random(9, 3, 10).faults().len(), 3);
        // Different seeds give different plans (overwhelmingly likely).
        assert_ne!(FaultPlan::random(1, 20, 6), FaultPlan::random(2, 20, 6));
    }

    #[test]
    fn fault_kind_names_round_trip() {
        for kind in [
            FaultKind::Panic,
            FaultKind::NonConvergence,
            FaultKind::NanRun,
            FaultKind::CacheCorruption,
        ] {
            assert_eq!(kind.name().parse::<FaultKind>().unwrap(), kind);
        }
        assert!("gremlin".parse::<FaultKind>().is_err());
    }

    #[test]
    fn quarantine_round_trips_and_tolerates_corruption() {
        let dir = temp_dir("quarantine");
        assert!(Quarantine::load(&dir).is_empty());

        let mut q = Quarantine::new();
        q.insert(QuarantineEntry {
            key: 0xDEAD,
            label: "uc1 PyMaxEnt+kNN s=5".into(),
            error: PvError::CellPanic {
                message: "boom".into(),
            },
            attempts: 3,
        });
        q.save(&dir).unwrap();
        let back = Quarantine::load(&dir);
        assert_eq!(back, q);
        assert!(back.contains(0xDEAD));
        assert!(!back.contains(0xBEEF));
        assert_eq!(back.get(0xDEAD).unwrap().attempts, 3);

        // Inserting the same key replaces the entry.
        let mut q2 = back.clone();
        q2.insert(QuarantineEntry {
            key: 0xDEAD,
            label: "same cell".into(),
            error: PvError::NumericDomain { what: "ks".into() },
            attempts: 1,
        });
        assert_eq!(q2.len(), 1);
        assert_eq!(q2.get(0xDEAD).unwrap().attempts, 1);

        // Corrupt file → empty quarantine, never an error.
        fs::write(dir.join(QUARANTINE_FILE), "not json").unwrap();
        assert!(Quarantine::load(&dir).is_empty());
        Quarantine::clear(&dir);
        assert!(!dir.join(QUARANTINE_FILE).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_lock_excludes_and_releases() {
        let dir = temp_dir("lock");
        let lock = CacheLock::acquire(&dir, Duration::from_secs(5)).unwrap();
        assert!(lock.path().is_file());
        // A second acquisition by this same (live) process times out.
        let contender = CacheLock::acquire(&dir, Duration::from_millis(40));
        assert!(matches!(contender, Err(PvError::CacheIo { .. })));
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        // Released → immediately acquirable.
        let again = CacheLock::acquire(&dir, Duration::from_millis(40)).unwrap();
        drop(again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_broken() {
        let dir = temp_dir("stale-lock");
        fs::create_dir_all(&dir).unwrap();
        // Pid far above any real pid_max: guaranteed dead on Linux.
        fs::write(dir.join(LOCK_FILE), "999999999").unwrap();
        let lock = CacheLock::acquire(&dir, Duration::from_millis(200)).unwrap();
        drop(lock);
        // An unattributable lock file is honored, not broken.
        fs::write(dir.join(LOCK_FILE), "definitely not a pid").unwrap();
        assert!(CacheLock::acquire(&dir, Duration::from_millis(40)).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recycled_pid_lock_is_broken_but_matching_token_is_honored() {
        if pid_start_token(1).is_none() {
            return; // No /proc: the token path is inert on this platform.
        }
        let dir = temp_dir("recycled-lock");
        fs::create_dir_all(&dir).unwrap();
        // Pid 1 is alive, but a token it never had means the recorded
        // holder died and the pid was recycled: break the lock.
        fs::write(dir.join(LOCK_FILE), "1 18446744073709551615").unwrap();
        let lock = CacheLock::acquire(&dir, Duration::from_millis(200)).unwrap();
        drop(lock);
        // The genuine (pid, token) pair of a live process is honored.
        let token = pid_start_token(1).unwrap();
        fs::write(dir.join(LOCK_FILE), format!("1 {token}")).unwrap();
        assert!(CacheLock::acquire(&dir, Duration::from_millis(40)).is_err());
        // Legacy bare-pid file of a live process: conservative, honored.
        fs::write(dir.join(LOCK_FILE), "1").unwrap();
        assert!(CacheLock::acquire(&dir, Duration::from_millis(40)).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn acquired_lock_records_pid_and_start_token() {
        let dir = temp_dir("token-lock");
        let lock = CacheLock::acquire(&dir, Duration::from_secs(5)).unwrap();
        let text = fs::read_to_string(lock.path()).unwrap();
        let mut parts = text.split_whitespace();
        assert_eq!(
            parts.next().unwrap().parse::<u32>().unwrap(),
            std::process::id()
        );
        if let Some(token) = pid_start_token(std::process::id()) {
            assert_eq!(parts.next().unwrap().parse::<u64>().unwrap(), token);
        }
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_temp_sweep_removes_dead_writers_only() {
        let dir = temp_dir("temp-sweep");
        fs::create_dir_all(&dir).unwrap();
        let dead = dir.join("cell-1.json.tmp.999999999");
        let mangled = dir.join("cell-2.json.tmp.notapid");
        let live = dir.join(format!("cell-3.json.tmp.{}", std::process::id()));
        let innocent = dir.join("cell-4.json");
        for p in [&dead, &mangled, &live, &innocent] {
            fs::write(p, "x").unwrap();
        }
        assert_eq!(sweep_stale_temps(&dir), 2);
        assert!(!dead.exists());
        assert!(!mangled.exists());
        assert!(live.exists(), "a live writer's temp must survive");
        assert!(innocent.exists(), "non-temp files must survive");
        // Idempotent; missing directory sweeps nothing.
        assert_eq!(sweep_stale_temps(&dir), 0);
        assert_eq!(sweep_stale_temps(&dir.join("nope")), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_fault_plan_keys_by_sequence_and_parses_spec() {
        let plan = ServeFaultPlan::none()
            .inject_slow(2, 60_000)
            .inject_shed(5)
            .inject_reload_io(0);
        assert_eq!(plan.slow_at(2), Some(60_000));
        assert_eq!(plan.slow_at(3), None);
        assert!(plan.sheds_at(5));
        assert!(!plan.sheds_at(2));
        assert!(plan.reload_io_at(0));
        assert!(!plan.reload_io_at(1));
        assert_eq!(plan.faults().len(), 3);

        let parsed: ServeFaultPlan = "slow@2:60000, shed@5,reload-io@0".parse().unwrap();
        assert_eq!(parsed, plan);
        assert!(ServeFaultPlan::none().is_empty());
        assert!("".parse::<ServeFaultPlan>().unwrap().is_empty());
        assert!("slow@2".parse::<ServeFaultPlan>().is_err());
        assert!("gremlin@1".parse::<ServeFaultPlan>().is_err());
        assert!("shed@x".parse::<ServeFaultPlan>().is_err());
    }
}
