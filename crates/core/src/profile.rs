//! Application profiles: the input features of the prediction models.
//!
//! Section III-B1: a profile is a vector of application-independent
//! hardware/software metrics **normalized per unit time** (the simulator
//! already emits per-second rates). When the profile is built from
//! multiple runs, the feature vector holds the mean, standard deviation,
//! skewness, and kurtosis of every metric across those runs; a single-run
//! profile is the raw metric vector. Higher-order moments were tried by
//! the paper and discarded as insignificant, so four it is.

use pv_stats::moments::Moments;
use pv_stats::StatsError;
use pv_sysmodel::RunSet;
use serde::{Deserialize, Serialize};

/// A feature-vector view of an application's profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Number of runs the profile was built from.
    pub n_runs: usize,
    /// Number of underlying metrics.
    pub n_metrics: usize,
    /// The feature vector: `n_metrics` values for a single-run profile,
    /// `4 × n_metrics` (mean, std, skew, kurt per metric) otherwise.
    pub features: Vec<f64>,
}

impl Profile {
    /// Builds the profile of the first `s` runs of a run set.
    ///
    /// # Errors
    /// Fails when `s` is zero or exceeds the available runs.
    pub fn from_runs(runs: &RunSet, s: usize) -> Result<Profile, StatsError> {
        if s == 0 || s > runs.len() {
            return Err(StatsError::invalid(
                "Profile::from_runs",
                format!("requested {s} runs, set has {}", runs.len()),
            ));
        }
        let n_metrics = runs.records[0].metrics.len();
        let features = if s == 1 {
            runs.records[0].metrics.clone()
        } else {
            let mut accs = vec![Moments::new(); n_metrics];
            for rec in &runs.records[..s] {
                for (acc, &v) in accs.iter_mut().zip(&rec.metrics) {
                    acc.push(v);
                }
            }
            let mut f = Vec::with_capacity(4 * n_metrics);
            for acc in &accs {
                f.push(acc.mean());
                f.push(acc.population_std());
                f.push(acc.skewness());
                f.push(acc.kurtosis());
            }
            f
        };
        Ok(Profile {
            n_runs: s,
            n_metrics,
            features,
        })
    }

    /// Feature dimensionality for a profile of `s` runs over `n_metrics`
    /// metrics.
    pub fn feature_dim(n_metrics: usize, s: usize) -> usize {
        if s == 1 {
            n_metrics
        } else {
            4 * n_metrics
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_sysmodel::{simulate_runs, suites, Character, SystemModel};

    fn runs(n: usize) -> RunSet {
        let sys = SystemModel::intel();
        let id = suites::find("npb/bt").unwrap();
        let ch = Character::generate(&id, 1);
        let gt = sys.ground_truth(&id, &ch, 1);
        simulate_runs(&sys, &id, &ch, &gt, n, 1)
    }

    #[test]
    fn single_run_profile_is_raw_metrics() {
        let rs = runs(5);
        let p = Profile::from_runs(&rs, 1).unwrap();
        assert_eq!(p.features, rs.records[0].metrics);
        assert_eq!(p.features.len(), Profile::feature_dim(68, 1));
    }

    #[test]
    fn multi_run_profile_has_four_stats_per_metric() {
        let rs = runs(10);
        let p = Profile::from_runs(&rs, 10).unwrap();
        assert_eq!(p.features.len(), 4 * 68);
        assert_eq!(p.features.len(), Profile::feature_dim(68, 10));
        // First metric's mean equals the direct computation.
        let direct: f64 = rs.records.iter().map(|r| r.metrics[0]).sum::<f64>() / 10.0;
        // Relative tolerance: raw counter rates are O(1e9).
        assert!((p.features[0] - direct).abs() < 1e-9 * direct.abs());
        // Stds are non-negative; kurtosis slots are ≥ 1 when defined.
        for m in 0..68 {
            assert!(p.features[4 * m + 1] >= 0.0);
        }
    }

    #[test]
    fn profile_uses_only_the_first_s_runs() {
        let rs = runs(20);
        let p1 = Profile::from_runs(&rs, 5).unwrap();
        let p2 = Profile::from_runs(&rs.head(5), 5).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn invalid_run_counts_error() {
        let rs = runs(3);
        assert!(Profile::from_runs(&rs, 0).is_err());
        assert!(Profile::from_runs(&rs, 4).is_err());
    }

    #[test]
    fn features_are_finite() {
        let rs = runs(10);
        let p = Profile::from_runs(&rs, 10).unwrap();
        assert!(p.features.iter().all(|v| v.is_finite()));
    }
}
