//! # pv-core — predicting performance variability
//!
//! The primary contribution of *Predicting Performance Variability*
//! (IPPS 2025), reproduced in Rust: given profiles and measured
//! performance distributions of many benchmarks, train models that predict
//! the full performance **distribution** of a *new* application — either
//! from a few runs on the same system (use case 1) or from a measured
//! distribution on a different system (use case 2).
//!
//! ## Pipeline anatomy
//!
//! | Paper section | Module |
//! |---|---|
//! | III-B1 application profiles | [`profile`] |
//! | III-B2 distribution representations (Histogram / PyMaxEnt / PearsonRnd) | [`repr`] |
//! | III-B3 models (kNN / random forest / XGBoost) | [`model`] |
//! | III-A1 few-runs prediction | [`usecase1`] |
//! | III-A2 cross-system prediction | [`usecase2`] |
//! | IV-E / V KS-scored leave-one-group-out evaluation | [`eval`] |
//! | shared encode-once cache + LOGO fold runner | [`pipeline`] |
//! | incremental fold-level evaluation (per-fold score cache + append delta) | [`incremental`] |
//! | config-grid sweep service with cached cells | [`sweep`] |
//! | trained-model registry (sealed fitted artifacts for serving) | [`registry`] |
//! | fault tolerance: error taxonomy, retries, quarantine, fault injection | [`resilience`] |
//! | figure/table rendering | [`report`] |
//!
//! Every evaluation path — both use cases, the kNN ablation grid, and the
//! baselines — runs on the [`pipeline`] layer: an [`pipeline::EncodedCorpus`]
//! computes profiles and target encodings once (in parallel), and a
//! [`pipeline::FoldRunner`] owns the leave-one-group-out scaffolding, so a
//! fold is row slicing plus a model fit. Results are bit-identical to
//! training each fold from scratch, for any thread count.
//!
//! ## Sixty-second example
//!
//! ```
//! use pv_core::eval::evaluate_few_runs;
//! use pv_core::usecase1::FewRunsConfig;
//! use pv_sysmodel::{Corpus, SystemModel};
//!
//! // Measure a (small) corpus on the simulated Intel system…
//! let corpus = Corpus::collect(&SystemModel::intel(), 50, 42);
//! // …and evaluate the paper's best configuration with LOGO CV.
//! let cfg = FewRunsConfig { n_profile_runs: 5, profiles_per_benchmark: 4,
//!                           ..FewRunsConfig::default() };
//! let summary = evaluate_few_runs(&corpus, cfg).unwrap();
//! assert_eq!(summary.scores.len(), 60);
//! assert!(summary.mean < 0.6);
//! ```

// Panics on the evaluation/sweep paths sink whole campaigns; failures
// must travel as typed `resilience::PvError` values instead. Spots
// where a panic really is an invariant carry an explicit `#[allow]`.
#![warn(clippy::unwrap_used)]

pub mod ablation;
pub mod baseline;
pub mod eval;
pub mod incremental;
pub mod model;
pub mod pipeline;
pub mod profile;
pub mod registry;
pub mod report;
pub mod repr;
pub mod resilience;
pub mod shard;
pub mod sweep;
pub mod usecase1;
pub mod usecase2;

pub use baseline::{
    empirical_baseline, empirical_baseline_encoded, population_baseline,
    population_baseline_encoded,
};
pub use eval::{
    evaluate_cross_system, evaluate_cross_system_encoded, evaluate_cross_system_sharded,
    evaluate_few_runs, evaluate_few_runs_encoded, evaluate_few_runs_sharded, BenchScore,
    EvalSummary,
};
pub use incremental::{
    evaluate_cross_system_incremental, evaluate_cross_system_incremental_sharded,
    evaluate_few_runs_incremental, evaluate_few_runs_incremental_sharded, fold_fingerprint,
    FoldCacheStats, FoldEntry, IncrementalEval,
};
pub use model::{binned_trees_default, tree_kernel_tag, FittedModel, ModelKind};
pub use pipeline::{
    bench_fingerprints, corpus_fingerprint, EncodedCorpus, EncodingSpec, FoldRunner, FoldTruth,
    FoldView, PreparedFold, RowSink, SeedMode,
};
pub use profile::Profile;
pub use registry::{
    artifact_key, Artifact, ModelRegistry, RegistryEntry, REGISTRY_OBS_COUNTERS, REGISTRY_VERSION,
};
pub use repr::{DistributionRepr, ReprKind};
pub use resilience::{FaultKind, FaultPlan, PvError, Quarantine};
pub use shard::{
    CampaignSource, EncodedShard, ShardLayout, ShardSource, ShardedCorpus, ShardedCorpusBuilder,
    SHARD_OBS_COUNTERS,
};
pub use sweep::{
    cell_key, cross_fingerprint, CellCache, CellConfig, CellOutcome, CellResult, GridSpec, Sweep,
    SweepReport, SweepTarget,
};
pub use usecase1::{FewRunsArtifact, FewRunsConfig, FewRunsPredictor};
pub use usecase2::{CrossSystemArtifact, CrossSystemConfig, CrossSystemPredictor};
