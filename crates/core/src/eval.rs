//! Leave-one-group-out evaluation of both use cases.
//!
//! Section IV-E / V: every benchmark is held out once; a model trained on
//! the remaining 59 predicts the held-out distribution; the prediction is
//! reconstructed into samples and scored with the two-sample KS statistic
//! against the measured (1,000-run) distribution. Violin plots in the
//! paper are KDEs over these 60 per-benchmark scores.

use rayon::prelude::*;
use serde::Serialize;

use pv_stats::descriptive::FiveNumber;
use pv_stats::ks::ks2_statistic;
use pv_stats::rng::derive_stream;
use pv_stats::StatsError;
use pv_sysmodel::{BenchmarkId, Corpus};

use crate::usecase1::{FewRunsConfig, FewRunsPredictor};
use crate::usecase2::{CrossSystemConfig, CrossSystemPredictor};

/// Number of samples drawn when reconstructing a predicted distribution
/// for scoring (matches the 1,000-run measurement campaign).
pub const RECONSTRUCTION_SAMPLES: usize = 1000;

/// KS score of one held-out benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BenchScore {
    /// The held-out benchmark.
    pub id: BenchmarkId,
    /// Two-sample KS statistic, predicted vs. measured.
    pub ks: f64,
}

/// Aggregate of a leave-one-group-out evaluation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvalSummary {
    /// Per-benchmark scores, roster order.
    pub scores: Vec<BenchScore>,
    /// Mean KS across benchmarks (the paper's headline number per cell).
    pub mean: f64,
    /// Five-number summary of the scores (violin skeleton).
    pub spread: FiveNumber,
}

impl EvalSummary {
    /// Builds the aggregate from per-benchmark scores.
    ///
    /// # Errors
    /// Fails on an empty score list.
    pub fn from_scores(scores: Vec<BenchScore>) -> Result<Self, StatsError> {
        let values: Vec<f64> = scores.iter().map(|s| s.ks).collect();
        let spread = FiveNumber::from_sample(&values)?;
        Ok(EvalSummary {
            mean: values.iter().sum::<f64>() / values.len() as f64,
            scores,
            spread,
        })
    }

    /// The raw KS values (for violin rendering).
    pub fn ks_values(&self) -> Vec<f64> {
        self.scores.iter().map(|s| s.ks).collect()
    }
}

/// Leave-one-group-out evaluation of use case #1 on one corpus.
///
/// Folds run in parallel; each fold derives its own seeds, so the result
/// is independent of thread count.
///
/// # Errors
/// Propagates training/prediction failures from any fold.
pub fn evaluate_few_runs(corpus: &Corpus, cfg: FewRunsConfig) -> Result<EvalSummary, StatsError> {
    let n = corpus.len();
    let scores: Result<Vec<BenchScore>, StatsError> = (0..n)
        .into_par_iter()
        .map(|held| {
            let include: Vec<usize> = (0..n).filter(|&i| i != held).collect();
            let mut fold_cfg = cfg;
            fold_cfg.seed = derive_stream(cfg.seed, held as u64);
            let predictor = FewRunsPredictor::train(corpus, &include, fold_cfg)?;
            let bench = &corpus.benchmarks[held];
            let predicted = predictor.predict_distribution(
                &bench.runs,
                RECONSTRUCTION_SAMPLES,
                held as u64,
            )?;
            let ks = ks2_statistic(&predicted, &bench.runs.rel_times())?;
            Ok(BenchScore { id: bench.id, ks })
        })
        .collect();
    EvalSummary::from_scores(scores?)
}

/// Leave-one-group-out evaluation of use case #2 (source → destination).
///
/// # Errors
/// Propagates training/prediction failures from any fold.
pub fn evaluate_cross_system(
    src: &Corpus,
    dst: &Corpus,
    cfg: CrossSystemConfig,
) -> Result<EvalSummary, StatsError> {
    let n = src.len();
    let scores: Result<Vec<BenchScore>, StatsError> = (0..n)
        .into_par_iter()
        .map(|held| {
            let include: Vec<usize> = (0..n).filter(|&i| i != held).collect();
            let mut fold_cfg = cfg;
            fold_cfg.seed = derive_stream(cfg.seed, held as u64);
            let predictor = CrossSystemPredictor::train(src, dst, &include, fold_cfg)?;
            let predicted = predictor.predict_distribution(
                &src.benchmarks[held],
                RECONSTRUCTION_SAMPLES,
                held as u64,
            )?;
            let truth = dst.benchmarks[held].runs.rel_times();
            let ks = ks2_statistic(&predicted, &truth)?;
            Ok(BenchScore {
                id: dst.benchmarks[held].id,
                ks,
            })
        })
        .collect();
    EvalSummary::from_scores(scores?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::repr::ReprKind;
    use pv_sysmodel::SystemModel;

    fn tiny_corpus(sys: SystemModel) -> Corpus {
        Corpus::collect(&sys, 40, 3)
    }

    fn uc1_cfg() -> FewRunsConfig {
        FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: 5,
            profiles_per_benchmark: 3,
            seed: 1,
        }
    }

    #[test]
    fn few_runs_eval_produces_sixty_scores_in_unit_range() {
        let corpus = tiny_corpus(SystemModel::intel());
        let summary = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        assert_eq!(summary.scores.len(), 60);
        assert!(summary
            .scores
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.ks)));
        assert!(summary.mean > 0.0 && summary.mean < 1.0);
        assert!(summary.spread.min <= summary.mean && summary.mean <= summary.spread.max);
    }

    #[test]
    fn few_runs_eval_is_deterministic() {
        let corpus = tiny_corpus(SystemModel::intel());
        let a = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        let b = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn few_runs_predictions_beat_a_mismatched_baseline() {
        // The predicted distribution for each benchmark should, on
        // average, be closer to its own measured distribution than a
        // fixed ultra-wide uniform baseline is.
        let corpus = tiny_corpus(SystemModel::intel());
        let summary = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        let baseline: Vec<f64> = (0..1000).map(|i| 0.7 + 0.8 * i as f64 / 999.0).collect();
        let baseline_mean: f64 = corpus
            .benchmarks
            .iter()
            .map(|b| ks2_statistic(&baseline, &b.runs.rel_times()).unwrap())
            .sum::<f64>()
            / corpus.len() as f64;
        assert!(
            summary.mean < baseline_mean,
            "prediction mean {} vs uniform baseline {}",
            summary.mean,
            baseline_mean
        );
    }

    #[test]
    fn cross_system_eval_runs_both_directions() {
        let amd = tiny_corpus(SystemModel::amd());
        let intel = tiny_corpus(SystemModel::intel());
        let cfg = CrossSystemConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            profile_runs: 20,
            seed: 2,
        };
        let a2i = evaluate_cross_system(&amd, &intel, cfg).unwrap();
        let i2a = evaluate_cross_system(&intel, &amd, cfg).unwrap();
        assert_eq!(a2i.scores.len(), 60);
        assert_eq!(i2a.scores.len(), 60);
        assert!(a2i.mean > 0.0 && a2i.mean < 1.0);
        assert!(i2a.mean > 0.0 && i2a.mean < 1.0);
    }

    #[test]
    fn eval_summary_rejects_empty() {
        assert!(EvalSummary::from_scores(vec![]).is_err());
    }
}
