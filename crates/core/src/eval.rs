//! Leave-one-group-out evaluation of both use cases.
//!
//! Section IV-E / V: every benchmark is held out once; a model trained on
//! the remaining 59 predicts the held-out distribution; the prediction is
//! reconstructed into samples and scored with the two-sample KS statistic
//! against the measured (1,000-run) distribution. Violin plots in the
//! paper are KDEs over these 60 per-benchmark scores.
//!
//! Both evaluations run on the shared [`pipeline`](crate::pipeline)
//! layer: profiles and target encodings are computed once per corpus
//! ([`EncodedCorpus`]) and each fold is assembled by row slicing inside a
//! [`FoldRunner`]. The `*_encoded` variants accept a prebuilt cache so
//! sweeps over models/representations on the same corpus (the paper's
//! grids) pay for encoding once.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use pv_stats::descriptive::FiveNumber;
use pv_stats::StatsError;
use pv_sysmodel::{BenchmarkId, Corpus};

use crate::pipeline::{EncodedCorpus, EncodingSpec, FoldRunner, FoldTruth, FoldView, SeedMode};
use crate::repr::DistributionRepr;
use crate::shard::{
    cross_system_assemble_sharded, few_runs_assemble_sharded, sharded_truth, ShardedCorpus,
};
use crate::usecase1::FewRunsConfig;
use crate::usecase2::CrossSystemConfig;

/// Number of samples drawn when reconstructing a predicted distribution
/// for scoring (matches the 1,000-run measurement campaign).
pub const RECONSTRUCTION_SAMPLES: usize = 1000;

/// KS score of one held-out benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchScore {
    /// The held-out benchmark.
    pub id: BenchmarkId,
    /// Two-sample KS statistic, predicted vs. measured.
    pub ks: f64,
}

/// Aggregate of a leave-one-group-out evaluation.
///
/// Serializes losslessly (shortest-round-trip floats), so a summary that
/// round-trips through the sweep service's on-disk cell cache compares
/// bit-identical to the freshly computed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Per-benchmark scores, roster order.
    pub scores: Vec<BenchScore>,
    /// Mean KS across benchmarks (the paper's headline number per cell).
    pub mean: f64,
    /// Five-number summary of the scores (violin skeleton).
    pub spread: FiveNumber,
}

impl EvalSummary {
    /// Builds the aggregate from per-benchmark scores.
    ///
    /// # Errors
    /// Fails on an empty score list.
    pub fn from_scores(scores: Vec<BenchScore>) -> Result<Self, StatsError> {
        let values: Vec<f64> = scores.iter().map(|s| s.ks).collect();
        let spread = FiveNumber::from_sample(&values)?;
        Ok(EvalSummary {
            mean: values.iter().sum::<f64>() / values.len() as f64,
            scores,
            spread,
        })
    }

    /// The raw KS values (for violin rendering).
    pub fn ks_values(&self) -> Vec<f64> {
        self.scores.iter().map(|s| s.ks).collect()
    }
}

/// The cache spec [`evaluate_few_runs`] needs for a given configuration.
///
/// Use this to prebuild an [`EncodedCorpus`] shared across several
/// configurations (merge specs by chaining the builder).
pub fn few_runs_spec(cfg: &FewRunsConfig) -> EncodingSpec {
    EncodingSpec::new()
        .profiles(cfg.n_profile_runs, cfg.profiles_per_benchmark.max(1))
        .target(cfg.repr)
}

/// Leave-one-group-out evaluation of use case #1 on one corpus.
///
/// Folds run in parallel; each fold derives its own seeds, so the result
/// is independent of thread count.
///
/// # Errors
/// Propagates training/prediction failures from any fold.
pub fn evaluate_few_runs(corpus: &Corpus, cfg: FewRunsConfig) -> Result<EvalSummary, StatsError> {
    let enc = EncodedCorpus::build(corpus, &few_runs_spec(&cfg))?;
    evaluate_few_runs_encoded(&enc, cfg)
}

/// The [`FoldRunner`] a use-case-1 evaluation uses (shared with the
/// incremental layer so both paths are one code path, not two copies
/// that could drift).
pub(crate) fn few_runs_runner<'r>(
    n_folds: usize,
    cfg: &FewRunsConfig,
    repr: &'r dyn DistributionRepr,
) -> FoldRunner<'r> {
    FoldRunner {
        n_folds,
        seed: cfg.seed,
        seed_mode: SeedMode::PerFold,
        standardize: cfg.model.wants_standardization(),
        n_samples: RECONSTRUCTION_SAMPLES,
        repr,
    }
}

/// The fold-assembly closure of use case 1: `windows` profile rows per
/// included benchmark, all mapping to the benchmark's target encoding.
///
/// Row order is include-rank-major (`rank × windows + w`), so when the
/// corpus grows, surviving rows keep their positions and only new rows
/// append — the property the kNN delta path in
/// [`crate::incremental`] relies on.
pub(crate) fn few_runs_assemble<'a, 'c>(
    enc: &'a EncodedCorpus<'c>,
    cfg: FewRunsConfig,
) -> impl Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError> + Send + Sync + 'a {
    let s = cfg.n_profile_runs;
    let windows = cfg.profiles_per_benchmark.max(1);
    move |held, include| {
        let query = enc.profile(s, held, 0)?.to_vec();
        let x_dim = query.len();
        let y_dim = enc.target(cfg.repr, held)?.len();
        Ok(FoldView::new(
            include.len() * windows,
            x_dim,
            y_dim,
            query,
            move |sink| {
                for &bi in &include {
                    let target = enc.target(cfg.repr, bi)?;
                    for w in 0..windows {
                        sink(enc.profile(s, bi, w)?, target, bi)?;
                    }
                }
                Ok(())
            },
        ))
    }
}

/// The fold-truth closure of use case 1: score against the held-out
/// benchmark's measured relative times.
pub(crate) fn few_runs_truth<'a, 'c>(
    enc: &'a EncodedCorpus<'c>,
) -> impl Fn(usize) -> Result<FoldTruth<'a>, StatsError> + Send + Sync + 'a {
    let corpus = enc.corpus();
    move |held| {
        Ok(FoldTruth {
            id: corpus.benchmarks[held].id,
            rel: Cow::Borrowed(enc.rel_times_sorted(held)),
            sorted: true,
        })
    }
}

/// [`evaluate_few_runs`] on a prebuilt cache.
///
/// Bit-identical to the uncached function for the same corpus, config and
/// seed; the cache must cover [`few_runs_spec`] for this config.
///
/// # Errors
/// Fails when the cache is missing required entries, plus anything
/// [`evaluate_few_runs`] can fail with.
pub fn evaluate_few_runs_encoded(
    enc: &EncodedCorpus,
    cfg: FewRunsConfig,
) -> Result<EvalSummary, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.few_runs",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.n_profile_runs,
    );
    let repr = cfg.repr.build();
    let runner = few_runs_runner(enc.len(), &cfg, repr.as_ref());
    runner.run(
        |fold_seed| cfg.model.build(fold_seed),
        few_runs_assemble(enc, cfg),
        few_runs_truth(enc),
    )
}

/// [`evaluate_few_runs`] over a sharded corpus.
///
/// Bit-identical to the monolithic paths for the same campaign, config
/// and seed, at any shard layout and thread count: folds stream their
/// rows shard by shard in the same include-rank-major order the
/// monolithic assembly produces, and per-fold seeds never depend on the
/// layout. Peak memory is bounded by the corpus's resident-shard budget,
/// not the corpus size.
///
/// # Errors
/// Fails when the sharded corpus's spec does not cover
/// [`few_runs_spec`], plus anything [`evaluate_few_runs`] can fail with.
pub fn evaluate_few_runs_sharded(
    sh: &ShardedCorpus<'_>,
    cfg: FewRunsConfig,
) -> Result<EvalSummary, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.few_runs",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.n_profile_runs,
    );
    let repr = cfg.repr.build();
    let runner = few_runs_runner(sh.len(), &cfg, repr.as_ref());
    runner.run(
        |fold_seed| cfg.model.build(fold_seed),
        few_runs_assemble_sharded(sh, cfg),
        sharded_truth(sh),
    )
}

/// The cache specs (source, destination) [`evaluate_cross_system`] needs.
pub fn cross_system_specs(src: &Corpus, cfg: &CrossSystemConfig) -> (EncodingSpec, EncodingSpec) {
    cross_system_specs_for_runs(src.n_runs, cfg)
}

/// [`cross_system_specs`] from the source run count alone — for sharded
/// campaigns that never materialize a [`Corpus`].
pub fn cross_system_specs_for_runs(
    src_n_runs: usize,
    cfg: &CrossSystemConfig,
) -> (EncodingSpec, EncodingSpec) {
    let s_eff = cfg.profile_runs.min(src_n_runs).max(1);
    (
        EncodingSpec::new().joined(s_eff, cfg.repr),
        EncodingSpec::new().target(cfg.repr),
    )
}

/// Leave-one-group-out evaluation of use case #2 (source → destination).
///
/// # Errors
/// Propagates training/prediction failures from any fold.
pub fn evaluate_cross_system(
    src: &Corpus,
    dst: &Corpus,
    cfg: CrossSystemConfig,
) -> Result<EvalSummary, StatsError> {
    let (src_spec, dst_spec) = cross_system_specs(src, &cfg);
    let src_enc = EncodedCorpus::build(src, &src_spec)?;
    let dst_enc = EncodedCorpus::build(dst, &dst_spec)?;
    evaluate_cross_system_encoded(&src_enc, &dst_enc, cfg)
}

/// Validates a use-case-2 corpus pair: aligned rosters on two distinct
/// systems.
pub(crate) fn validate_cross_system_pair(
    src_corpus: &Corpus,
    dst_corpus: &Corpus,
) -> Result<(), StatsError> {
    if src_corpus.len() != dst_corpus.len() {
        return Err(StatsError::invalid(
            "evaluate_cross_system",
            "source and destination corpora cover different rosters",
        ));
    }
    if src_corpus.system == dst_corpus.system {
        return Err(StatsError::invalid(
            "evaluate_cross_system",
            "source and destination are the same system",
        ));
    }
    for (s, d) in src_corpus.benchmarks.iter().zip(&dst_corpus.benchmarks) {
        if s.id != d.id {
            return Err(StatsError::invalid(
                "evaluate_cross_system",
                "corpora rosters are misaligned",
            ));
        }
    }
    Ok(())
}

/// The [`FoldRunner`] a use-case-2 evaluation uses.
pub(crate) fn cross_system_runner<'r>(
    n_folds: usize,
    cfg: &CrossSystemConfig,
    repr: &'r dyn DistributionRepr,
) -> FoldRunner<'r> {
    FoldRunner {
        n_folds,
        seed: cfg.seed,
        seed_mode: SeedMode::PerFold,
        standardize: cfg.model.wants_standardization(),
        n_samples: RECONSTRUCTION_SAMPLES,
        repr,
    }
}

/// The fold-assembly closure of use case 2: one joined source row per
/// included benchmark mapping to its destination target encoding.
///
/// Row order is include-rank order, so corpus growth appends rows
/// without moving survivors (see [`few_runs_assemble`]).
pub(crate) fn cross_system_assemble<'a, 'c>(
    src: &'a EncodedCorpus<'c>,
    dst: &'a EncodedCorpus<'c>,
    cfg: CrossSystemConfig,
) -> impl Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError> + Send + Sync + 'a {
    let s_eff = cfg.profile_runs.min(src.corpus().n_runs).max(1);
    move |held, include| {
        let query = src.joined(s_eff, cfg.repr, held)?.to_vec();
        let x_dim = query.len();
        let y_dim = dst.target(cfg.repr, held)?.len();
        Ok(FoldView::new(
            include.len(),
            x_dim,
            y_dim,
            query,
            move |sink| {
                for &bi in &include {
                    sink(
                        src.joined(s_eff, cfg.repr, bi)?,
                        dst.target(cfg.repr, bi)?,
                        bi,
                    )?;
                }
                Ok(())
            },
        ))
    }
}

/// The fold-truth closure of use case 2: score against the held-out
/// benchmark's measured relative times on the *destination* system.
pub(crate) fn cross_system_truth<'a, 'c>(
    dst: &'a EncodedCorpus<'c>,
) -> impl Fn(usize) -> Result<FoldTruth<'a>, StatsError> + Send + Sync + 'a {
    let dst_corpus = dst.corpus();
    move |held| {
        Ok(FoldTruth {
            id: dst_corpus.benchmarks[held].id,
            rel: Cow::Borrowed(dst.rel_times_sorted(held)),
            sorted: true,
        })
    }
}

/// [`evaluate_cross_system`] on prebuilt caches.
///
/// Bit-identical to the uncached function for the same corpora, config
/// and seed; the caches must cover [`cross_system_specs`].
///
/// # Errors
/// Fails on mismatched corpora, missing cache entries, plus anything
/// [`evaluate_cross_system`] can fail with.
pub fn evaluate_cross_system_encoded(
    src: &EncodedCorpus,
    dst: &EncodedCorpus,
    cfg: CrossSystemConfig,
) -> Result<EvalSummary, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.cross_system",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.profile_runs,
    );
    validate_cross_system_pair(src.corpus(), dst.corpus())?;
    let repr = cfg.repr.build();
    let runner = cross_system_runner(src.len(), &cfg, repr.as_ref());
    runner.run(
        |fold_seed| cfg.model.build(fold_seed),
        cross_system_assemble(src, dst, cfg),
        cross_system_truth(dst),
    )
}

/// Validates a use-case-2 sharded pair: aligned rosters on two distinct
/// systems (shard layouts may differ — folds pin source and destination
/// shards independently).
pub(crate) fn validate_cross_system_sharded(
    src: &ShardedCorpus<'_>,
    dst: &ShardedCorpus<'_>,
) -> Result<(), StatsError> {
    if src.len() != dst.len() || src.ids() != dst.ids() {
        return Err(StatsError::invalid(
            "evaluate_cross_system",
            "source and destination corpora cover different rosters",
        ));
    }
    if src.system() == dst.system() {
        return Err(StatsError::invalid(
            "evaluate_cross_system",
            "source and destination are the same system",
        ));
    }
    Ok(())
}

/// [`evaluate_cross_system`] over sharded corpora.
///
/// Bit-identical to the monolithic paths for the same campaigns, config
/// and seed, at any shard layouts and thread count (see
/// [`evaluate_few_runs_sharded`]).
///
/// # Errors
/// Fails on mismatched corpora or uncovered specs, plus anything
/// [`evaluate_cross_system`] can fail with.
pub fn evaluate_cross_system_sharded(
    src: &ShardedCorpus<'_>,
    dst: &ShardedCorpus<'_>,
    cfg: CrossSystemConfig,
) -> Result<EvalSummary, StatsError> {
    let _span = pv_obs::span!(
        "pv.core.eval.cross_system",
        repr = cfg.repr.name(),
        model = cfg.model.name(),
        s = cfg.profile_runs,
    );
    validate_cross_system_sharded(src, dst)?;
    let repr = cfg.repr.build();
    let runner = cross_system_runner(src.len(), &cfg, repr.as_ref());
    runner.run(
        |fold_seed| cfg.model.build(fold_seed),
        cross_system_assemble_sharded(src, dst, cfg),
        sharded_truth(dst),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::repr::ReprKind;
    use pv_stats::ks::ks2_statistic;
    use pv_sysmodel::SystemModel;

    fn tiny_corpus(sys: SystemModel) -> Corpus {
        Corpus::collect(&sys, 40, 3)
    }

    fn uc1_cfg() -> FewRunsConfig {
        FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: 5,
            profiles_per_benchmark: 3,
            seed: 1,
        }
    }

    #[test]
    fn few_runs_eval_produces_sixty_scores_in_unit_range() {
        let corpus = tiny_corpus(SystemModel::intel());
        let summary = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        assert_eq!(summary.scores.len(), 60);
        assert!(summary.scores.iter().all(|s| (0.0..=1.0).contains(&s.ks)));
        assert!(summary.mean > 0.0 && summary.mean < 1.0);
        assert!(summary.spread.min <= summary.mean && summary.mean <= summary.spread.max);
    }

    #[test]
    fn few_runs_eval_is_deterministic() {
        let corpus = tiny_corpus(SystemModel::intel());
        let a = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        let b = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn few_runs_eval_is_thread_count_independent() {
        let corpus = tiny_corpus(SystemModel::intel());
        let baseline = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        for n in [1, 2, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            let under_pool = pool.install(|| evaluate_few_runs(&corpus, uc1_cfg()).unwrap());
            assert_eq!(baseline, under_pool, "{n} threads");
        }
    }

    #[test]
    fn few_runs_predictions_beat_a_mismatched_baseline() {
        // The predicted distribution for each benchmark should, on
        // average, be closer to its own measured distribution than a
        // fixed ultra-wide uniform baseline is.
        let corpus = tiny_corpus(SystemModel::intel());
        let summary = evaluate_few_runs(&corpus, uc1_cfg()).unwrap();
        let baseline: Vec<f64> = (0..1000).map(|i| 0.7 + 0.8 * i as f64 / 999.0).collect();
        let baseline_mean: f64 = corpus
            .benchmarks
            .iter()
            .map(|b| ks2_statistic(&baseline, &b.runs.rel_times()).unwrap())
            .sum::<f64>()
            / corpus.len() as f64;
        assert!(
            summary.mean < baseline_mean,
            "prediction mean {} vs uniform baseline {}",
            summary.mean,
            baseline_mean
        );
    }

    #[test]
    fn shared_cache_reproduces_per_call_results() {
        // One cache built for the widest config serves narrower ones.
        let corpus = tiny_corpus(SystemModel::intel());
        let wide = uc1_cfg();
        let narrow = FewRunsConfig {
            profiles_per_benchmark: 1,
            ..wide
        };
        let enc = EncodedCorpus::build(&corpus, &few_runs_spec(&wide)).unwrap();
        for cfg in [wide, narrow] {
            let cached = evaluate_few_runs_encoded(&enc, cfg).unwrap();
            let fresh = evaluate_few_runs(&corpus, cfg).unwrap();
            assert_eq!(cached, fresh);
        }
    }

    #[test]
    fn cross_system_eval_runs_both_directions() {
        let amd = tiny_corpus(SystemModel::amd());
        let intel = tiny_corpus(SystemModel::intel());
        let cfg = CrossSystemConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            profile_runs: 20,
            seed: 2,
        };
        let a2i = evaluate_cross_system(&amd, &intel, cfg).unwrap();
        let i2a = evaluate_cross_system(&intel, &amd, cfg).unwrap();
        assert_eq!(a2i.scores.len(), 60);
        assert_eq!(i2a.scores.len(), 60);
        assert!(a2i.mean > 0.0 && a2i.mean < 1.0);
        assert!(i2a.mean > 0.0 && i2a.mean < 1.0);
    }

    #[test]
    fn cross_system_rejects_mismatched_pairs() {
        let amd = tiny_corpus(SystemModel::amd());
        let cfg = CrossSystemConfig::default();
        assert!(evaluate_cross_system(&amd, &amd, cfg).is_err());
    }

    #[test]
    fn eval_summary_rejects_empty() {
        assert!(EvalSummary::from_scores(vec![]).is_err());
    }
}
