//! Use case #1: predicting a performance distribution from a few runs on
//! the same system (Section III-A1).
//!
//! A system-specific model is trained on a corpus of benchmarks measured
//! on the system of interest. Each benchmark contributes several training
//! rows: the features are a [`Profile`](crate::profile::Profile) built
//! from a window of `s` runs, and the target is the chosen
//! [representation](crate::repr) of the benchmark's full (1,000-run)
//! relative-time distribution. At prediction time, the user supplies just
//! `s` runs of a *new* application and gets its whole distribution back.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pv_ml::{Dataset, DenseMatrix, StandardScaler};
use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use pv_sysmodel::{Corpus, RunSet};

use crate::model::{FittedModel, ModelKind};
use crate::pipeline::{EncodedCorpus, EncodingSpec};
use crate::profile::Profile;
use crate::repr::{DistributionRepr, ReprKind};

/// Configuration of a few-runs predictor.
///
/// All fields are discrete, so the config is `Eq + Hash` and can key
/// sweep-cell sets and caches directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FewRunsConfig {
    /// Distribution representation (prediction target format).
    pub repr: ReprKind,
    /// Regression model.
    pub model: ModelKind,
    /// Number of runs per profile (`s`; the paper's headline uses 10).
    pub n_profile_runs: usize,
    /// Training profiles drawn per benchmark (disjoint windows of `s`
    /// runs).
    pub profiles_per_benchmark: usize,
    /// Root seed for model randomness and reconstruction sampling.
    pub seed: u64,
}

impl Default for FewRunsConfig {
    fn default() -> Self {
        FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: 10,
            profiles_per_benchmark: 1,
            seed: 0xC0FFEE,
        }
    }
}

/// A trained few-runs distribution predictor.
pub struct FewRunsPredictor {
    repr: Box<dyn DistributionRepr>,
    model: FittedModel,
    scaler: Option<StandardScaler>,
    cfg: FewRunsConfig,
    n_metrics: usize,
}

/// The serializable state of a [`FewRunsPredictor`] — everything needed
/// to reconstruct it bit-identically (the repr is rebuilt from
/// `config.repr`, which is stateless).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FewRunsArtifact {
    /// Training configuration.
    pub config: FewRunsConfig,
    /// Fitted model state.
    pub model: FittedModel,
    /// Fitted standardization moments, when the model standardizes.
    pub scaler: Option<StandardScaler>,
    /// Metric count of the training corpus (prediction-time validation).
    pub n_metrics: usize,
}

impl FewRunsPredictor {
    /// Trains on the benchmarks of `corpus` whose roster indices are in
    /// `include` (pass `0..corpus.len()` for everything; leave-one-out
    /// evaluation passes everything except the held-out benchmark).
    ///
    /// # Errors
    /// Fails when `include` is empty, windows don't fit in the corpus, or
    /// the underlying encode/fit fails.
    pub fn train(
        corpus: &Corpus,
        include: &[usize],
        cfg: FewRunsConfig,
    ) -> Result<Self, StatsError> {
        if include.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "FewRunsPredictor::train",
                needed: 1,
                got: 0,
            });
        }
        if cfg.n_profile_runs == 0 {
            return Err(StatsError::invalid(
                "FewRunsPredictor::train",
                "n_profile_runs = 0",
            ));
        }
        let spec = EncodingSpec::new()
            .profiles(cfg.n_profile_runs, cfg.profiles_per_benchmark.max(1))
            .target(cfg.repr);
        let enc = EncodedCorpus::build(corpus, &spec)?;
        Self::train_encoded(&enc, include, cfg)
    }

    /// [`FewRunsPredictor::train`] on a prebuilt [`EncodedCorpus`] —
    /// produces a bit-identical model without recomputing profiles or
    /// encodings. The cache must cover `(n_profile_runs,
    /// profiles_per_benchmark)` windows and the target representation.
    ///
    /// # Errors
    /// Fails when `include` is empty or contains bad indices, or the
    /// cache is missing required entries.
    pub fn train_encoded(
        enc: &EncodedCorpus,
        include: &[usize],
        cfg: FewRunsConfig,
    ) -> Result<Self, StatsError> {
        if include.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "FewRunsPredictor::train",
                needed: 1,
                got: 0,
            });
        }
        let corpus = enc.corpus();
        let s = cfg.n_profile_runs;
        let windows = cfg.profiles_per_benchmark.max(1);
        let repr = cfg.repr.build();
        let mut x_rows: Vec<&[f64]> = Vec::with_capacity(include.len() * windows);
        let mut y_rows: Vec<&[f64]> = Vec::with_capacity(include.len() * windows);
        let mut groups: Vec<usize> = Vec::with_capacity(include.len() * windows);
        for &bi in include {
            if bi >= corpus.len() {
                return Err(StatsError::invalid("FewRunsPredictor::train", "bad index"));
            }
            let target = enc.target(cfg.repr, bi)?;
            for w in 0..windows {
                x_rows.push(enc.profile(s, bi, w)?);
                y_rows.push(target);
                groups.push(bi);
            }
        }
        let x = DenseMatrix::from_row_refs(&x_rows)?;
        let y = DenseMatrix::from_row_refs(&y_rows)?;
        // kNN runs on raw per-second features (see
        // `ModelKind::wants_standardization`).
        let (scaler, x) = if cfg.model.wants_standardization() {
            let mut sc = StandardScaler::new();
            let x = sc.fit_transform(&x)?;
            (Some(sc), x)
        } else {
            (None, x)
        };
        let data = Dataset::new(x, y, groups)?;
        let mut model = cfg.model.build_fitted(cfg.seed);
        model.regressor_mut().fit(&data)?;
        Ok(FewRunsPredictor {
            repr,
            model,
            scaler,
            cfg,
            n_metrics: corpus.n_metrics(),
        })
    }

    /// The configuration this predictor was trained with.
    pub fn config(&self) -> &FewRunsConfig {
        &self.cfg
    }

    /// Metric count of the training corpus.
    pub fn n_metrics(&self) -> usize {
        self.n_metrics
    }

    /// Extracts the predictor's serializable state (for the model
    /// registry).
    pub fn to_artifact(&self) -> FewRunsArtifact {
        FewRunsArtifact {
            config: self.cfg,
            model: self.model.clone(),
            scaler: self.scaler.clone(),
            n_metrics: self.n_metrics,
        }
    }

    /// Reconstructs a predictor from its serialized state. The result
    /// predicts bit-identically to the predictor the artifact was taken
    /// from.
    ///
    /// # Errors
    /// Fails when the fitted model's kind disagrees with the config.
    pub fn from_artifact(artifact: FewRunsArtifact) -> Result<Self, StatsError> {
        if artifact.model.kind() != artifact.config.model {
            return Err(StatsError::invalid(
                "FewRunsPredictor::from_artifact",
                format!(
                    "artifact model is {}, config says {}",
                    artifact.model.kind().name(),
                    artifact.config.model.name()
                ),
            ));
        }
        Ok(FewRunsPredictor {
            repr: artifact.config.repr.build(),
            model: artifact.model,
            scaler: artifact.scaler,
            cfg: artifact.config,
            n_metrics: artifact.n_metrics,
        })
    }

    /// Predicts the representation feature vector from the first
    /// `n_profile_runs` runs of `runs`.
    ///
    /// # Errors
    /// Fails when fewer runs are supplied than the profile needs.
    pub fn predict_features(&self, runs: &RunSet) -> Result<Vec<f64>, StatsError> {
        let p = Profile::from_runs(runs, self.cfg.n_profile_runs)?;
        self.predict_features_profile(&p)
    }

    /// Predicts the representation feature vector from a prebuilt
    /// [`Profile`] — the serving path, where the client ships the profile
    /// instead of raw runs.
    ///
    /// # Errors
    /// Fails when the profile's metric count or feature length disagrees
    /// with what the model was trained on.
    pub fn predict_features_profile(&self, profile: &Profile) -> Result<Vec<f64>, StatsError> {
        if profile.n_metrics != self.n_metrics {
            return Err(StatsError::invalid(
                "FewRunsPredictor::predict",
                format!(
                    "profile has {} metrics, model expects {}",
                    profile.n_metrics, self.n_metrics
                ),
            ));
        }
        let dim = Profile::feature_dim(self.n_metrics, self.cfg.n_profile_runs);
        if profile.features.len() != dim {
            return Err(StatsError::invalid(
                "FewRunsPredictor::predict",
                format!(
                    "profile has {} features, model expects {dim}",
                    profile.features.len()
                ),
            ));
        }
        let mut features = profile.features.clone();
        if let Some(sc) = &self.scaler {
            sc.transform_row(&mut features)?;
        }
        self.model.regressor().predict(&features)
    }

    /// Predicts and reconstructs the distribution as `n_samples` relative
    /// times.
    ///
    /// # Errors
    /// Propagates prediction/decoding failures.
    pub fn predict_distribution(
        &self,
        runs: &RunSet,
        n_samples: usize,
        sample_seed: u64,
    ) -> Result<Vec<f64>, StatsError> {
        let p = Profile::from_runs(runs, self.cfg.n_profile_runs)?;
        self.predict_distribution_profile(&p, n_samples, sample_seed)
    }

    /// [`Self::predict_distribution`] from a prebuilt [`Profile`].
    ///
    /// # Errors
    /// Propagates prediction/decoding failures.
    pub fn predict_distribution_profile(
        &self,
        profile: &Profile,
        n_samples: usize,
        sample_seed: u64,
    ) -> Result<Vec<f64>, StatsError> {
        let f = self.predict_features_profile(profile)?;
        self.decode_features(&f, n_samples, sample_seed)
    }

    /// Reconstructs `n_samples` relative times from an
    /// already-predicted representation vector — lets a caller that
    /// needs both the vector and the samples predict once.
    ///
    /// # Errors
    /// Propagates decoding failures.
    pub fn decode_features(
        &self,
        features: &[f64],
        n_samples: usize,
        sample_seed: u64,
    ) -> Result<Vec<f64>, StatsError> {
        let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(self.cfg.seed, sample_seed));
        self.repr.decode(features, &mut rng, n_samples)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_stats::ks::ks2_statistic;
    use pv_sysmodel::SystemModel;

    fn small_corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 60, 5)
    }

    fn cfg() -> FewRunsConfig {
        FewRunsConfig {
            n_profile_runs: 5,
            profiles_per_benchmark: 4,
            ..FewRunsConfig::default()
        }
    }

    #[test]
    fn trains_and_predicts_in_sample() {
        let corpus = small_corpus();
        let all: Vec<usize> = (0..corpus.len()).collect();
        let p = FewRunsPredictor::train(&corpus, &all, cfg()).unwrap();
        // Predicting a benchmark it trained on should be decent.
        let bench = &corpus.benchmarks[0];
        let pred = p.predict_distribution(&bench.runs, 1000, 1).unwrap();
        let ks = ks2_statistic(&pred, &bench.runs.rel_times()).unwrap();
        assert!(ks < 0.6, "in-sample KS = {ks}");
        assert_eq!(pred.len(), 1000);
    }

    #[test]
    fn held_out_prediction_beats_trivial_guess_on_average() {
        let corpus = small_corpus();
        // Hold out benchmark 0; train on the rest.
        let include: Vec<usize> = (1..corpus.len()).collect();
        let p = FewRunsPredictor::train(&corpus, &include, cfg()).unwrap();
        let bench = &corpus.benchmarks[0];
        let pred = p.predict_distribution(&bench.runs, 1000, 2).unwrap();
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prediction_is_deterministic() {
        let corpus = small_corpus();
        let all: Vec<usize> = (0..corpus.len()).collect();
        let p = FewRunsPredictor::train(&corpus, &all, cfg()).unwrap();
        let a = p
            .predict_distribution(&corpus.benchmarks[3].runs, 100, 9)
            .unwrap();
        let b = p
            .predict_distribution(&corpus.benchmarks[3].runs, 100, 9)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn train_encoded_matches_train() {
        let corpus = small_corpus();
        let include: Vec<usize> = (1..corpus.len()).collect();
        let spec = EncodingSpec::new()
            .profiles(5, 4)
            .target(ReprKind::PearsonRnd);
        let enc = EncodedCorpus::build(&corpus, &spec).unwrap();
        let a = FewRunsPredictor::train(&corpus, &include, cfg()).unwrap();
        let b = FewRunsPredictor::train_encoded(&enc, &include, cfg()).unwrap();
        let pa = a
            .predict_distribution(&corpus.benchmarks[0].runs, 500, 7)
            .unwrap();
        let pb = b
            .predict_distribution(&corpus.benchmarks[0].runs, 500, 7)
            .unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn invalid_configurations_error() {
        let corpus = small_corpus();
        let all: Vec<usize> = (0..corpus.len()).collect();
        assert!(FewRunsPredictor::train(&corpus, &[], cfg()).is_err());
        let mut bad = cfg();
        bad.n_profile_runs = 0;
        assert!(FewRunsPredictor::train(&corpus, &all, bad).is_err());
        let mut too_big = cfg();
        too_big.n_profile_runs = 100; // 4 × 100 > 60 runs
        assert!(FewRunsPredictor::train(&corpus, &all, too_big).is_err());
    }

    #[test]
    fn single_run_profiles_work() {
        let corpus = small_corpus();
        let all: Vec<usize> = (0..corpus.len()).collect();
        let mut c = cfg();
        c.n_profile_runs = 1;
        let p = FewRunsPredictor::train(&corpus, &all, c).unwrap();
        let pred = p
            .predict_distribution(&corpus.benchmarks[7].runs, 200, 3)
            .unwrap();
        assert_eq!(pred.len(), 200);
    }

    #[test]
    fn all_repr_model_combinations_train() {
        let corpus = small_corpus();
        let include: Vec<usize> = (0..corpus.len()).collect();
        for repr in ReprKind::ALL {
            for model in ModelKind::ALL {
                let c = FewRunsConfig {
                    repr,
                    model,
                    n_profile_runs: 5,
                    profiles_per_benchmark: 2,
                    seed: 1,
                };
                let p = FewRunsPredictor::train(&corpus, &include, c).unwrap();
                let pred = p
                    .predict_distribution(&corpus.benchmarks[1].runs, 100, 4)
                    .unwrap();
                assert_eq!(pred.len(), 100, "{} × {}", repr.name(), model.name());
            }
        }
    }
}
