//! On-disk registry of trained model artifacts.
//!
//! The evaluation layer re-trains a model for every fold of every cell;
//! serving must not. This module persists *fitted* predictors — model
//! state, scaler moments, and the config that produced them — as
//! integrity-sealed entries keyed by the same fingerprint scheme as the
//! cell cache: `(corpus fingerprint, CellConfig)` hashed with FNV-1a.
//! A registry directory is the deployable unit the `pv-serve` daemon
//! loads at startup.
//!
//! Unlike the cell cache — where any unreadable entry is silently a
//! miss, because recomputing a summary is always safe — registry loads
//! return **typed errors**: serving a vandalized model silently would be
//! a correctness bug, so corruption surfaces as [`PvError::Invalid`]
//! and environmental failures as [`PvError::CacheIo`]. The
//! [`ModelRegistry::ensure_few_runs`]/[`ModelRegistry::ensure_cross_system`]
//! helpers implement the `repro train` heal policy on top: a verified
//! entry is reused bit-identically, anything else is re-fit and
//! re-sealed.

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use pv_stats::fingerprint::Fnv1a;
use pv_stats::StatsError;
use pv_sysmodel::Corpus;

use crate::pipeline::corpus_fingerprint;
use crate::resilience::PvError;
use crate::sweep::{cross_fingerprint, CellConfig};
use crate::usecase1::{FewRunsArtifact, FewRunsConfig, FewRunsPredictor};
use crate::usecase2::{CrossSystemArtifact, CrossSystemConfig, CrossSystemPredictor};

/// Registry entry format version. Bump on any change to the sealed
/// entry layout or the artifact schema; stale-version entries are
/// rejected (and healed by `repro train`), never reinterpreted.
/// (v2: the vectorized kernel layer — kNN models gained the f32
/// prescreen fields, tree models default to binned splits, and artifact
/// keys carry the tree-kernel tag.)
pub const REGISTRY_VERSION: u32 = 2;

/// The observability counters the registry emits.
pub const REGISTRY_OBS_COUNTERS: &[&str] = &[
    "pv.core.registry.load",
    "pv.core.registry.store",
    "pv.core.registry.train",
    "pv.core.registry.verify_fail",
];

/// A fitted predictor in serializable form — the payload of a registry
/// entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Artifact {
    /// A use-case-1 (few-runs, same system) predictor.
    FewRuns(FewRunsArtifact),
    /// A use-case-2 (cross-system) predictor.
    CrossSystem(CrossSystemArtifact),
}

impl Artifact {
    /// The cell config this artifact was trained under — the half of
    /// the registry key that isn't the corpus fingerprint.
    pub fn config(&self) -> CellConfig {
        match self {
            Artifact::FewRuns(a) => CellConfig::FewRuns(a.config),
            Artifact::CrossSystem(a) => CellConfig::CrossSystem(a.config),
        }
    }

    /// The kind of model this artifact holds, as a display name.
    pub fn model_name(&self) -> &'static str {
        self.config().model().name()
    }
}

/// The registry key of an artifact: FNV-1a over a domain tag, the entry
/// format version, the corpus fingerprint, and the config's canonical
/// JSON — the cell cache's `cell_key` scheme under a serving-specific
/// domain so registry and cache entries can never collide.
///
/// For use case 2 pass [`cross_fingerprint`]`(src, dst)` as the
/// fingerprint, exactly as the sweep layer keys its cross-system cells.
///
/// # Errors
/// Fails when the config cannot be serialized (never happens for the
/// shipped config types).
pub fn artifact_key(fingerprint: u64, cfg: &CellConfig) -> Result<u64, StatsError> {
    let json = serde_json::to_string(cfg)
        .map_err(|e| StatsError::invalid("artifact_key", format!("serialize config: {e}")))?;
    let mut h = Fnv1a::new();
    h.write_str("pv-registry");
    h.write_u64(REGISTRY_VERSION as u64);
    h.write_u64(fingerprint);
    // Binned vs exact tree splits produce different fitted models; a
    // `PV_EXACT_TREES` run must never serve a default run's artifacts.
    h.write_str(crate::model::tree_kernel_tag());
    h.write_str(&json);
    Ok(h.finish())
}

/// Integrity digest of a sealed entry's payload bytes.
fn payload_checksum(payload: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("pv-registry-seal");
    h.write_str(payload);
    h.finish()
}

/// What a registry file holds: the artifact as a verbatim JSON string,
/// sealed by a checksum over exactly those bytes, plus the key
/// components so a load verifies *what* it got, not just that it
/// parsed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SealedEntry {
    version: u32,
    fingerprint: u64,
    config: CellConfig,
    checksum: u64,
    payload: String,
}

/// A verified artifact together with its registry identity — what
/// `pv-serve` indexes its model table by.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The registry key (`model-<key:016x>.json`).
    pub key: u64,
    /// Corpus fingerprint the model was trained on (for use case 2, the
    /// [`cross_fingerprint`] of the pair).
    pub fingerprint: u64,
    /// The fitted predictor state.
    pub artifact: Artifact,
}

/// A serde-backed on-disk registry of trained models.
///
/// Writes go through a temp file in the same directory followed by an
/// atomic rename, so concurrent trainers and a running daemon never
/// observe partial entries.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// A registry rooted at `dir`. The directory is created on first
    /// store. Stale temp files leaked by crashed writers are swept on
    /// open (see [`crate::resilience::sweep_stale_temps`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        crate::resilience::sweep_stale_temps(&dir);
        ModelRegistry { dir }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of an entry.
    ///
    /// # Errors
    /// Propagates [`artifact_key`] failures.
    pub fn entry_path(&self, fingerprint: u64, cfg: &CellConfig) -> Result<PathBuf, PvError> {
        let key = artifact_key(fingerprint, cfg)?;
        Ok(self.key_path(key))
    }

    fn key_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("model-{key:016x}.json"))
    }

    /// Every registry key currently on disk, ascending. Files that
    /// merely *look* like entries are listed; verification happens at
    /// [`Self::load_key`] time.
    pub fn keys(&self) -> Vec<u64> {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys: Vec<u64> = read
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                let hex = name.strip_prefix("model-")?.strip_suffix(".json")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Persists a fitted artifact under `(fingerprint, config)` and
    /// returns its registry key.
    ///
    /// # Errors
    /// [`PvError::CacheIo`] on filesystem failure, [`PvError::Invalid`]
    /// when the artifact cannot be serialized.
    pub fn store(&self, fingerprint: u64, artifact: &Artifact) -> Result<u64, PvError> {
        let config = artifact.config();
        let key = artifact_key(fingerprint, &config)?;
        let path = self.key_path(key);
        fs::create_dir_all(&self.dir).map_err(|e| PvError::CacheIo {
            what: "ModelRegistry::store".into(),
            detail: format!("create {}: {e}", self.dir.display()),
        })?;
        let payload = serde_json::to_string(artifact).map_err(|e| PvError::Invalid {
            what: "ModelRegistry::store".into(),
            detail: format!("serialize artifact: {e}"),
        })?;
        let entry = SealedEntry {
            version: REGISTRY_VERSION,
            fingerprint,
            config,
            checksum: payload_checksum(&payload),
            payload,
        };
        let json = serde_json::to_string(&entry).map_err(|e| PvError::Invalid {
            what: "ModelRegistry::store".into(),
            detail: format!("serialize entry: {e}"),
        })?;
        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        fs::write(&tmp, json).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            PvError::CacheIo {
                what: "ModelRegistry::store".into(),
                detail: format!("write {}: {e}", tmp.display()),
            }
        })?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            PvError::CacheIo {
                what: "ModelRegistry::store".into(),
                detail: format!("rename {}: {e}", path.display()),
            }
        })?;
        pv_obs::counter_inc!("pv.core.registry.store");
        Ok(key)
    }

    /// Loads and verifies the artifact sealed under `(fingerprint,
    /// config)`.
    ///
    /// # Errors
    /// [`PvError::CacheIo`] when the entry is missing or unreadable;
    /// [`PvError::Invalid`] when it exists but fails verification
    /// (unparsable, stale version, wrong fingerprint/config, checksum
    /// mismatch).
    pub fn load(&self, fingerprint: u64, cfg: &CellConfig) -> Result<Artifact, PvError> {
        let key = artifact_key(fingerprint, cfg)?;
        let entry = self.load_key(key)?;
        if entry.fingerprint != fingerprint || entry.artifact.config() != *cfg {
            pv_obs::counter_inc!("pv.core.registry.verify_fail");
            return Err(PvError::Invalid {
                what: "ModelRegistry::load".into(),
                detail: "entry is sealed for a different corpus or config".into(),
            });
        }
        Ok(entry.artifact)
    }

    /// Loads and verifies the entry stored under `key`.
    ///
    /// # Errors
    /// Same contract as [`Self::load`].
    pub fn load_key(&self, key: u64) -> Result<RegistryEntry, PvError> {
        let path = self.key_path(key);
        let text = fs::read_to_string(&path).map_err(|e| {
            let detail = if e.kind() == ErrorKind::NotFound {
                format!("no entry {}", path.display())
            } else {
                format!("read {}: {e}", path.display())
            };
            PvError::CacheIo {
                what: "ModelRegistry::load".into(),
                detail,
            }
        })?;
        let invalid = |detail: String| {
            pv_obs::counter_inc!("pv.core.registry.verify_fail");
            PvError::Invalid {
                what: "ModelRegistry::load".into(),
                detail,
            }
        };
        let entry = serde_json::from_str::<SealedEntry>(&text)
            .map_err(|e| invalid(format!("unparsable entry {}: {e}", path.display())))?;
        if entry.version != REGISTRY_VERSION {
            return Err(invalid(format!(
                "entry version {} != registry version {REGISTRY_VERSION}",
                entry.version
            )));
        }
        if entry.checksum != payload_checksum(&entry.payload) {
            return Err(invalid("payload checksum mismatch".into()));
        }
        let artifact = serde_json::from_str::<Artifact>(&entry.payload)
            .map_err(|e| invalid(format!("unparsable artifact payload: {e}")))?;
        if artifact.config() != entry.config {
            return Err(invalid(
                "payload config disagrees with sealed config".into(),
            ));
        }
        if artifact_key(entry.fingerprint, &entry.config)? != key {
            return Err(invalid("entry key disagrees with sealed identity".into()));
        }
        pv_obs::counter_inc!("pv.core.registry.load");
        Ok(RegistryEntry {
            key,
            fingerprint: entry.fingerprint,
            artifact,
        })
    }

    /// Loads and verifies every entry in the registry, ascending by
    /// key — the daemon's startup path.
    ///
    /// # Errors
    /// Fails on the first entry that exists but does not verify (a
    /// serving directory must be wholly trustworthy, not best-effort).
    pub fn load_all(&self) -> Result<Vec<RegistryEntry>, PvError> {
        self.keys().into_iter().map(|k| self.load_key(k)).collect()
    }

    /// A verified few-runs predictor for `(corpus, cfg)`: reused from
    /// the registry when a sealed entry verifies, otherwise trained on
    /// the full corpus, stored, and returned. The boolean is `true` when
    /// a (re-)fit happened — corrupt or stale entries are healed, not
    /// fatal.
    ///
    /// # Errors
    /// Propagates training and store failures.
    pub fn ensure_few_runs(
        &self,
        corpus: &Corpus,
        cfg: FewRunsConfig,
    ) -> Result<(FewRunsPredictor, bool), PvError> {
        let fingerprint = corpus_fingerprint(corpus);
        let cell = CellConfig::FewRuns(cfg);
        if let Ok(Artifact::FewRuns(a)) = self.load(fingerprint, &cell) {
            return Ok((FewRunsPredictor::from_artifact(a)?, false));
        }
        pv_obs::counter_inc!("pv.core.registry.train");
        let include: Vec<usize> = (0..corpus.len()).collect();
        let predictor = FewRunsPredictor::train(corpus, &include, cfg)?;
        self.store(fingerprint, &Artifact::FewRuns(predictor.to_artifact()))?;
        Ok((predictor, true))
    }

    /// [`Self::ensure_few_runs`] for a cross-system pair, keyed by
    /// [`cross_fingerprint`]`(src, dst)`.
    ///
    /// # Errors
    /// Propagates training and store failures.
    pub fn ensure_cross_system(
        &self,
        src: &Corpus,
        dst: &Corpus,
        cfg: CrossSystemConfig,
    ) -> Result<(CrossSystemPredictor, bool), PvError> {
        let fingerprint = cross_fingerprint(corpus_fingerprint(src), corpus_fingerprint(dst));
        let cell = CellConfig::CrossSystem(cfg);
        if let Ok(Artifact::CrossSystem(a)) = self.load(fingerprint, &cell) {
            return Ok((CrossSystemPredictor::from_artifact(a)?, false));
        }
        pv_obs::counter_inc!("pv.core.registry.train");
        let include: Vec<usize> = (0..src.len().min(dst.len())).collect();
        let predictor = CrossSystemPredictor::train(src, dst, &include, cfg)?;
        self.store(fingerprint, &Artifact::CrossSystem(predictor.to_artifact()))?;
        Ok((predictor, true))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_sysmodel::SystemModel;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pv-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 40, 5)
    }

    fn cfg() -> FewRunsConfig {
        FewRunsConfig {
            n_profile_runs: 5,
            profiles_per_benchmark: 2,
            ..FewRunsConfig::default()
        }
    }

    #[test]
    fn store_load_round_trip_preserves_prediction_bits() {
        let dir = tmp_dir("round-trip");
        let reg = ModelRegistry::new(&dir);
        let corpus = small_corpus();
        let include: Vec<usize> = (0..corpus.len()).collect();
        let trained = FewRunsPredictor::train(&corpus, &include, cfg()).unwrap();
        let fp = corpus_fingerprint(&corpus);
        let key = reg
            .store(fp, &Artifact::FewRuns(trained.to_artifact()))
            .unwrap();
        assert_eq!(reg.keys(), vec![key]);
        let loaded = match reg.load(fp, &CellConfig::FewRuns(cfg())).unwrap() {
            Artifact::FewRuns(a) => FewRunsPredictor::from_artifact(a).unwrap(),
            other => panic!("wrong artifact kind: {}", other.model_name()),
        };
        let runs = &corpus.benchmarks[0].runs;
        assert_eq!(
            trained.predict_distribution(runs, 300, 7).unwrap(),
            loaded.predict_distribution(runs, 300, 7).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_typed_cache_io() {
        let dir = tmp_dir("missing");
        let reg = ModelRegistry::new(&dir);
        let err = reg
            .load(1, &CellConfig::FewRuns(cfg()))
            .expect_err("empty registry must miss");
        assert_eq!(err.kind(), "cache-io");
    }

    #[test]
    fn ensure_trains_once_then_reuses() {
        let dir = tmp_dir("ensure");
        let reg = ModelRegistry::new(&dir);
        let corpus = small_corpus();
        let (first, trained) = reg.ensure_few_runs(&corpus, cfg()).unwrap();
        assert!(trained);
        let (second, trained_again) = reg.ensure_few_runs(&corpus, cfg()).unwrap();
        assert!(!trained_again);
        let runs = &corpus.benchmarks[3].runs;
        assert_eq!(
            first.predict_distribution(runs, 200, 1).unwrap(),
            second.predict_distribution(runs, 200, 1).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_store_leaves_no_temp_files_behind() {
        let dir = tmp_dir("no-temp-leak");
        let reg = ModelRegistry::new(&dir);
        let corpus = small_corpus();
        let include: Vec<usize> = (0..corpus.len()).collect();
        let trained = FewRunsPredictor::train(&corpus, &include, cfg()).unwrap();
        let artifact = Artifact::FewRuns(trained.to_artifact());
        let fp = corpus_fingerprint(&corpus);
        // Force the rename to fail: a directory squats on the entry path.
        let path = reg.entry_path(fp, &CellConfig::FewRuns(cfg())).unwrap();
        fs::create_dir_all(path.join("squatter")).unwrap();
        let err = reg.store(fp, &artifact).expect_err("rename must fail");
        assert_eq!(err.kind(), "cache-io");
        let leaked: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leaked.is_empty(), "leaked temps: {leaked:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_a_registry_sweeps_stale_temps() {
        let dir = tmp_dir("startup-sweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("model-00000000000000aa.json.tmp.999999999");
        fs::write(&stale, "{").unwrap();
        let _reg = ModelRegistry::new(&dir);
        assert!(!stale.exists(), "stale temp must be swept at open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_and_cell_cache_keys_never_collide() {
        // Same fingerprint, same config — different domains.
        let cell = CellConfig::FewRuns(cfg());
        assert_ne!(
            artifact_key(42, &cell).unwrap(),
            crate::sweep::cell_key(42, &cell).unwrap()
        );
    }
}
