//! Config-grid sweep service with cached cells.
//!
//! The paper's evaluation is inherently a grid — representations ×
//! models × profile sample counts (× seeds), scored by LOGO/KS — and the
//! [`pipeline`](crate::pipeline) layer already lets every cell of such a
//! grid share one [`EncodedCorpus`]. This module turns the grid into a
//! service:
//!
//! * [`GridSpec`] declares the axes; it expands into [`CellConfig`]s in
//!   a fixed deterministic order and derives the [`EncodingSpec`]s that
//!   cover every cell, so one encode pass serves the whole sweep.
//! * [`Sweep`] schedules the cells across the rayon worker pool over the
//!   shared cache(s), streaming each [`CellResult`] to a callback the
//!   moment it finishes and returning all of them (cell order, not
//!   completion order) in a [`SweepReport`].
//! * [`CellCache`] persists completed cells to disk, keyed by
//!   `(corpus fingerprint, cell config)`. Re-running a widened grid
//!   loads the old cells and computes only the delta; a stale or
//!   corrupted file fails its fingerprint/config check and is recomputed
//!   rather than trusted.
//!
//! Cached results are bit-identical to fresh ones: every cell evaluation
//! is a pure function of (corpus, config) independent of thread count
//! ([`FoldRunner`](crate::pipeline::FoldRunner)'s guarantee), the
//! [`corpus_fingerprint`] pins the corpus bit-exactly, and the JSON
//! round-trip preserves every `f64` (shortest-round-trip formatting).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pv_stats::fingerprint::Fnv1a;
use pv_stats::StatsError;
use pv_sysmodel::Corpus;

use crate::eval::{
    cross_system_specs, evaluate_cross_system_encoded, evaluate_few_runs_encoded, few_runs_spec,
    EvalSummary,
};
use crate::model::ModelKind;
use crate::pipeline::{corpus_fingerprint, EncodedCorpus, EncodingSpec};
use crate::repr::ReprKind;
use crate::usecase1::FewRunsConfig;
use crate::usecase2::CrossSystemConfig;

/// Version tag baked into every cache entry; bump on any change to the
/// cell layout or evaluation semantics to orphan old entries.
const CACHE_VERSION: u32 = 1;

/// A declarative config grid: the cross product of the four axes.
///
/// Expansion order is fixed — seeds, then sample counts, then
/// representations, then models, each axis in declaration order with
/// duplicates dropped — so the same spec always yields the same cell
/// list, which is what makes streamed results comparable across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Distribution representations to sweep.
    pub reprs: Vec<ReprKind>,
    /// Regression models to sweep.
    pub models: Vec<ModelKind>,
    /// Profile sample counts: `n_profile_runs` for use case 1,
    /// `profile_runs` for use case 2.
    pub sample_counts: Vec<usize>,
    /// Root seeds to sweep.
    pub seeds: Vec<u64>,
    /// Training profile windows per benchmark (use case 1 only).
    pub profiles_per_benchmark: usize,
}

impl Default for GridSpec {
    /// The paper's headline grid: all representations × all models at
    /// ten profile runs, one window per benchmark, campaign seed.
    fn default() -> Self {
        GridSpec {
            reprs: ReprKind::ALL.to_vec(),
            models: ModelKind::ALL.to_vec(),
            sample_counts: vec![10],
            seeds: vec![FewRunsConfig::default().seed],
            profiles_per_benchmark: 1,
        }
    }
}

/// Deduplicates while preserving first-occurrence order.
fn dedup_in_order<T: PartialEq + Copy>(xs: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(xs.len());
    for &x in xs {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}

impl GridSpec {
    /// Whether any axis is empty (the grid expands to no cells).
    pub fn is_degenerate(&self) -> bool {
        self.reprs.is_empty()
            || self.models.is_empty()
            || self.sample_counts.is_empty()
            || self.seeds.is_empty()
    }

    /// Expands the grid into use-case-1 cell configs.
    pub fn few_runs_cells(&self) -> Vec<FewRunsConfig> {
        let mut cells = Vec::new();
        for &seed in &dedup_in_order(&self.seeds) {
            for &s in &dedup_in_order(&self.sample_counts) {
                for &repr in &dedup_in_order(&self.reprs) {
                    for &model in &dedup_in_order(&self.models) {
                        cells.push(FewRunsConfig {
                            repr,
                            model,
                            n_profile_runs: s,
                            profiles_per_benchmark: self.profiles_per_benchmark.max(1),
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Expands the grid into use-case-2 cell configs.
    pub fn cross_system_cells(&self) -> Vec<CrossSystemConfig> {
        let mut cells = Vec::new();
        for &seed in &dedup_in_order(&self.seeds) {
            for &s in &dedup_in_order(&self.sample_counts) {
                for &repr in &dedup_in_order(&self.reprs) {
                    for &model in &dedup_in_order(&self.models) {
                        cells.push(CrossSystemConfig {
                            repr,
                            model,
                            profile_runs: s,
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The encoding spec covering every use-case-1 cell of this grid.
    pub fn few_runs_encoding(&self) -> EncodingSpec {
        // The spec builder is idempotent, so merging per-cell specs
        // unions coverage instead of accumulating duplicates.
        self.few_runs_cells()
            .iter()
            .fold(EncodingSpec::new(), |spec, cfg| {
                spec.merge(&few_runs_spec(cfg))
            })
    }

    /// The (source, destination) encoding specs covering every
    /// use-case-2 cell of this grid. `src` is needed to clamp profile
    /// windows to the source corpus' run count, exactly as evaluation
    /// does.
    pub fn cross_system_encoding(&self, src: &Corpus) -> (EncodingSpec, EncodingSpec) {
        self.cross_system_cells().iter().fold(
            (EncodingSpec::new(), EncodingSpec::new()),
            |(src_spec, dst_spec), cfg| {
                let (s, d) = cross_system_specs(src, cfg);
                (src_spec.merge(&s), dst_spec.merge(&d))
            },
        )
    }
}

/// One cell of a sweep: which evaluation to run with which config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellConfig {
    /// A use-case-1 (few-runs, same system) evaluation.
    FewRuns(FewRunsConfig),
    /// A use-case-2 (cross-system) evaluation.
    CrossSystem(CrossSystemConfig),
}

impl CellConfig {
    /// The cell's representation axis value.
    pub fn repr(&self) -> ReprKind {
        match self {
            CellConfig::FewRuns(c) => c.repr,
            CellConfig::CrossSystem(c) => c.repr,
        }
    }

    /// The cell's model axis value.
    pub fn model(&self) -> ModelKind {
        match self {
            CellConfig::FewRuns(c) => c.model,
            CellConfig::CrossSystem(c) => c.model,
        }
    }

    /// The cell's sample-count axis value.
    pub fn sample_count(&self) -> usize {
        match self {
            CellConfig::FewRuns(c) => c.n_profile_runs,
            CellConfig::CrossSystem(c) => c.profile_runs,
        }
    }

    /// The cell's seed axis value.
    pub fn seed(&self) -> u64 {
        match self {
            CellConfig::FewRuns(c) => c.seed,
            CellConfig::CrossSystem(c) => c.seed,
        }
    }

    /// A compact human-readable label, e.g.
    /// `uc1 PearsonRnd+kNN s=10 seed=0xc0ffee`.
    pub fn label(&self) -> String {
        let uc = match self {
            CellConfig::FewRuns(_) => "uc1",
            CellConfig::CrossSystem(_) => "uc2",
        };
        format!(
            "{uc} {}+{} s={} seed={:#x}",
            self.repr().name(),
            self.model().name(),
            self.sample_count(),
            self.seed(),
        )
    }
}

/// The stable on-disk key of a cell: FNV-1a over the corpus fingerprint
/// and the cell config's canonical JSON form.
///
/// # Errors
/// Fails when the config cannot be serialized (never happens for the
/// shipped config types).
pub fn cell_key(fingerprint: u64, cfg: &CellConfig) -> Result<u64, StatsError> {
    let json = serde_json::to_string(cfg)
        .map_err(|e| StatsError::invalid("cell_key", format!("serialize config: {e}")))?;
    let mut h = Fnv1a::new();
    h.write_u64(CACHE_VERSION as u64);
    h.write_u64(fingerprint);
    h.write_str(&json);
    Ok(h.finish())
}

/// What a cell cache file holds. The fingerprint and config are stored
/// alongside the summary so a hit can be *verified*, not assumed: a file
/// that fails to parse, carries another corpus' fingerprint, or holds a
/// different config (hash collision, hand-edited file) is treated as a
/// miss and recomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CachedCell {
    version: u32,
    fingerprint: u64,
    config: CellConfig,
    summary: EvalSummary,
}

/// A serde-backed on-disk cache of completed sweep cells.
///
/// Layout: one JSON file per cell, `cell-<key:016x>.json` under the
/// cache directory, where the key is [`cell_key`]. Writes go through a
/// temp file + rename, so concurrent sweeps sharing a directory never
/// observe partial entries.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// A cache rooted at `dir`. The directory is created on first store.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CellCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of a cell entry.
    ///
    /// # Errors
    /// Propagates [`cell_key`] failures.
    pub fn entry_path(&self, fingerprint: u64, cfg: &CellConfig) -> Result<PathBuf, StatsError> {
        let key = cell_key(fingerprint, cfg)?;
        Ok(self.dir.join(format!("cell-{key:016x}.json")))
    }

    /// Number of cell entries currently on disk.
    pub fn entries(&self) -> usize {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return 0;
        };
        read.filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("cell-") && name.ends_with(".json")
            })
            .count()
    }

    /// Loads a cell if a verified entry exists.
    ///
    /// Any failure — missing file, unparsable JSON, version/fingerprint/
    /// config mismatch — is a miss, never an error: the cache must be
    /// safe to point at a stale or vandalized directory.
    pub fn load(&self, fingerprint: u64, cfg: &CellConfig) -> Option<EvalSummary> {
        let path = self.entry_path(fingerprint, cfg).ok()?;
        let text = fs::read_to_string(path).ok()?;
        let cell: CachedCell = serde_json::from_str(&text).ok()?;
        (cell.version == CACHE_VERSION && cell.fingerprint == fingerprint && cell.config == *cfg)
            .then_some(cell.summary)
    }

    /// Persists a completed cell.
    ///
    /// # Errors
    /// Fails on filesystem errors (unwritable directory, disk full).
    pub fn store(
        &self,
        fingerprint: u64,
        cfg: &CellConfig,
        summary: &EvalSummary,
    ) -> Result<(), StatsError> {
        let path = self.entry_path(fingerprint, cfg)?;
        fs::create_dir_all(&self.dir).map_err(|e| {
            StatsError::invalid(
                "CellCache::store",
                format!("create {}: {e}", self.dir.display()),
            )
        })?;
        let cell = CachedCell {
            version: CACHE_VERSION,
            fingerprint,
            config: *cfg,
            summary: summary.clone(),
        };
        let json = serde_json::to_string(&cell)
            .map_err(|e| StatsError::invalid("CellCache::store", format!("serialize: {e}")))?;
        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        fs::write(&tmp, json).map_err(|e| {
            StatsError::invalid("CellCache::store", format!("write {}: {e}", tmp.display()))
        })?;
        fs::rename(&tmp, &path).map_err(|e| {
            StatsError::invalid(
                "CellCache::store",
                format!("rename {}: {e}", path.display()),
            )
        })?;
        Ok(())
    }
}

/// What a sweep evaluates its cells against.
pub enum SweepTarget<'a, 'c> {
    /// Use case 1 over one encoded corpus.
    FewRuns(&'a EncodedCorpus<'c>),
    /// Use case 2, source → destination.
    CrossSystem {
        /// The (encoded) corpus measured on the source system.
        src: &'a EncodedCorpus<'c>,
        /// The (encoded) corpus measured on the destination system.
        dst: &'a EncodedCorpus<'c>,
    },
}

/// One finished cell, streamed to the callback as it completes and
/// collected (in cell order) into the [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellResult {
    /// Position in the grid's deterministic cell order.
    pub index: usize,
    /// The cell's configuration.
    pub config: CellConfig,
    /// The cell's evaluation result.
    pub summary: EvalSummary,
    /// Whether the summary was loaded from the cache.
    pub from_cache: bool,
}

/// Everything a sweep run produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// The corpus fingerprint the cells were keyed under.
    pub fingerprint: u64,
    /// All cells, in grid order (not completion order).
    pub cells: Vec<CellResult>,
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells computed (and, with a cache attached, persisted).
    pub misses: usize,
}

/// The sweep service: a target plus an optional cell cache.
pub struct Sweep<'a, 'c> {
    target: SweepTarget<'a, 'c>,
    cache: Option<CellCache>,
}

impl<'a, 'c> Sweep<'a, 'c> {
    /// A use-case-1 sweep over `enc`.
    pub fn few_runs(enc: &'a EncodedCorpus<'c>) -> Self {
        Sweep {
            target: SweepTarget::FewRuns(enc),
            cache: None,
        }
    }

    /// A use-case-2 sweep, `src` → `dst`.
    pub fn cross_system(src: &'a EncodedCorpus<'c>, dst: &'a EncodedCorpus<'c>) -> Self {
        Sweep {
            target: SweepTarget::CrossSystem { src, dst },
            cache: None,
        }
    }

    /// Attaches an on-disk cell cache.
    pub fn with_cache(mut self, cache: CellCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&CellCache> {
        self.cache.as_ref()
    }

    /// The fingerprint cells are keyed under: the corpus fingerprint for
    /// use case 1, a combination of both corpora's for use case 2.
    pub fn fingerprint(&self) -> u64 {
        match &self.target {
            SweepTarget::FewRuns(enc) => corpus_fingerprint(enc.corpus()),
            SweepTarget::CrossSystem { src, dst } => {
                let mut h = Fnv1a::new();
                h.write_str("pv-sweep-cross");
                h.write_u64(corpus_fingerprint(src.corpus()));
                h.write_u64(corpus_fingerprint(dst.corpus()));
                h.finish()
            }
        }
    }

    /// Expands `grid` into this target's cell list (deterministic
    /// order).
    pub fn cells(&self, grid: &GridSpec) -> Vec<CellConfig> {
        match &self.target {
            SweepTarget::FewRuns(_) => grid
                .few_runs_cells()
                .into_iter()
                .map(CellConfig::FewRuns)
                .collect(),
            SweepTarget::CrossSystem { .. } => grid
                .cross_system_cells()
                .into_iter()
                .map(CellConfig::CrossSystem)
                .collect(),
        }
    }

    /// Evaluates one cell from scratch on the shared encoded corpora.
    fn eval_cell(&self, cfg: &CellConfig) -> Result<EvalSummary, StatsError> {
        match (&self.target, cfg) {
            (SweepTarget::FewRuns(enc), CellConfig::FewRuns(c)) => {
                evaluate_few_runs_encoded(enc, *c)
            }
            (SweepTarget::CrossSystem { src, dst }, CellConfig::CrossSystem(c)) => {
                evaluate_cross_system_encoded(src, dst, *c)
            }
            _ => Err(StatsError::invalid(
                "Sweep::eval_cell",
                "cell config does not match the sweep target's use case",
            )),
        }
    }

    /// Runs the grid, discarding the stream.
    ///
    /// # Errors
    /// Propagates evaluation and cache-store failures from any cell.
    pub fn run(&self, grid: &GridSpec) -> Result<SweepReport, StatsError> {
        self.run_streaming(grid, |_| {})
    }

    /// Runs the grid, invoking `on_cell` as each cell finishes
    /// (completion order; `CellResult::index` recovers grid order).
    ///
    /// Cells are scheduled across the ambient rayon pool and each cell's
    /// folds parallelize too, so small grids still saturate the machine.
    /// The returned report is independent of thread count and completion
    /// order: cell summaries are pure functions of (corpus, config), and
    /// the collected list is in grid order.
    ///
    /// # Errors
    /// Propagates evaluation and cache-store failures from any cell.
    pub fn run_streaming<F>(&self, grid: &GridSpec, on_cell: F) -> Result<SweepReport, StatsError>
    where
        F: Fn(&CellResult) + Send + Sync,
    {
        let cells = self.cells(grid);
        let fingerprint = self.fingerprint();
        let hits = AtomicUsize::new(0);
        let misses = AtomicUsize::new(0);
        let results: Result<Vec<CellResult>, StatsError> = (0..cells.len())
            .into_par_iter()
            .map(|index| {
                let config = cells[index];
                let cached = self
                    .cache
                    .as_ref()
                    .and_then(|c| c.load(fingerprint, &config));
                let (summary, from_cache) = match cached {
                    Some(summary) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        (summary, true)
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        let summary = self.eval_cell(&config)?;
                        if let Some(cache) = &self.cache {
                            cache.store(fingerprint, &config, &summary)?;
                        }
                        (summary, false)
                    }
                };
                let result = CellResult {
                    index,
                    config,
                    summary,
                    from_cache,
                };
                on_cell(&result);
                Ok(result)
            })
            .collect();
        Ok(SweepReport {
            fingerprint,
            cells: results?,
            hits: hits.load(Ordering::Relaxed),
            misses: misses.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_sysmodel::SystemModel;

    fn corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 30, 21)
    }

    fn small_grid() -> GridSpec {
        GridSpec {
            reprs: vec![ReprKind::PearsonRnd, ReprKind::Histogram],
            models: vec![ModelKind::Knn],
            sample_counts: vec![5],
            seeds: vec![3],
            profiles_per_benchmark: 1,
        }
    }

    #[test]
    fn grid_expansion_is_deterministic_and_deduplicated() {
        let mut grid = small_grid();
        grid.sample_counts = vec![5, 10, 5];
        grid.seeds = vec![3, 3];
        let cells = grid.few_runs_cells();
        assert_eq!(cells.len(), 2 * 2); // 2 reprs × 1 model × 2 s × 1 seed
        assert_eq!(cells, grid.few_runs_cells());
        // Fixed nesting: sample count varies slower than repr.
        assert_eq!(cells[0].n_profile_runs, 5);
        assert_eq!(cells[2].n_profile_runs, 10);
        assert!(grid.cross_system_cells().len() == 4);
    }

    #[test]
    fn encoding_specs_cover_every_cell() {
        let c = corpus();
        let mut grid = small_grid();
        grid.sample_counts = vec![5, 10];
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let sweep = Sweep::few_runs(&enc);
        let report = sweep.run(&grid).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.hits, 0);
        assert_eq!(report.misses, 4);
    }

    #[test]
    fn sweep_results_match_direct_evaluation() {
        let c = corpus();
        let grid = small_grid();
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc).run(&grid).unwrap();
        for cell in &report.cells {
            let CellConfig::FewRuns(cfg) = cell.config else {
                panic!("uc1 sweep produced a uc2 cell");
            };
            let direct = evaluate_few_runs_encoded(&enc, cfg).unwrap();
            assert_eq!(cell.summary, direct, "{}", cell.config.label());
        }
    }

    #[test]
    fn cross_system_sweep_runs() {
        let amd = Corpus::collect(&SystemModel::amd(), 30, 21);
        let intel = corpus();
        let mut grid = small_grid();
        grid.sample_counts = vec![20];
        let (src_spec, dst_spec) = grid.cross_system_encoding(&amd);
        let src = EncodedCorpus::build(&amd, &src_spec).unwrap();
        let dst = EncodedCorpus::build(&intel, &dst_spec).unwrap();
        let report = Sweep::cross_system(&src, &dst).run(&grid).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert!(report
            .cells
            .iter()
            .all(|c| matches!(c.config, CellConfig::CrossSystem(_))));
    }

    #[test]
    fn degenerate_grid_produces_empty_report() {
        let c = corpus();
        let mut grid = small_grid();
        grid.models.clear();
        assert!(grid.is_degenerate());
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc).run(&grid).unwrap();
        assert!(report.cells.is_empty());
        assert_eq!((report.hits, report.misses), (0, 0));
    }

    #[test]
    fn cell_configs_roundtrip_through_json() {
        for cfg in [
            CellConfig::FewRuns(FewRunsConfig::default()),
            CellConfig::CrossSystem(CrossSystemConfig::default()),
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: CellConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn cell_keys_separate_fingerprints_and_configs() {
        let a = CellConfig::FewRuns(FewRunsConfig::default());
        let b = CellConfig::CrossSystem(CrossSystemConfig::default());
        assert_ne!(cell_key(1, &a).unwrap(), cell_key(2, &a).unwrap());
        assert_ne!(cell_key(1, &a).unwrap(), cell_key(1, &b).unwrap());
        assert_eq!(cell_key(7, &a).unwrap(), cell_key(7, &a).unwrap());
    }

    #[test]
    fn labels_name_the_axes() {
        let label = CellConfig::FewRuns(FewRunsConfig::default()).label();
        assert!(label.contains("uc1"), "{label}");
        assert!(label.contains("PearsonRnd"), "{label}");
        assert!(label.contains("s=10"), "{label}");
    }
}
