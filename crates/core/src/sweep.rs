//! Config-grid sweep service with cached cells.
//!
//! The paper's evaluation is inherently a grid — representations ×
//! models × profile sample counts (× seeds), scored by LOGO/KS — and the
//! [`pipeline`](crate::pipeline) layer already lets every cell of such a
//! grid share one [`EncodedCorpus`]. This module turns the grid into a
//! service:
//!
//! * [`GridSpec`] declares the axes; it expands into [`CellConfig`]s in
//!   a fixed deterministic order and derives the [`EncodingSpec`]s that
//!   cover every cell, so one encode pass serves the whole sweep.
//! * [`Sweep`] schedules the cells across the rayon worker pool over the
//!   shared cache(s), streaming each [`CellResult`] to a callback the
//!   moment it finishes and returning all of them (cell order, not
//!   completion order) in a [`SweepReport`].
//! * [`CellCache`] persists completed cells to disk, keyed by
//!   `(corpus fingerprint, cell config)`. Re-running a widened grid
//!   loads the old cells and computes only the delta; a stale or
//!   corrupted file fails its fingerprint/config check and is recomputed
//!   rather than trusted.
//!
//! Cached results are bit-identical to fresh ones: every cell evaluation
//! is a pure function of (corpus, config) independent of thread count
//! ([`FoldRunner`](crate::pipeline::FoldRunner)'s guarantee), the
//! [`corpus_fingerprint`] pins the corpus bit-exactly, and the JSON
//! round-trip preserves every `f64` (shortest-round-trip formatting).
//!
//! Execution is fault tolerant (see [`resilience`](crate::resilience)):
//! each cell attempt runs behind a panic-isolation boundary, failing
//! cells are retried with fresh deterministic sub-seeds, solver failures
//! fall back to the histogram representation with a recorded
//! [`CellOutcome::Degraded`] marker, cells that exhaust their retries
//! are quarantined next to the cache, and the whole run holds an
//! advisory [`CacheLock`] on the cache directory so concurrent sweeps
//! cannot interleave writes. A failing cell yields a
//! [`CellOutcome::Failed`] — it never sinks the pool.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pv_stats::fingerprint::Fnv1a;
use pv_stats::StatsError;
use pv_sysmodel::Corpus;

use crate::eval::{cross_system_specs_for_runs, few_runs_spec, EvalSummary};
use crate::incremental::{
    evaluate_cross_system_incremental, evaluate_cross_system_incremental_sharded,
    evaluate_few_runs_incremental, evaluate_few_runs_incremental_sharded, FoldCacheStats,
    FoldEntry,
};
use crate::model::ModelKind;
use crate::pipeline::{EncodedCorpus, EncodingSpec};
use crate::repr::ReprKind;
use crate::resilience::{
    panic_message, retry_seed, validate_summary, CacheLock, FaultKind, FaultPlan, PvError,
    Quarantine, QuarantineEntry, DEFAULT_MAX_RETRIES,
};
use crate::shard::{ShardedCorpus, SHARD_OBS_COUNTERS};
use crate::usecase1::FewRunsConfig;
use crate::usecase2::CrossSystemConfig;

/// Version tag baked into every cache entry; bump on any change to the
/// cell layout or evaluation semantics to orphan old entries.
/// (v2: entries carry the degraded-fallback marker; v3: entries carry
/// per-fold [`FoldEntry`] scores for the incremental fold cache; v4:
/// the vectorized kernel layer — chunked-lane cosine rounding and the
/// binned-trees default changed evaluation numerics, and cell keys now
/// carry the tree-kernel tag.)
const CACHE_VERSION: u32 = 4;

/// How long a sweep waits for the cache directory's advisory lock
/// before giving up, unless overridden by [`Sweep::with_lock_timeout`].
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// The operational counters a sweep pre-registers at run start (when a
/// collector is installed), so metrics snapshots and summary tables list
/// every one of them even at zero — "0 retries" is an observation, a
/// missing row is not. Includes the lock/store/quarantine tallies that
/// were previously visible only when non-zero at exit.
pub const SWEEP_OBS_COUNTERS: &[&str] = &[
    "pv.core.pipeline.fold_cache.delta",
    "pv.core.pipeline.fold_cache.hit",
    "pv.core.pipeline.fold_cache.miss",
    "pv.core.resilience.fallback",
    "pv.core.resilience.panic_caught",
    "pv.core.resilience.retry",
    "pv.core.sweep.cache_hit",
    "pv.core.sweep.cache_miss",
    "pv.core.sweep.cache_store_fail",
    "pv.core.sweep.cache_verify_fail",
    "pv.core.sweep.cells",
    "pv.core.sweep.degraded",
    "pv.core.sweep.failed",
    "pv.core.sweep.lock_steal",
    "pv.core.sweep.ok",
    "pv.core.sweep.quarantine_skip",
];

/// A declarative config grid: the cross product of the four axes.
///
/// Expansion order is fixed — seeds, then sample counts, then
/// representations, then models, each axis in declaration order with
/// duplicates dropped — so the same spec always yields the same cell
/// list, which is what makes streamed results comparable across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Distribution representations to sweep.
    pub reprs: Vec<ReprKind>,
    /// Regression models to sweep.
    pub models: Vec<ModelKind>,
    /// Profile sample counts: `n_profile_runs` for use case 1,
    /// `profile_runs` for use case 2.
    pub sample_counts: Vec<usize>,
    /// Root seeds to sweep.
    pub seeds: Vec<u64>,
    /// Training profile windows per benchmark (use case 1 only).
    pub profiles_per_benchmark: usize,
}

impl Default for GridSpec {
    /// The paper's headline grid: all representations × all models at
    /// ten profile runs, one window per benchmark, campaign seed.
    fn default() -> Self {
        GridSpec {
            reprs: ReprKind::ALL.to_vec(),
            models: ModelKind::ALL.to_vec(),
            sample_counts: vec![10],
            seeds: vec![FewRunsConfig::default().seed],
            profiles_per_benchmark: 1,
        }
    }
}

/// Deduplicates while preserving first-occurrence order.
fn dedup_in_order<T: PartialEq + Copy>(xs: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(xs.len());
    for &x in xs {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}

impl GridSpec {
    /// Whether any axis is empty (the grid expands to no cells).
    pub fn is_degenerate(&self) -> bool {
        self.reprs.is_empty()
            || self.models.is_empty()
            || self.sample_counts.is_empty()
            || self.seeds.is_empty()
    }

    /// Expands the grid into use-case-1 cell configs.
    pub fn few_runs_cells(&self) -> Vec<FewRunsConfig> {
        let mut cells = Vec::new();
        for &seed in &dedup_in_order(&self.seeds) {
            for &s in &dedup_in_order(&self.sample_counts) {
                for &repr in &dedup_in_order(&self.reprs) {
                    for &model in &dedup_in_order(&self.models) {
                        cells.push(FewRunsConfig {
                            repr,
                            model,
                            n_profile_runs: s,
                            profiles_per_benchmark: self.profiles_per_benchmark.max(1),
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Expands the grid into use-case-2 cell configs.
    pub fn cross_system_cells(&self) -> Vec<CrossSystemConfig> {
        let mut cells = Vec::new();
        for &seed in &dedup_in_order(&self.seeds) {
            for &s in &dedup_in_order(&self.sample_counts) {
                for &repr in &dedup_in_order(&self.reprs) {
                    for &model in &dedup_in_order(&self.models) {
                        cells.push(CrossSystemConfig {
                            repr,
                            model,
                            profile_runs: s,
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The encoding spec covering every use-case-1 cell of this grid,
    /// plus the histogram-representation coverage each cell's degraded
    /// fallback would need — so a MaxEnt cell that falls back mid-sweep
    /// finds its encodings already cached.
    pub fn few_runs_encoding(&self) -> EncodingSpec {
        // The spec builder is idempotent, so merging per-cell specs
        // unions coverage instead of accumulating duplicates.
        self.few_runs_cells()
            .iter()
            .fold(EncodingSpec::new(), |spec, cfg| {
                let fallback = FewRunsConfig {
                    repr: ReprKind::Histogram,
                    ..*cfg
                };
                spec.merge(&few_runs_spec(cfg))
                    .merge(&few_runs_spec(&fallback))
            })
    }

    /// The (source, destination) encoding specs covering every
    /// use-case-2 cell of this grid (plus histogram fallback coverage,
    /// as in [`GridSpec::few_runs_encoding`]). `src` is needed to clamp
    /// profile windows to the source corpus' run count, exactly as
    /// evaluation does.
    pub fn cross_system_encoding(&self, src: &Corpus) -> (EncodingSpec, EncodingSpec) {
        self.cross_system_encoding_for_runs(src.n_runs)
    }

    /// [`GridSpec::cross_system_encoding`] from the source run count
    /// alone — for sharded campaigns that never materialize a corpus.
    pub fn cross_system_encoding_for_runs(
        &self,
        src_n_runs: usize,
    ) -> (EncodingSpec, EncodingSpec) {
        self.cross_system_cells().iter().fold(
            (EncodingSpec::new(), EncodingSpec::new()),
            |(src_spec, dst_spec), cfg| {
                let fallback = CrossSystemConfig {
                    repr: ReprKind::Histogram,
                    ..*cfg
                };
                let (s, d) = cross_system_specs_for_runs(src_n_runs, cfg);
                let (fs, fd) = cross_system_specs_for_runs(src_n_runs, &fallback);
                (src_spec.merge(&s).merge(&fs), dst_spec.merge(&d).merge(&fd))
            },
        )
    }
}

/// One cell of a sweep: which evaluation to run with which config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellConfig {
    /// A use-case-1 (few-runs, same system) evaluation.
    FewRuns(FewRunsConfig),
    /// A use-case-2 (cross-system) evaluation.
    CrossSystem(CrossSystemConfig),
}

impl CellConfig {
    /// The cell's representation axis value.
    pub fn repr(&self) -> ReprKind {
        match self {
            CellConfig::FewRuns(c) => c.repr,
            CellConfig::CrossSystem(c) => c.repr,
        }
    }

    /// The cell's model axis value.
    pub fn model(&self) -> ModelKind {
        match self {
            CellConfig::FewRuns(c) => c.model,
            CellConfig::CrossSystem(c) => c.model,
        }
    }

    /// The cell's sample-count axis value.
    pub fn sample_count(&self) -> usize {
        match self {
            CellConfig::FewRuns(c) => c.n_profile_runs,
            CellConfig::CrossSystem(c) => c.profile_runs,
        }
    }

    /// The cell's seed axis value.
    pub fn seed(&self) -> u64 {
        match self {
            CellConfig::FewRuns(c) => c.seed,
            CellConfig::CrossSystem(c) => c.seed,
        }
    }

    /// The same cell with a different seed (used by the retry policy to
    /// re-run a failing cell under a fresh deterministic sub-seed).
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            CellConfig::FewRuns(c) => CellConfig::FewRuns(FewRunsConfig { seed, ..c }),
            CellConfig::CrossSystem(c) => CellConfig::CrossSystem(CrossSystemConfig { seed, ..c }),
        }
    }

    /// The same cell with a different representation (used by the
    /// degraded fallback to re-run a solver-failed cell on the
    /// histogram representation).
    pub fn with_repr(self, repr: ReprKind) -> Self {
        match self {
            CellConfig::FewRuns(c) => CellConfig::FewRuns(FewRunsConfig { repr, ..c }),
            CellConfig::CrossSystem(c) => CellConfig::CrossSystem(CrossSystemConfig { repr, ..c }),
        }
    }

    /// A compact human-readable label, e.g.
    /// `uc1 PearsonRnd+kNN s=10 seed=0xc0ffee`.
    pub fn label(&self) -> String {
        let uc = match self {
            CellConfig::FewRuns(_) => "uc1",
            CellConfig::CrossSystem(_) => "uc2",
        };
        format!(
            "{uc} {}+{} s={} seed={:#x}",
            self.repr().name(),
            self.model().name(),
            self.sample_count(),
            self.seed(),
        )
    }
}

/// The stable on-disk key of a cell: FNV-1a over the corpus fingerprint,
/// the tree-kernel tag (binned vs exact split finding changes tree-model
/// scores, so a `PV_EXACT_TREES` run must never alias a default run's
/// entries), and the cell config's canonical JSON form.
///
/// # Errors
/// Fails when the config cannot be serialized (never happens for the
/// shipped config types).
pub fn cell_key(fingerprint: u64, cfg: &CellConfig) -> Result<u64, StatsError> {
    let json = serde_json::to_string(cfg)
        .map_err(|e| StatsError::invalid("cell_key", format!("serialize config: {e}")))?;
    let mut h = Fnv1a::new();
    h.write_u64(CACHE_VERSION as u64);
    h.write_u64(fingerprint);
    h.write_str(crate::model::tree_kernel_tag());
    h.write_str(&json);
    Ok(h.finish())
}

/// What a cell cache file holds. The fingerprint and config are stored
/// alongside the summary so a hit can be *verified*, not assumed: a file
/// that fails to parse, carries another corpus' fingerprint, or holds a
/// different config (hash collision, hand-edited file) is treated as a
/// miss and recomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CachedCell {
    version: u32,
    fingerprint: u64,
    config: CellConfig,
    summary: EvalSummary,
    /// `Some(error)` when the summary is a degraded histogram fallback
    /// recorded after `error`; `None` for a healthy cell. Persisting the
    /// marker keeps warm re-runs honest — a degraded cell stays visibly
    /// degraded instead of laundering into a clean hit.
    degraded: Option<PvError>,
    /// Per-fold score entries (fold order). When the corpus grows, a
    /// later sweep with a *different* fingerprint but the same config
    /// uses these as the incremental fold cache's prior, so only the
    /// folds the growth actually changed are recomputed. Empty for
    /// degraded cells and cells recovered by a reseeded retry.
    folds: Vec<FoldEntry>,
}

/// A serde-backed on-disk cache of completed sweep cells.
///
/// Layout: one JSON file per cell, `cell-<key:016x>.json` under the
/// cache directory, where the key is [`cell_key`]. Writes go through a
/// temp file + rename, so concurrent sweeps sharing a directory never
/// observe partial entries.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// A cache rooted at `dir`. The directory is created on first store.
    /// Stale temp files leaked by crashed writers are swept on open (see
    /// [`crate::resilience::sweep_stale_temps`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        crate::resilience::sweep_stale_temps(&dir);
        CellCache { dir }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of a cell entry.
    ///
    /// # Errors
    /// Propagates [`cell_key`] failures.
    pub fn entry_path(&self, fingerprint: u64, cfg: &CellConfig) -> Result<PathBuf, StatsError> {
        let key = cell_key(fingerprint, cfg)?;
        Ok(self.dir.join(format!("cell-{key:016x}.json")))
    }

    /// Number of cell entries currently on disk.
    pub fn entries(&self) -> usize {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return 0;
        };
        read.filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("cell-") && name.ends_with(".json")
            })
            .count()
    }

    /// Loads a cell if a verified entry exists, together with its
    /// degraded-fallback marker (`None` for a healthy cell).
    ///
    /// Any failure — missing file, unparsable JSON, version/fingerprint/
    /// config mismatch — is a miss, never an error: the cache must be
    /// safe to point at a stale or vandalized directory.
    pub fn load(
        &self,
        fingerprint: u64,
        cfg: &CellConfig,
    ) -> Option<(EvalSummary, Option<PvError>)> {
        let path = self.entry_path(fingerprint, cfg).ok()?;
        let text = fs::read_to_string(path).ok()?;
        let verified = serde_json::from_str::<CachedCell>(&text)
            .ok()
            .filter(|cell| {
                cell.version == CACHE_VERSION
                    && cell.fingerprint == fingerprint
                    && cell.config == *cfg
            });
        if verified.is_none() {
            // The entry existed but was corrupt or stale — distinct from a
            // plain miss (no file), which the sweep counts separately.
            pv_obs::counter_inc!("pv.core.sweep.cache_verify_fail");
        }
        verified.map(|cell| (cell.summary, cell.degraded))
    }

    /// The configs of every verified, non-degraded cell stored for
    /// `fingerprint`, deterministically ordered by cell key. This is
    /// what `repro train --from-sweep` scavenges: each config a sweep
    /// completed is a model worth fitting and sealing into the
    /// [model registry](crate::registry). Unreadable or stale files are
    /// skipped.
    pub fn configs(&self, fingerprint: u64) -> Vec<CellConfig> {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<(u64, CellConfig)> = read
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("cell-") && name.ends_with(".json")
            })
            .filter_map(|e| fs::read_to_string(e.path()).ok())
            .filter_map(|text| serde_json::from_str::<CachedCell>(&text).ok())
            .filter(|cell| {
                cell.version == CACHE_VERSION
                    && cell.fingerprint == fingerprint
                    && cell.degraded.is_none()
            })
            .filter_map(|cell| {
                cell_key(fingerprint, &cell.config)
                    .ok()
                    .map(|k| (k, cell.config))
            })
            .collect();
        out.sort_by_key(|&(k, _)| k);
        out.dedup_by_key(|&mut (k, _)| k);
        out.into_iter().map(|(_, c)| c).collect()
    }

    /// The best fold-cache donors on disk for corpora *other than*
    /// `fingerprint`: for every config with at least one non-degraded
    /// entry carrying folds, the entry with the most folds (ties broken
    /// by smaller fingerprint, so the pick is deterministic for any
    /// directory enumeration order).
    ///
    /// This is what turns a corpus append into an incremental sweep:
    /// the grown corpus fingerprints differently, so its cells all miss,
    /// but each cell's evaluation starts from the old corpus' per-fold
    /// scores. Unreadable or stale files are skipped, never trusted —
    /// and each [`FoldEntry`] is integrity-checked again at the point of
    /// consumption.
    pub fn donor_folds(
        &self,
        fingerprint: u64,
    ) -> std::collections::HashMap<CellConfig, Vec<FoldEntry>> {
        let mut best: std::collections::HashMap<CellConfig, (usize, u64, Vec<FoldEntry>)> =
            std::collections::HashMap::new();
        let Ok(read) = fs::read_dir(&self.dir) else {
            return std::collections::HashMap::new();
        };
        for entry in read.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if !(name.starts_with("cell-") && name.ends_with(".json")) {
                continue;
            }
            let Ok(text) = fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(cell) = serde_json::from_str::<CachedCell>(&text) else {
                continue;
            };
            if cell.version != CACHE_VERSION
                || cell.fingerprint == fingerprint
                || cell.degraded.is_some()
                || cell.folds.is_empty()
            {
                continue;
            }
            let candidate = (cell.folds.len(), cell.fingerprint);
            let better = match best.get(&cell.config) {
                Some(&(len, fp, _)) => {
                    candidate.0 > len || (candidate.0 == len && candidate.1 < fp)
                }
                None => true,
            };
            if better {
                best.insert(cell.config, (candidate.0, candidate.1, cell.folds));
            }
        }
        best.into_iter().map(|(k, (_, _, v))| (k, v)).collect()
    }

    /// Persists a completed cell (`degraded` records the error a
    /// degraded-fallback summary stands in for; `folds` are the per-fold
    /// entries future incremental evaluations can reuse).
    ///
    /// # Errors
    /// Fails on filesystem errors (unwritable directory, disk full).
    pub fn store(
        &self,
        fingerprint: u64,
        cfg: &CellConfig,
        summary: &EvalSummary,
        degraded: Option<&PvError>,
        folds: &[FoldEntry],
    ) -> Result<(), StatsError> {
        let path = self.entry_path(fingerprint, cfg)?;
        fs::create_dir_all(&self.dir).map_err(|e| {
            StatsError::invalid(
                "CellCache::store",
                format!("create {}: {e}", self.dir.display()),
            )
        })?;
        let cell = CachedCell {
            version: CACHE_VERSION,
            fingerprint,
            config: *cfg,
            summary: summary.clone(),
            degraded: degraded.cloned(),
            folds: folds.to_vec(),
        };
        let json = serde_json::to_string(&cell)
            .map_err(|e| StatsError::invalid("CellCache::store", format!("serialize: {e}")))?;
        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        fs::write(&tmp, json).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StatsError::invalid("CellCache::store", format!("write {}: {e}", tmp.display()))
        })?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StatsError::invalid(
                "CellCache::store",
                format!("rename {}: {e}", path.display()),
            )
        })?;
        Ok(())
    }
}

/// The cell-cache fingerprint of a cross-system pair: both corpus
/// fingerprints under a domain tag, identical for sharded and
/// monolithic targets over the same campaigns.
pub fn cross_fingerprint(src: u64, dst: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("pv-sweep-cross");
    h.write_u64(src);
    h.write_u64(dst);
    h.finish()
}

/// What a sweep evaluates its cells against.
pub enum SweepTarget<'a, 'c> {
    /// Use case 1 over one encoded corpus.
    FewRuns(&'a EncodedCorpus<'c>),
    /// Use case 2, source → destination.
    CrossSystem {
        /// The (encoded) corpus measured on the source system.
        src: &'a EncodedCorpus<'c>,
        /// The (encoded) corpus measured on the destination system.
        dst: &'a EncodedCorpus<'c>,
    },
    /// Use case 1 over a sharded corpus (bounded-memory path; results
    /// and cache keys identical to [`SweepTarget::FewRuns`] on the
    /// equivalent monolithic corpus).
    FewRunsSharded(&'a ShardedCorpus<'c>),
    /// Use case 2 over sharded corpora, source → destination.
    CrossSystemSharded {
        /// The (sharded) corpus measured on the source system.
        src: &'a ShardedCorpus<'c>,
        /// The (sharded) corpus measured on the destination system.
        dst: &'a ShardedCorpus<'c>,
    },
}

/// How one cell of a sweep ended.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CellOutcome {
    /// The cell evaluated cleanly.
    Ok {
        /// The evaluation result.
        summary: EvalSummary,
        /// Attempts spent (1 for a first-try success, 0 for a cache
        /// hit, more when retries recovered a transient fault).
        attempts: u32,
    },
    /// The configured representation failed its solver; the summary is
    /// a recorded fallback onto `fallback` — usable, but not the
    /// fidelity the cell asked for. Never silently mixed with `Ok`.
    Degraded {
        /// The fallback evaluation result.
        summary: EvalSummary,
        /// Representation the cell fell back to.
        fallback: ReprKind,
        /// The error that forced the fallback.
        error: PvError,
        /// Attempts spent before falling back.
        attempts: u32,
    },
    /// The cell exhausted its retries without a usable result. With a
    /// cache attached the cell is quarantined for subsequent runs.
    Failed {
        /// The error from the final attempt.
        error: PvError,
        /// Attempts spent.
        attempts: u32,
    },
    /// The cell was on the cache directory's quarantine list and was
    /// skipped without evaluation.
    Quarantined {
        /// The persisted error description from the quarantining run.
        error: String,
    },
}

impl CellOutcome {
    /// The usable summary, if the cell produced one (clean or degraded).
    pub fn summary(&self) -> Option<&EvalSummary> {
        match self {
            CellOutcome::Ok { summary, .. } | CellOutcome::Degraded { summary, .. } => {
                Some(summary)
            }
            _ => None,
        }
    }

    /// Attempts spent on this cell in this run.
    pub fn attempts(&self) -> u32 {
        match self {
            CellOutcome::Ok { attempts, .. }
            | CellOutcome::Degraded { attempts, .. }
            | CellOutcome::Failed { attempts, .. } => *attempts,
            CellOutcome::Quarantined { .. } => 0,
        }
    }

    /// Whether the cell evaluated cleanly.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok { .. })
    }

    /// Whether the cell fell back to a degraded representation.
    pub fn is_degraded(&self) -> bool {
        matches!(self, CellOutcome::Degraded { .. })
    }

    /// Whether the cell failed outright.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }

    /// Whether the cell was skipped via the quarantine list.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, CellOutcome::Quarantined { .. })
    }
}

/// One finished cell, streamed to the callback as it completes and
/// collected (in cell order) into the [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellResult {
    /// Position in the grid's deterministic cell order.
    pub index: usize,
    /// The cell's configuration.
    pub config: CellConfig,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Whether the outcome was loaded from the cache.
    pub from_cache: bool,
}

impl CellResult {
    /// The usable summary, if the cell produced one.
    pub fn summary(&self) -> Option<&EvalSummary> {
        self.outcome.summary()
    }
}

/// Everything a sweep run produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// The corpus fingerprint the cells were keyed under.
    pub fingerprint: u64,
    /// All cells, in grid order (not completion order).
    pub cells: Vec<CellResult>,
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells computed (and, with a cache attached, persisted).
    pub misses: usize,
    /// Cells that failed after exhausting retries.
    pub failed: usize,
    /// Cells that completed on a degraded fallback representation.
    pub degraded: usize,
    /// Cells skipped via the quarantine list.
    pub quarantined: usize,
    /// Cache-store failures (non-fatal: the summary was still returned).
    pub store_failures: usize,
    /// Fold-cache tallies aggregated over every cell this run actually
    /// evaluated (cell-level cache hits evaluate no folds and contribute
    /// nothing here).
    pub fold_stats: FoldCacheStats,
}

impl SweepReport {
    /// Whether every cell produced a clean (non-degraded) result.
    pub fn is_clean(&self) -> bool {
        self.failed == 0 && self.degraded == 0 && self.quarantined == 0
    }

    /// The cells that did not produce a usable summary (failed or
    /// quarantined), grid order.
    pub fn failures(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.outcome.is_failed() || c.outcome.is_quarantined())
            .collect()
    }
}

/// The sweep service: a target plus an optional cell cache, a retry
/// budget, and (for the test tiers) a fault-injection plan.
pub struct Sweep<'a, 'c> {
    target: SweepTarget<'a, 'c>,
    cache: Option<CellCache>,
    faults: FaultPlan,
    max_retries: u32,
    lock_timeout: Duration,
}

impl<'a, 'c> Sweep<'a, 'c> {
    /// A use-case-1 sweep over `enc`.
    pub fn few_runs(enc: &'a EncodedCorpus<'c>) -> Self {
        Self::new(SweepTarget::FewRuns(enc))
    }

    /// A use-case-2 sweep, `src` → `dst`.
    pub fn cross_system(src: &'a EncodedCorpus<'c>, dst: &'a EncodedCorpus<'c>) -> Self {
        Self::new(SweepTarget::CrossSystem { src, dst })
    }

    /// A use-case-1 sweep over a sharded corpus. Cells evaluate
    /// bit-identically to [`Sweep::few_runs`] on the equivalent
    /// monolithic corpus and share its cell cache (same fingerprint).
    pub fn few_runs_sharded(sh: &'a ShardedCorpus<'c>) -> Self {
        Self::new(SweepTarget::FewRunsSharded(sh))
    }

    /// A use-case-2 sweep over sharded corpora, `src` → `dst`.
    pub fn cross_system_sharded(src: &'a ShardedCorpus<'c>, dst: &'a ShardedCorpus<'c>) -> Self {
        Self::new(SweepTarget::CrossSystemSharded { src, dst })
    }

    fn new(target: SweepTarget<'a, 'c>) -> Self {
        Sweep {
            target,
            cache: None,
            faults: FaultPlan::none(),
            max_retries: DEFAULT_MAX_RETRIES,
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
        }
    }

    /// Attaches an on-disk cell cache.
    pub fn with_cache(mut self, cache: CellCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a fault-injection plan (testing and drills only; the
    /// default plan injects nothing).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-cell retry budget (attempts = 1 + retries).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets how long to wait for the cache directory's advisory lock.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&CellCache> {
        self.cache.as_ref()
    }

    /// The fingerprint cells are keyed under: the corpus fingerprint for
    /// use case 1, a combination of both corpora's for use case 2.
    pub fn fingerprint(&self) -> u64 {
        match &self.target {
            SweepTarget::FewRuns(enc) => enc.fingerprint(),
            SweepTarget::FewRunsSharded(sh) => sh.fingerprint(),
            SweepTarget::CrossSystem { src, dst } => {
                cross_fingerprint(src.fingerprint(), dst.fingerprint())
            }
            SweepTarget::CrossSystemSharded { src, dst } => {
                cross_fingerprint(src.fingerprint(), dst.fingerprint())
            }
        }
    }

    /// Expands `grid` into this target's cell list (deterministic
    /// order).
    pub fn cells(&self, grid: &GridSpec) -> Vec<CellConfig> {
        match &self.target {
            SweepTarget::FewRuns(_) | SweepTarget::FewRunsSharded(_) => grid
                .few_runs_cells()
                .into_iter()
                .map(CellConfig::FewRuns)
                .collect(),
            SweepTarget::CrossSystem { .. } | SweepTarget::CrossSystemSharded { .. } => grid
                .cross_system_cells()
                .into_iter()
                .map(CellConfig::CrossSystem)
                .collect(),
        }
    }

    /// Evaluates one cell on the shared encoded corpora, incrementally
    /// against `prior` fold entries (empty prior ⇒ a cold evaluation —
    /// same bits, all folds counted as misses).
    fn eval_cell(
        &self,
        cfg: &CellConfig,
        prior: &[FoldEntry],
    ) -> Result<(EvalSummary, Vec<FoldEntry>, FoldCacheStats), StatsError> {
        let result = match (&self.target, cfg) {
            (SweepTarget::FewRuns(enc), CellConfig::FewRuns(c)) => {
                evaluate_few_runs_incremental(enc, *c, prior)?
            }
            (SweepTarget::CrossSystem { src, dst }, CellConfig::CrossSystem(c)) => {
                evaluate_cross_system_incremental(src, dst, *c, prior)?
            }
            (SweepTarget::FewRunsSharded(sh), CellConfig::FewRuns(c)) => {
                evaluate_few_runs_incremental_sharded(sh, *c, prior)?
            }
            (SweepTarget::CrossSystemSharded { src, dst }, CellConfig::CrossSystem(c)) => {
                evaluate_cross_system_incremental_sharded(src, dst, *c, prior)?
            }
            _ => {
                return Err(StatsError::invalid(
                    "Sweep::eval_cell",
                    "cell config does not match the sweep target's use case",
                ))
            }
        };
        Ok((result.summary, result.folds, result.stats))
    }

    /// One panic-isolated, fault-injectable evaluation attempt.
    fn eval_attempt(
        &self,
        index: usize,
        attempt: u32,
        cfg: &CellConfig,
        prior: &[FoldEntry],
    ) -> Result<(EvalSummary, Vec<FoldEntry>, FoldCacheStats), PvError> {
        type AttemptOk = (EvalSummary, Vec<FoldEntry>, FoldCacheStats);
        // catch_unwind wraps the whole attempt (injection included), so
        // a panic anywhere inside the cell becomes a typed error before
        // rayon's scope can observe it and sink the pool.
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<AttemptOk, PvError> {
            match self.faults.eval_fault(index, attempt) {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: panic in cell {index} attempt {attempt}")
                }
                Some(FaultKind::NonConvergence) => {
                    return Err(PvError::Solver {
                        what: format!("injected fault: non-convergence in cell {index}"),
                        iterations: 0,
                    });
                }
                Some(FaultKind::NanRun) => {
                    let (mut summary, folds, stats) = self.eval_cell(cfg, prior)?;
                    summary.mean = f64::NAN;
                    return Ok((summary, folds, stats));
                }
                Some(FaultKind::CacheCorruption) | None => {}
            }
            self.eval_cell(cfg, prior).map_err(PvError::from)
        }));
        match outcome {
            Ok(result) => result.and_then(|(summary, folds, stats)| {
                validate_summary(&summary)?;
                Ok((summary, folds, stats))
            }),
            Err(payload) => {
                pv_obs::counter_inc!("pv.core.resilience.panic_caught");
                Err(PvError::CellPanic {
                    message: panic_message(payload),
                })
            }
        }
    }

    /// Evaluates one cell under the retry/fallback policy. Infallible by
    /// construction: every failure mode is folded into the outcome.
    ///
    /// Alongside the outcome, returns the fold entries worth persisting
    /// (only a first-attempt success produces any: a reseeded retry ran
    /// under a different effective config, and a degraded fallback under
    /// a different representation, so their folds would poison the
    /// original cell's fold cache) and the fold-cache tallies of the
    /// work actually performed.
    fn eval_cell_resilient(
        &self,
        index: usize,
        config: &CellConfig,
        prior: &[FoldEntry],
    ) -> (CellOutcome, Vec<FoldEntry>, FoldCacheStats) {
        let attempts_allowed = self.max_retries.saturating_add(1);
        let mut last_err = PvError::Invalid {
            what: "Sweep".to_string(),
            detail: "cell was given no attempts".to_string(),
        };
        for attempt in 0..attempts_allowed {
            // Attempt 0 runs the configured seed (so an un-faulted cell
            // is bit-identical with or without the retry machinery);
            // later attempts re-seed deterministically.
            if attempt > 0 {
                pv_obs::counter_inc!("pv.core.resilience.retry");
            }
            let cfg = config.with_seed(retry_seed(config.seed(), attempt));
            let attempt_prior = if attempt == 0 { prior } else { &[] };
            match self.eval_attempt(index, attempt, &cfg, attempt_prior) {
                Ok((summary, folds, stats)) => {
                    let outcome = CellOutcome::Ok {
                        summary,
                        attempts: attempt + 1,
                    };
                    let folds = if attempt == 0 { folds } else { Vec::new() };
                    return (outcome, folds, stats);
                }
                Err(e) => last_err = e,
            }
        }
        if last_err.fallback_eligible() && config.repr() != ReprKind::Histogram {
            // Solver non-convergence: fall back to the histogram
            // representation under the original seed — recorded, never
            // silently mixed with clean cells. No fault injection here
            // (the faults model the configured repr's failure), but the
            // panic boundary and numeric validation still apply.
            let fallback_cfg = config.with_repr(ReprKind::Histogram);
            let fallback = catch_unwind(AssertUnwindSafe(|| {
                self.eval_cell(&fallback_cfg, &[]).map_err(PvError::from)
            }));
            if let Ok(Ok((summary, _folds, stats))) = fallback {
                if validate_summary(&summary).is_ok() {
                    pv_obs::counter_inc!("pv.core.resilience.fallback");
                    let outcome = CellOutcome::Degraded {
                        summary,
                        fallback: ReprKind::Histogram,
                        error: last_err,
                        attempts: attempts_allowed,
                    };
                    return (outcome, Vec::new(), stats);
                }
            }
        }
        (
            CellOutcome::Failed {
                error: last_err,
                attempts: attempts_allowed,
            },
            Vec::new(),
            FoldCacheStats::default(),
        )
    }

    /// Runs the grid, discarding the stream.
    ///
    /// # Errors
    /// Fails only on environmental problems that precede cell execution
    /// (the cache directory's advisory lock cannot be acquired). Cell
    /// failures are reported per cell in the [`SweepReport`], never as
    /// an error.
    pub fn run(&self, grid: &GridSpec) -> Result<SweepReport, PvError> {
        self.run_streaming(grid, |_| {})
    }

    /// Runs the grid, invoking `on_cell` as each cell finishes
    /// (completion order; `CellResult::index` recovers grid order).
    ///
    /// Cells are scheduled across the ambient rayon pool and each cell's
    /// folds parallelize too, so small grids still saturate the machine.
    /// The returned report is independent of thread count and completion
    /// order: cell summaries are pure functions of (corpus, config), and
    /// the collected list is in grid order.
    ///
    /// Execution is fault tolerant: a panicking, non-converging, or
    /// NaN-producing cell is retried up to the retry budget (fresh
    /// deterministic sub-seed per attempt), solver failures fall back to
    /// the histogram representation as [`CellOutcome::Degraded`], and a
    /// cell that exhausts its budget becomes [`CellOutcome::Failed`] and
    /// (with a cache attached) is quarantined so re-runs skip it.
    ///
    /// # Errors
    /// Fails only when the cache directory's advisory lock cannot be
    /// acquired within the lock timeout.
    pub fn run_streaming<F>(&self, grid: &GridSpec, on_cell: F) -> Result<SweepReport, PvError>
    where
        F: Fn(&CellResult) + Send + Sync,
    {
        let cells = self.cells(grid);
        let fingerprint = self.fingerprint();
        let _sweep_span = pv_obs::span!("pv.core.sweep.run", cells = cells.len());
        pv_obs::metrics::preregister_counters(SWEEP_OBS_COUNTERS);
        if matches!(
            self.target,
            SweepTarget::FewRunsSharded(_) | SweepTarget::CrossSystemSharded { .. }
        ) {
            pv_obs::metrics::preregister_counters(&SHARD_OBS_COUNTERS);
        }
        pv_obs::gauge_set!("pv.core.sweep.cells_total", cells.len());
        // The advisory lock covers cache reads, writes, and the
        // quarantine update; it is held until this function returns.
        let _lock = match &self.cache {
            Some(cache) => Some(CacheLock::acquire(cache.dir(), self.lock_timeout)?),
            None => None,
        };
        let quarantine = match &self.cache {
            Some(cache) => Quarantine::load(cache.dir()),
            None => Quarantine::new(),
        };
        // One directory scan up front: the best same-config donor folds
        // from *other* corpus fingerprints (i.e. earlier, smaller
        // corpora), feeding the incremental fold cache of every miss.
        let donors = match &self.cache {
            Some(cache) => cache.donor_folds(fingerprint),
            None => std::collections::HashMap::new(),
        };
        let hits = AtomicUsize::new(0);
        let misses = AtomicUsize::new(0);
        let store_failures = AtomicUsize::new(0);
        let fold_hits = AtomicUsize::new(0);
        let fold_deltas = AtomicUsize::new(0);
        let fold_misses = AtomicUsize::new(0);
        let results: Vec<CellResult> = (0..cells.len())
            .into_par_iter()
            .map(|index| {
                let config = cells[index];
                let _cell_span = pv_obs::span!("pv.core.sweep.cell", index = index);
                pv_obs::counter_inc!("pv.core.sweep.cells");
                if let Some(entry) = cell_key(fingerprint, &config)
                    .ok()
                    .and_then(|k| quarantine.get(k))
                {
                    // Known-bad from a previous run: skip-and-report
                    // (counted in neither hits nor misses — nothing was
                    // looked up or computed).
                    pv_obs::counter_inc!("pv.core.sweep.quarantine_skip");
                    let result = CellResult {
                        index,
                        config,
                        outcome: CellOutcome::Quarantined {
                            error: entry.error.to_string(),
                        },
                        from_cache: false,
                    };
                    on_cell(&result);
                    return result;
                }
                let cached = self
                    .cache
                    .as_ref()
                    .and_then(|c| c.load(fingerprint, &config));
                let (outcome, from_cache) = match cached {
                    Some((summary, degraded)) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        pv_obs::counter_inc!("pv.core.sweep.cache_hit");
                        let outcome = match degraded {
                            Some(error) => CellOutcome::Degraded {
                                summary,
                                fallback: ReprKind::Histogram,
                                error,
                                attempts: 0,
                            },
                            None => CellOutcome::Ok {
                                summary,
                                attempts: 0,
                            },
                        };
                        (outcome, true)
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        pv_obs::counter_inc!("pv.core.sweep.cache_miss");
                        let prior = donors.get(&config).map(Vec::as_slice).unwrap_or_default();
                        let (outcome, folds, fstats) =
                            self.eval_cell_resilient(index, &config, prior);
                        fold_hits.fetch_add(fstats.hits, Ordering::Relaxed);
                        fold_deltas.fetch_add(fstats.deltas, Ordering::Relaxed);
                        fold_misses.fetch_add(fstats.misses, Ordering::Relaxed);
                        if let Some(cache) = &self.cache {
                            let stored = match &outcome {
                                CellOutcome::Ok { summary, .. } => {
                                    cache.store(fingerprint, &config, summary, None, &folds)
                                }
                                CellOutcome::Degraded { summary, error, .. } => {
                                    cache.store(fingerprint, &config, summary, Some(error), &[])
                                }
                                _ => Ok(()),
                            };
                            if stored.is_err() {
                                // A failed store must not fail the cell:
                                // the summary is still valid, only the
                                // warm-start is lost.
                                store_failures.fetch_add(1, Ordering::Relaxed);
                                pv_obs::counter_inc!("pv.core.sweep.cache_store_fail");
                            } else if self.faults.corrupts_store(index) {
                                // Torn-write drill: vandalize the entry
                                // we just stored so the next run's
                                // verified load treats it as a miss.
                                if let Ok(path) = cache.entry_path(fingerprint, &config) {
                                    let _ = fs::write(&path, "{ corrupted by fault injection");
                                }
                            }
                        }
                        (outcome, false)
                    }
                };
                match &outcome {
                    CellOutcome::Ok { .. } => pv_obs::counter_inc!("pv.core.sweep.ok"),
                    CellOutcome::Degraded { .. } => {
                        pv_obs::counter_inc!("pv.core.sweep.degraded")
                    }
                    CellOutcome::Failed { .. } => pv_obs::counter_inc!("pv.core.sweep.failed"),
                    CellOutcome::Quarantined { .. } => {}
                }
                let result = CellResult {
                    index,
                    config,
                    outcome,
                    from_cache,
                };
                on_cell(&result);
                result
            })
            .collect();

        if let Some(cache) = &self.cache {
            // Quarantine newly failed cells (grid order → deterministic
            // file content for a given plan, any thread count).
            let mut q = quarantine;
            let mut dirty = false;
            for r in &results {
                if let CellOutcome::Failed { error, attempts } = &r.outcome {
                    if let Ok(key) = cell_key(fingerprint, &r.config) {
                        q.insert(QuarantineEntry {
                            key,
                            label: r.config.label(),
                            error: error.clone(),
                            attempts: *attempts,
                        });
                        dirty = true;
                    }
                }
            }
            if dirty && q.save(cache.dir()).is_err() {
                store_failures.fetch_add(1, Ordering::Relaxed);
                pv_obs::counter_inc!("pv.core.sweep.cache_store_fail");
            }
        }

        let mut report = SweepReport {
            fingerprint,
            cells: results,
            hits: hits.load(Ordering::Relaxed),
            misses: misses.load(Ordering::Relaxed),
            failed: 0,
            degraded: 0,
            quarantined: 0,
            store_failures: store_failures.load(Ordering::Relaxed),
            fold_stats: FoldCacheStats {
                hits: fold_hits.load(Ordering::Relaxed),
                deltas: fold_deltas.load(Ordering::Relaxed),
                misses: fold_misses.load(Ordering::Relaxed),
            },
        };
        for cell in &report.cells {
            match &cell.outcome {
                CellOutcome::Ok { .. } => {}
                CellOutcome::Degraded { .. } => report.degraded += 1,
                CellOutcome::Failed { .. } => report.failed += 1,
                CellOutcome::Quarantined { .. } => report.quarantined += 1,
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::evaluate_few_runs_encoded;
    use pv_sysmodel::SystemModel;

    fn corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 30, 21)
    }

    fn small_grid() -> GridSpec {
        GridSpec {
            reprs: vec![ReprKind::PearsonRnd, ReprKind::Histogram],
            models: vec![ModelKind::Knn],
            sample_counts: vec![5],
            seeds: vec![3],
            profiles_per_benchmark: 1,
        }
    }

    #[test]
    fn grid_expansion_is_deterministic_and_deduplicated() {
        let mut grid = small_grid();
        grid.sample_counts = vec![5, 10, 5];
        grid.seeds = vec![3, 3];
        let cells = grid.few_runs_cells();
        assert_eq!(cells.len(), 2 * 2); // 2 reprs × 1 model × 2 s × 1 seed
        assert_eq!(cells, grid.few_runs_cells());
        // Fixed nesting: sample count varies slower than repr.
        assert_eq!(cells[0].n_profile_runs, 5);
        assert_eq!(cells[2].n_profile_runs, 10);
        assert!(grid.cross_system_cells().len() == 4);
    }

    #[test]
    fn encoding_specs_cover_every_cell() {
        let c = corpus();
        let mut grid = small_grid();
        grid.sample_counts = vec![5, 10];
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let sweep = Sweep::few_runs(&enc);
        let report = sweep.run(&grid).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.hits, 0);
        assert_eq!(report.misses, 4);
    }

    #[test]
    fn sweep_results_match_direct_evaluation() {
        let c = corpus();
        let grid = small_grid();
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc).run(&grid).unwrap();
        for cell in &report.cells {
            let CellConfig::FewRuns(cfg) = cell.config else {
                panic!("uc1 sweep produced a uc2 cell");
            };
            let direct = evaluate_few_runs_encoded(&enc, cfg).unwrap();
            assert_eq!(cell.summary().unwrap(), &direct, "{}", cell.config.label());
            assert!(cell.outcome.is_ok());
            assert_eq!(cell.outcome.attempts(), 1);
        }
    }

    #[test]
    fn config_rewrites_preserve_the_other_axes() {
        let cfg = CellConfig::FewRuns(FewRunsConfig::default());
        let reseeded = cfg.with_seed(99);
        assert_eq!(reseeded.seed(), 99);
        assert_eq!(reseeded.repr(), cfg.repr());
        assert_eq!(reseeded.model(), cfg.model());
        let histo = cfg.with_repr(ReprKind::Histogram);
        assert_eq!(histo.repr(), ReprKind::Histogram);
        assert_eq!(histo.seed(), cfg.seed());
    }

    #[test]
    fn panicking_cell_is_contained_and_reported() {
        crate::resilience::silence_injected_panics();
        let c = corpus();
        let grid = small_grid();
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc)
            .with_faults(FaultPlan::none().inject(0, FaultKind::Panic))
            .run(&grid)
            .unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.failed, 1);
        let failed = &report.cells[0];
        let CellOutcome::Failed { error, attempts } = &failed.outcome else {
            panic!("expected Failed, got {:?}", failed.outcome);
        };
        assert_eq!(error.kind(), "panic");
        assert_eq!(*attempts, DEFAULT_MAX_RETRIES + 1);
        // The sibling cell is untouched.
        assert!(report.cells[1].outcome.is_ok());
    }

    #[test]
    fn nonconvergence_falls_back_to_histogram_as_degraded() {
        let c = corpus();
        let grid = small_grid(); // cells: [PearsonRnd, Histogram] × kNN
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc)
            .with_faults(FaultPlan::none().inject(0, FaultKind::NonConvergence))
            .run(&grid)
            .unwrap();
        assert_eq!(report.degraded, 1);
        assert_eq!(report.failed, 0);
        let CellOutcome::Degraded {
            summary, fallback, ..
        } = &report.cells[0].outcome
        else {
            panic!("expected Degraded, got {:?}", report.cells[0].outcome);
        };
        assert_eq!(*fallback, ReprKind::Histogram);
        // The recorded fallback equals the histogram cell computed under
        // the same seed/model/sample axes — cell 1 of this grid.
        assert_eq!(Some(summary), report.cells[1].summary());
    }

    #[test]
    fn nonconvergence_on_a_histogram_cell_fails_without_fallback() {
        let c = corpus();
        let mut grid = small_grid();
        grid.reprs = vec![ReprKind::Histogram];
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc)
            .with_faults(FaultPlan::none().inject(0, FaultKind::NonConvergence))
            .run(&grid)
            .unwrap();
        // Histogram is already the floor of the degrade ladder.
        assert_eq!(report.failed, 1);
        assert_eq!(report.degraded, 0);
    }

    #[test]
    fn transient_fault_recovers_via_reseeded_retry() {
        crate::resilience::silence_injected_panics();
        let c = corpus();
        let grid = small_grid();
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc)
            .with_faults(FaultPlan::none().inject_transient(0, FaultKind::Panic, 1))
            .run(&grid)
            .unwrap();
        assert!(report.is_clean());
        let CellOutcome::Ok { attempts, .. } = &report.cells[0].outcome else {
            panic!("expected Ok, got {:?}", report.cells[0].outcome);
        };
        assert_eq!(*attempts, 2, "one failed attempt, one recovery");
        // The recovered cell ran under a derived sub-seed, so it may
        // differ from the fault-free value — but it must be the value
        // the derived seed produces, deterministically.
        let CellConfig::FewRuns(cfg) = report.cells[0].config else {
            panic!("uc1 grid");
        };
        let reseeded = FewRunsConfig {
            seed: crate::resilience::retry_seed(cfg.seed, 1),
            ..cfg
        };
        let direct = evaluate_few_runs_encoded(&enc, reseeded).unwrap();
        assert_eq!(report.cells[0].summary().unwrap(), &direct);
    }

    #[test]
    fn zero_retries_still_yields_one_attempt() {
        let c = corpus();
        let grid = small_grid();
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc)
            .with_max_retries(0)
            .with_faults(FaultPlan::none().inject_transient(0, FaultKind::NanRun, 1))
            .run(&grid)
            .unwrap();
        // No retry budget: the transient fault is fatal for the cell.
        assert_eq!(report.failed, 1);
        assert_eq!(report.cells[0].outcome.attempts(), 1);
    }

    #[test]
    fn cross_system_sweep_runs() {
        let amd = Corpus::collect(&SystemModel::amd(), 30, 21);
        let intel = corpus();
        let mut grid = small_grid();
        grid.sample_counts = vec![20];
        let (src_spec, dst_spec) = grid.cross_system_encoding(&amd);
        let src = EncodedCorpus::build(&amd, &src_spec).unwrap();
        let dst = EncodedCorpus::build(&intel, &dst_spec).unwrap();
        let report = Sweep::cross_system(&src, &dst).run(&grid).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert!(report
            .cells
            .iter()
            .all(|c| matches!(c.config, CellConfig::CrossSystem(_))));
    }

    #[test]
    fn degenerate_grid_produces_empty_report() {
        let c = corpus();
        let mut grid = small_grid();
        grid.models.clear();
        assert!(grid.is_degenerate());
        let enc = EncodedCorpus::build(&c, &grid.few_runs_encoding()).unwrap();
        let report = Sweep::few_runs(&enc).run(&grid).unwrap();
        assert!(report.cells.is_empty());
        assert_eq!((report.hits, report.misses), (0, 0));
    }

    #[test]
    fn cell_configs_roundtrip_through_json() {
        for cfg in [
            CellConfig::FewRuns(FewRunsConfig::default()),
            CellConfig::CrossSystem(CrossSystemConfig::default()),
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: CellConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn cell_keys_separate_fingerprints_and_configs() {
        let a = CellConfig::FewRuns(FewRunsConfig::default());
        let b = CellConfig::CrossSystem(CrossSystemConfig::default());
        assert_ne!(cell_key(1, &a).unwrap(), cell_key(2, &a).unwrap());
        assert_ne!(cell_key(1, &a).unwrap(), cell_key(1, &b).unwrap());
        assert_eq!(cell_key(7, &a).unwrap(), cell_key(7, &a).unwrap());
    }

    #[test]
    fn labels_name_the_axes() {
        let label = CellConfig::FewRuns(FewRunsConfig::default()).label();
        assert!(label.contains("uc1"), "{label}");
        assert!(label.contains("PearsonRnd"), "{label}");
        assert!(label.contains("s=10"), "{label}");
    }
}
