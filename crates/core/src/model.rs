//! Model selection facade over `pv-ml`.
//!
//! Section III-B3: the paper compares kNN (k = 15, cosine similarity),
//! random forests, and XGBoost. [`ModelKind`] instantiates each with the
//! hyper-parameters used throughout the evaluation.

use serde::{Deserialize, Serialize};

use pv_ml::{
    Distance, GradientBoostingRegressor, KnnRegressor, MaxFeatures, RandomForestRegressor,
    Regressor,
};
use pv_stats::StatsError;

/// Whether tree models use histogram (pre-binned) split finding.
///
/// Default **on** since the vectorized-kernel PR: the binned kernel's
/// accuracy parity with exact splits is gated by `tests/kernel_parity.rs`
/// (EvalSummary deltas within documented thresholds, see DESIGN.md
/// "Kernel contracts"), and it is substantially faster on the wide
/// feature matrices the sweep fits. Set `PV_EXACT_TREES=1` to fall back
/// to exhaustive exact split scanning — e.g. to reproduce pre-binned
/// historical artifacts or to re-derive the parity baseline.
///
/// The choice feeds [`tree_kernel_tag`], which is written into sweep
/// cell keys and registry artifact keys so binned and exact runs never
/// alias each other's caches.
pub fn binned_trees_default() -> bool {
    !std::env::var("PV_EXACT_TREES").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Cache-key tag naming the tree split kernel in effect (`"binned"` or
/// `"exact"`). Fed into [`crate::sweep`] cell keys and
/// [`crate::registry`] artifact keys.
pub fn tree_kernel_tag() -> &'static str {
    if binned_trees_default() {
        "binned"
    } else {
        "exact"
    }
}

/// Which regression model to use — the second comparison axis of
/// Figs. 4 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// k-nearest neighbours, k = 15, cosine distance (the paper's pick).
    Knn,
    /// Random forest (100 trees, √d features).
    RandomForest,
    /// XGBoost-style gradient boosting.
    XgBoost,
}

impl ModelKind {
    /// All three models, in the paper's presentation order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Knn, ModelKind::RandomForest, ModelKind::XgBoost];

    /// Whether the model wants standardized features. All three do: the
    /// per-second counters span nine orders of magnitude, and cosine
    /// similarity over raw rates would be dominated by the few largest
    /// counters (we measured that variant at ~0.06 worse mean KS — the
    /// higher-moment profile features carry real shape information that
    /// standardization exposes). Tree models are scale-free but keeping
    /// one code path is simpler than special-casing them.
    pub fn wants_standardization(&self) -> bool {
        true
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Knn => "kNN",
            ModelKind::RandomForest => "RandomForest",
            ModelKind::XgBoost => "XGBoost",
        }
    }

    /// The concrete kNN instance whose prediction is a pure function of
    /// its neighbour *set* (uniform weights — the mean of the
    /// neighbours' unscaled target rows, accumulated in ascending row
    /// order), or `None` for models whose predictions depend on more
    /// than neighbour identity.
    ///
    /// This is what makes the incremental fold cache's delta path sound
    /// (see [`crate::incremental`]): when a corpus grows, every fold's
    /// standardization — and hence every distance — changes, but if the
    /// held-out query's neighbour set is unchanged, a uniform-weight
    /// kNN prediction (and everything downstream of it) is
    /// bit-identical. Must instantiate exactly what [`Self::build`]
    /// builds for [`ModelKind::Knn`]; a unit test pins the two together.
    pub fn neighbor_delta_model(&self) -> Option<KnnRegressor> {
        match self {
            ModelKind::Knn => Some(KnnRegressor::new(15).with_distance(Distance::Cosine)),
            ModelKind::RandomForest | ModelKind::XgBoost => None,
        }
    }

    /// Instantiates an unfitted model with the evaluation
    /// hyper-parameters. `seed` drives any internal randomness (bagging,
    /// feature subsampling); kNN ignores it.
    pub fn build(&self, seed: u64) -> Box<dyn Regressor> {
        match self.build_fitted(seed) {
            FittedModel::Knn(m) => Box::new(m),
            FittedModel::RandomForest(m) => Box::new(m),
            FittedModel::XgBoost(m) => Box::new(m),
        }
    }

    /// [`Self::build`] in concrete, serializable form: the same unfitted
    /// model instance, but as a [`FittedModel`] enum rather than a trait
    /// object, so that after fitting its full state (split thresholds,
    /// stored rows, leaf values) can round-trip through the model
    /// registry. A unit test pins this to `build`.
    ///
    /// Tree models take the histogram (binned) split kernel from
    /// [`binned_trees_default`] — on unless `PV_EXACT_TREES` is set.
    pub fn build_fitted(&self, seed: u64) -> FittedModel {
        let binned = binned_trees_default();
        match self {
            ModelKind::Knn => {
                FittedModel::Knn(KnnRegressor::new(15).with_distance(Distance::Cosine))
            }
            ModelKind::RandomForest => FittedModel::RandomForest(
                RandomForestRegressor::new(100)
                    .with_max_depth(14)
                    .with_max_features(MaxFeatures::Sqrt)
                    .with_binned(binned)
                    .with_seed(seed),
            ),
            ModelKind::XgBoost => FittedModel::XgBoost(
                GradientBoostingRegressor::new(80)
                    .with_learning_rate(0.1)
                    .with_max_depth(3)
                    .with_lambda(1.0)
                    .with_subsample(0.9)
                    .with_binned(binned)
                    .with_seed(seed),
            ),
        }
    }
}

/// A (possibly fitted) regression model in concrete form.
///
/// The predictors in [`crate::usecase1`] and [`crate::usecase2`] hold
/// this instead of a `Box<dyn Regressor>` so a trained model's state is
/// a plain serde value: the registry serializes it verbatim, and a
/// deserialized copy predicts bit-identically to the original (pinned by
/// `tests/serving_equivalence.rs`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FittedModel {
    /// k-nearest neighbours — stores the (scaled) training rows.
    Knn(KnnRegressor),
    /// Random forest — stores every tree's split structure.
    RandomForest(RandomForestRegressor),
    /// Gradient boosting — stores base scores and per-round trees.
    XgBoost(GradientBoostingRegressor),
}

impl FittedModel {
    /// Which [`ModelKind`] this model is an instance of.
    pub fn kind(&self) -> ModelKind {
        match self {
            FittedModel::Knn(_) => ModelKind::Knn,
            FittedModel::RandomForest(_) => ModelKind::RandomForest,
            FittedModel::XgBoost(_) => ModelKind::XgBoost,
        }
    }

    /// The model as an abstract regressor.
    pub fn regressor(&self) -> &dyn Regressor {
        match self {
            FittedModel::Knn(m) => m,
            FittedModel::RandomForest(m) => m,
            FittedModel::XgBoost(m) => m,
        }
    }

    /// The model as a mutable abstract regressor (for fitting).
    pub fn regressor_mut(&mut self) -> &mut dyn Regressor {
        match self {
            FittedModel::Knn(m) => m,
            FittedModel::RandomForest(m) => m,
            FittedModel::XgBoost(m) => m,
        }
    }
}

impl std::str::FromStr for ModelKind {
    type Err = StatsError;

    /// Parses a display name case-insensitively (`"knn"`,
    /// `"randomforest"` / `"rf"`, `"xgboost"` / `"xgb"`), as used by the
    /// `repro sweep` command line.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "knn" => Ok(ModelKind::Knn),
            "randomforest" | "rf" | "forest" => Ok(ModelKind::RandomForest),
            "xgboost" | "xgb" | "gbt" => Ok(ModelKind::XgBoost),
            _ => Err(StatsError::invalid(
                "ModelKind::from_str",
                format!("unknown model {s:?} (expected kNN, RandomForest, or XGBoost)"),
            )),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_ml::{Dataset, DenseMatrix};

    fn tiny_dataset() -> Dataset {
        let x = DenseMatrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.2, 0.8],
        ])
        .unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![1.5], vec![1.2]]).unwrap();
        Dataset::ungrouped(x, y).unwrap()
    }

    #[test]
    fn every_kind_builds_fits_and_predicts() {
        for kind in ModelKind::ALL {
            let mut m = kind.build(7);
            m.fit(&tiny_dataset()).unwrap();
            let p = m.predict(&[0.4, 0.6]).unwrap();
            assert_eq!(p.len(), 1, "{}", kind.name());
            assert!(p[0].is_finite());
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(ModelKind::Knn.name(), "kNN");
        assert_eq!(ModelKind::RandomForest.name(), "RandomForest");
        assert_eq!(ModelKind::XgBoost.name(), "XGBoost");
    }

    #[test]
    fn display_names_parse_back() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.name().parse::<ModelKind>().unwrap(), kind);
        }
        assert_eq!("rf".parse::<ModelKind>().unwrap(), ModelKind::RandomForest);
        assert!("perceptron".parse::<ModelKind>().is_err());
    }

    #[test]
    fn neighbor_delta_model_matches_build() {
        // The delta-path kNN must be the exact model `build` runs, or the
        // incremental cache would verify one model and reuse another's
        // score.
        let data = tiny_dataset();
        let mut built = ModelKind::Knn.build(7);
        built.fit(&data).unwrap();
        let mut delta = ModelKind::Knn.neighbor_delta_model().unwrap();
        delta.fit(&data).unwrap();
        let q = [0.4, 0.6];
        assert_eq!(built.predict(&q).unwrap(), delta.predict(&q).unwrap());
        // Only kNN is neighbour-delta eligible.
        assert!(ModelKind::RandomForest.neighbor_delta_model().is_none());
        assert!(ModelKind::XgBoost.neighbor_delta_model().is_none());
    }

    #[test]
    fn build_fitted_matches_build() {
        // The registry serializes what `build_fitted` fits; it must be
        // the exact model the evaluation path (`build`) runs.
        let data = tiny_dataset();
        let q = [0.4, 0.6];
        for kind in ModelKind::ALL {
            let mut boxed = kind.build(7);
            boxed.fit(&data).unwrap();
            let mut concrete = kind.build_fitted(7);
            assert_eq!(concrete.kind(), kind);
            concrete.regressor_mut().fit(&data).unwrap();
            assert_eq!(
                boxed.predict(&q).unwrap(),
                concrete.regressor().predict(&q).unwrap(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn tree_kernel_tag_tracks_the_binned_default() {
        // Whatever the environment says, the cache-key tag must name the
        // kernel `build_fitted` actually uses.
        let binned = binned_trees_default();
        assert_eq!(tree_kernel_tag(), if binned { "binned" } else { "exact" });
        let FittedModel::RandomForest(rf) = ModelKind::RandomForest.build_fitted(1) else {
            panic!("wrong variant");
        };
        assert_eq!(rf.binned, binned);
        let FittedModel::XgBoost(gbt) = ModelKind::XgBoost.build_fitted(1) else {
            panic!("wrong variant");
        };
        assert_eq!(gbt.binned, binned);
    }

    #[test]
    fn seeded_models_are_deterministic() {
        for kind in [ModelKind::RandomForest, ModelKind::XgBoost] {
            let mut a = kind.build(3);
            let mut b = kind.build(3);
            a.fit(&tiny_dataset()).unwrap();
            b.fit(&tiny_dataset()).unwrap();
            assert_eq!(
                a.predict(&[0.3, 0.7]).unwrap(),
                b.predict(&[0.3, 0.7]).unwrap(),
                "{}",
                kind.name()
            );
        }
    }
}
