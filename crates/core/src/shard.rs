//! Sharded corpora: the encode/evaluate data plane at scale.
//!
//! A [`ShardedCorpus`] splits a campaign into contiguous benchmark-index
//! ranges. Each shard is independently generated (via per-benchmark
//! seeding in `pv-sysmodel`) and independently encoded (via the same
//! [`EncodedBlock`] kernel the monolithic [`EncodedCorpus`](crate::pipeline::EncodedCorpus)
//! runs), fingerprinted with `pv_stats::fingerprint`, and spillable to
//! disk with the temp-file+rename + verify-on-load discipline of the
//! cell and fold caches. An LRU-bounded resident set keeps at most a
//! budgeted number of encoded shards in memory, so peak memory is
//! `O(shard)` — one raw benchmark range during generation plus the
//! resident encoded shards — not `O(corpus)`.
//!
//! ## Bit-identity guarantee
//!
//! Sharding never changes an output bit, at any shard layout and any
//! thread count:
//!
//! * generation seeds every stage from the benchmark id, so a range is
//!   bit-identical to the same slice of a full campaign;
//! * encoding runs the same per-benchmark kernel in the same order;
//! * fold assembly streams include rows in ascending benchmark order —
//!   the exact row order the monolithic path produces — through the
//!   [`FoldView`] abstraction, pinning one shard at a time;
//! * the corpus fingerprint is computed from the same per-benchmark
//!   digests with the same domain tag, so sharded and monolithic runs of
//!   one campaign share fold caches and sweep cell caches.
//!
//! ## Spill format
//!
//! `shard-{index:05}-{key:016x}.bin`: magic, a key fingerprint binding
//! the file to (system, runs, seed, roster size, range, encoding-spec
//! coverage), the serialized shard payload, and a trailing FNV-1a digest
//! of the payload bytes. Loads verify magic, key, and digest before
//! parsing; after the initial build the digest must additionally equal
//! the shard fingerprint recorded at build time. Any mismatch —
//! truncation, tampering, a stale spec — is treated as a miss and the
//! shard is recomputed silently (a `verify_fail` counter records it),
//! exactly like a corrupted cell-cache entry.

use std::collections::VecDeque;
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pv_stats::fingerprint::Fnv1a;
use pv_stats::StatsError;
use pv_sysmodel::{collect_benchmarks, BenchmarkData, BenchmarkId, Corpus, SystemId, SystemModel};

use crate::pipeline::{corpus_digest_parts, EncodedBlock, EncodingSpec, FoldTruth, FoldView};
use crate::resilience::PvError;
use crate::usecase1::FewRunsConfig;
use crate::usecase2::CrossSystemConfig;

/// Spill format version; bump to orphan every spilled shard.
const SPILL_MAGIC: &[u8; 8] = b"PVSHARD1";

/// Counters this module emits (pre-registered by the sweep service so
/// they export as explicit zeros when a run never touches a path).
pub const SHARD_OBS_COUNTERS: [&str; 5] = [
    "pv.core.shard.encode",
    "pv.core.shard.evict",
    "pv.core.shard.load",
    "pv.core.shard.spill",
    "pv.core.shard.verify_fail",
];

/// Contiguous benchmark-index ranges covering `0..n_benchmarks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// Shard boundaries: `bounds[i]..bounds[i+1]` is shard `i`'s range.
    /// Always starts at 0, ends at `n_benchmarks`, strictly increasing.
    bounds: Vec<usize>,
}

impl ShardLayout {
    /// Uniform layout: shards of `shard_size` benchmarks (the last shard
    /// takes the remainder).
    ///
    /// # Errors
    /// Fails when `shard_size` is zero.
    pub fn uniform(n_benchmarks: usize, shard_size: usize) -> Result<Self, StatsError> {
        if shard_size == 0 {
            return Err(StatsError::invalid("ShardLayout", "shard size 0"));
        }
        let mut bounds = vec![0];
        while *bounds.last().unwrap_or(&0) < n_benchmarks {
            let next = (bounds[bounds.len() - 1] + shard_size).min(n_benchmarks);
            bounds.push(next);
        }
        Ok(ShardLayout { bounds })
    }

    /// Layout from explicit interior cut points. Cuts are sorted and
    /// deduplicated; out-of-range cuts (0 or ≥ `n_benchmarks`) are
    /// dropped, so any cut set yields a valid layout — handy for
    /// randomized boundary tests.
    pub fn from_boundaries(n_benchmarks: usize, cuts: &[usize]) -> Self {
        let mut bounds: Vec<usize> = cuts
            .iter()
            .copied()
            .filter(|&c| c > 0 && c < n_benchmarks)
            .collect();
        bounds.push(0);
        bounds.push(n_benchmarks);
        bounds.sort_unstable();
        bounds.dedup();
        ShardLayout { bounds }
    }

    /// Benchmarks covered.
    pub fn n_benchmarks(&self) -> usize {
        *self.bounds.last().unwrap_or(&0)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Shard `si`'s benchmark-index range.
    pub fn range(&self, si: usize) -> Range<usize> {
        self.bounds[si]..self.bounds[si + 1]
    }

    /// The shard containing benchmark `bi`.
    pub fn shard_of(&self, bi: usize) -> usize {
        // partition_point: first bound > bi, minus one.
        self.bounds.partition_point(|&b| b <= bi).saturating_sub(1)
    }
}

/// A campaign to generate shard by shard: the streaming source for
/// corpora too large to materialize at once.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSource {
    /// The simulated system.
    pub system: SystemModel,
    /// Roster size (first 60 are Table I, the rest synthetic — see
    /// [`pv_sysmodel::scaled_roster`]).
    pub n_benchmarks: usize,
    /// Runs per benchmark.
    pub n_runs: usize,
    /// Root seed of the campaign.
    pub seed: u64,
}

/// Where a [`ShardedCorpus`]'s benchmark data comes from.
pub enum ShardSource<'c> {
    /// An already-collected corpus; shards borrow its benchmark slices.
    Corpus(&'c Corpus),
    /// A campaign generated range by range, never materialized whole.
    Campaign(CampaignSource),
}

impl ShardSource<'_> {
    fn system(&self) -> SystemId {
        match self {
            ShardSource::Corpus(c) => c.system,
            ShardSource::Campaign(g) => g.system.id,
        }
    }

    fn n_runs(&self) -> usize {
        match self {
            ShardSource::Corpus(c) => c.n_runs,
            ShardSource::Campaign(g) => g.n_runs,
        }
    }

    fn seed(&self) -> u64 {
        match self {
            ShardSource::Corpus(c) => c.seed,
            ShardSource::Campaign(g) => g.seed,
        }
    }

    fn ids(&self) -> Vec<BenchmarkId> {
        match self {
            ShardSource::Corpus(c) => c.benchmarks.iter().map(|b| b.id).collect(),
            ShardSource::Campaign(g) => pv_sysmodel::scaled_roster(g.n_benchmarks),
        }
    }

    fn len(&self) -> usize {
        match self {
            ShardSource::Corpus(c) => c.len(),
            ShardSource::Campaign(g) => g.n_benchmarks,
        }
    }
}

/// One encoded shard: the [`EncodedBlock`] of a benchmark range, plus
/// identity and a content fingerprint over its serialized payload.
///
/// Accessors take *global* benchmark indices and reject indices outside
/// the shard's range.
pub struct EncodedShard {
    start: usize,
    ids: Vec<BenchmarkId>,
    block: EncodedBlock,
    content_fp: u64,
}

impl EncodedShard {
    fn encode(
        start: usize,
        benches: &[BenchmarkData],
        n_runs: usize,
        spec: &EncodingSpec,
    ) -> Result<Self, StatsError> {
        pv_obs::counter_inc!("pv.core.shard.encode");
        let block = EncodedBlock::build(benches, n_runs, spec)?;
        let ids: Vec<BenchmarkId> = benches.iter().map(|b| b.id).collect();
        let content_fp = pv_stats::fingerprint::fnv1a(&payload_bytes(start, &ids, &block));
        Ok(EncodedShard {
            start,
            ids,
            block,
            content_fp,
        })
    }

    /// Global benchmark-index range this shard covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.ids.len()
    }

    /// Number of benchmarks in the shard.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Content fingerprint: FNV-1a over the shard's serialized payload
    /// (ids, per-benchmark digests, every encoded value, bit-exact).
    pub fn fingerprint(&self) -> u64 {
        self.content_fp
    }

    /// Per-benchmark content digests, shard order.
    pub fn bench_fingerprints(&self) -> &[u64] {
        &self.block.bench_fps
    }

    fn local(&self, bi: usize) -> Result<usize, StatsError> {
        if self.range().contains(&bi) {
            Ok(bi - self.start)
        } else {
            Err(StatsError::invalid(
                "EncodedShard",
                format!("benchmark {bi} outside shard range {:?}", self.range()),
            ))
        }
    }

    /// Cached relative times of benchmark `bi` (global index).
    ///
    /// # Errors
    /// Fails when `bi` is outside the shard's range.
    pub fn rel_times(&self, bi: usize) -> Result<&[f64], StatsError> {
        Ok(self.block.rel_times(self.local(bi)?))
    }

    /// Cached relative times of benchmark `bi` (global index), sorted
    /// ascending — the truth side of the presorted KS fast path.
    ///
    /// # Errors
    /// Fails when `bi` is outside the shard's range.
    pub fn rel_times_sorted(&self, bi: usize) -> Result<&[f64], StatsError> {
        Ok(self.block.rel_times_sorted(self.local(bi)?))
    }

    /// Cached window-`w` profile of benchmark `bi` for setting `s`.
    ///
    /// # Errors
    /// Fails when `bi` is outside the shard's range or `(s, w)` was not
    /// covered by the build spec.
    pub fn profile(&self, s: usize, bi: usize, w: usize) -> Result<&[f64], StatsError> {
        self.block.profile(s, self.local(bi)?, w)
    }

    /// Cached target encoding of benchmark `bi` under `repr`.
    ///
    /// # Errors
    /// Fails when `bi` is outside the shard's range or `repr` was not
    /// covered by the build spec.
    pub fn target(&self, repr: crate::repr::ReprKind, bi: usize) -> Result<&[f64], StatsError> {
        self.block.target(repr, self.local(bi)?)
    }

    /// Cached joined row (profile ⊕ encoding) of benchmark `bi`.
    ///
    /// # Errors
    /// Fails when `bi` is outside the shard's range or `(s, repr)` was
    /// not covered by the build spec.
    pub fn joined(
        &self,
        s: usize,
        repr: crate::repr::ReprKind,
        bi: usize,
    ) -> Result<&[f64], StatsError> {
        self.block.joined(s, repr, self.local(bi)?)
    }
}

// ---------------------------------------------------------------------
// Spill codec: a compact binary format (JSON parse cost would dominate
// LRU-thrash reloads). All integers little-endian u64; floats as
// IEEE-754 bit patterns.

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u64(buf, vs.len() as u64);
    for v in vs {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn payload_bytes(start: usize, ids: &[BenchmarkId], block: &EncodedBlock) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, start as u64);
    put_u64(&mut buf, ids.len() as u64);
    for id in ids {
        put_str(&mut buf, &id.qualified());
    }
    for &fp in &block.bench_fps {
        put_u64(&mut buf, fp);
    }
    for rel in &block.rel {
        put_f64s(&mut buf, rel);
    }
    put_u64(&mut buf, block.profiles.len() as u64);
    for (s, per_bench) in &block.profiles {
        put_u64(&mut buf, *s as u64);
        let windows = per_bench.first().map_or(0, Vec::len);
        put_u64(&mut buf, windows as u64);
        for bench_windows in per_bench {
            for w in bench_windows {
                put_f64s(&mut buf, w);
            }
        }
    }
    put_u64(&mut buf, block.targets.len() as u64);
    for (kind, per_bench) in &block.targets {
        put_str(&mut buf, kind.name());
        for row in per_bench {
            put_f64s(&mut buf, row);
        }
    }
    put_u64(&mut buf, block.joined.len() as u64);
    for ((s, kind), per_bench) in &block.joined {
        put_u64(&mut buf, *s as u64);
        put_str(&mut buf, kind.name());
        for row in per_bench {
            put_f64s(&mut buf, row);
        }
    }
    buf
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PvError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(spill_err("parse", "truncated shard payload")),
        }
    }

    fn u64(&mut self) -> Result<u64, PvError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    fn count(&mut self, what: &str) -> Result<usize, PvError> {
        let v = self.u64()?;
        // A corrupted length would otherwise drive a huge allocation
        // before the truncation check fires.
        if v > self.buf.len() as u64 {
            return Err(spill_err("parse", format!("implausible {what} count {v}")));
        }
        Ok(v as usize)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, PvError> {
        let n = self.count("float")?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(arr))
            })
            .collect())
    }

    fn str(&mut self) -> Result<String, PvError> {
        let n = self.count("string byte")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| spill_err("parse", "non-UTF-8 string in shard payload"))
    }
}

fn spill_err(what: &str, detail: impl Into<String>) -> PvError {
    PvError::CacheIo {
        what: format!("shard spill {what}"),
        detail: detail.into(),
    }
}

fn parse_payload(payload: &[u8]) -> Result<(usize, Vec<BenchmarkId>, EncodedBlock), PvError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let start = r.u64()? as usize;
    let n = r.count("benchmark")?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.str()?;
        ids.push(
            pv_sysmodel::suites::find(&label)
                .ok_or_else(|| spill_err("parse", format!("unknown benchmark label {label:?}")))?,
        );
    }
    let mut bench_fps = Vec::with_capacity(n);
    for _ in 0..n {
        bench_fps.push(r.u64()?);
    }
    let mut rel = Vec::with_capacity(n);
    for _ in 0..n {
        rel.push(r.f64s()?);
    }
    let n_profiles = r.count("profile setting")?;
    let mut profiles = Vec::with_capacity(n_profiles);
    for _ in 0..n_profiles {
        let s = r.u64()? as usize;
        let windows = r.count("window")?;
        let mut per_bench = Vec::with_capacity(n);
        for _ in 0..n {
            let mut bench_windows = Vec::with_capacity(windows);
            for _ in 0..windows {
                bench_windows.push(r.f64s()?);
            }
            per_bench.push(bench_windows);
        }
        profiles.push((s, per_bench));
    }
    let n_targets = r.count("target kind")?;
    let mut targets = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        let kind: crate::repr::ReprKind = r
            .str()?
            .parse()
            .map_err(|e: StatsError| spill_err("parse", e.to_string()))?;
        let mut per_bench = Vec::with_capacity(n);
        for _ in 0..n {
            per_bench.push(r.f64s()?);
        }
        targets.push((kind, per_bench));
    }
    let n_joined = r.count("joined kind")?;
    let mut joined = Vec::with_capacity(n_joined);
    for _ in 0..n_joined {
        let s = r.u64()? as usize;
        let kind: crate::repr::ReprKind = r
            .str()?
            .parse()
            .map_err(|e: StatsError| spill_err("parse", e.to_string()))?;
        let mut per_bench = Vec::with_capacity(n);
        for _ in 0..n {
            per_bench.push(r.f64s()?);
        }
        joined.push(((s, kind), per_bench));
    }
    if r.pos != payload.len() {
        return Err(spill_err("parse", "trailing bytes in shard payload"));
    }
    // The sorted-rel cache is derived data; rebuilding it on load keeps
    // the spill format unchanged (and a hand-tampered spill file cannot
    // desynchronize the two).
    let rel_sorted = rel
        .iter()
        .map(|r| {
            let mut s = r.clone();
            s.sort_by(f64::total_cmp);
            s
        })
        .collect();
    Ok((
        start,
        ids,
        EncodedBlock {
            rel,
            rel_sorted,
            profiles,
            targets,
            joined,
            bench_fps,
        },
    ))
}

// ---------------------------------------------------------------------
// Resident set: LRU over Arc'd shards.

struct Resident {
    slots: Vec<Option<Arc<EncodedShard>>>,
    /// Least-recently-used order, most recent at the back.
    lru: VecDeque<usize>,
}

impl Resident {
    fn new(n_shards: usize) -> Self {
        Resident {
            slots: (0..n_shards).map(|_| None).collect(),
            lru: VecDeque::new(),
        }
    }

    fn get(&mut self, si: usize) -> Option<Arc<EncodedShard>> {
        let shard = self.slots[si].clone()?;
        self.lru.retain(|&s| s != si);
        self.lru.push_back(si);
        Some(shard)
    }

    fn insert(&mut self, si: usize, shard: Arc<EncodedShard>, budget: usize) {
        self.slots[si] = Some(shard);
        self.lru.retain(|&s| s != si);
        self.lru.push_back(si);
        while self.lru.len() > budget {
            if let Some(evict) = self.lru.pop_front() {
                self.slots[evict] = None;
                pv_obs::counter_inc!("pv.core.shard.evict");
            }
        }
        pv_obs::gauge_set!("pv.core.shard.resident", self.lru.len());
    }

    fn len(&self) -> usize {
        self.lru.len()
    }
}

// ---------------------------------------------------------------------
// The sharded corpus.

/// Builder for [`ShardedCorpus`]; see [`ShardedCorpus::builder`].
pub struct ShardedCorpusBuilder<'c> {
    source: ShardSource<'c>,
    spec: EncodingSpec,
    shard_size: usize,
    layout: Option<ShardLayout>,
    spill_dir: Option<PathBuf>,
    resident_shards: Option<usize>,
}

impl<'c> ShardedCorpusBuilder<'c> {
    /// Shard size for the default uniform layout (default 256).
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size;
        self
    }

    /// Explicit layout (overrides `shard_size`).
    pub fn layout(mut self, layout: ShardLayout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Spill encoded shards to `dir` (created if absent). Without a
    /// spill dir, evicted shards are recomputed from the source.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Resident-set budget in shards (≥ 1; default
    /// `max(4, rayon threads + 2)` so parallel folds rarely thrash).
    pub fn resident_shards(mut self, n: usize) -> Self {
        self.resident_shards = Some(n);
        self
    }

    /// Builds the sharded corpus: one sequential pass over the shards —
    /// generate (or borrow) the range, encode it, fingerprint it, spill
    /// it — keeping at most the resident budget in memory. With a spill
    /// dir, a key-matching self-verified spill file from a previous
    /// build is loaded instead of regenerated (warm restart).
    ///
    /// # Errors
    /// [`PvError::CacheIo`] when the spill directory cannot be created;
    /// encoding/validation failures convert from [`StatsError`].
    pub fn build(self) -> Result<ShardedCorpus<'c>, PvError> {
        let ShardedCorpusBuilder {
            source,
            spec,
            shard_size,
            layout,
            spill_dir,
            resident_shards,
        } = self;
        let n = source.len();
        let layout = match layout {
            Some(l) => {
                if l.n_benchmarks() != n {
                    return Err(PvError::Invalid {
                        what: "ShardedCorpus".into(),
                        detail: format!(
                            "layout covers {} benchmarks, corpus has {n}",
                            l.n_benchmarks()
                        ),
                    });
                }
                l
            }
            None => ShardLayout::uniform(n, shard_size)?,
        };
        if let Some(dir) = &spill_dir {
            fs::create_dir_all(dir)
                .map_err(|e| spill_err("create dir", format!("{}: {e}", dir.display())))?;
            // Crashed writers leak `*.tmp.<pid>` files; reclaim them
            // before this run starts spilling its own.
            crate::resilience::sweep_stale_temps(dir);
        }
        let budget = resident_shards
            .unwrap_or_else(|| (rayon::current_num_threads() + 2).max(4))
            .max(1);
        let mut sc = ShardedCorpus {
            ids: source.ids(),
            source,
            spec,
            layout,
            bench_fps: Vec::with_capacity(n),
            shard_fps: Vec::new(),
            spill_dir,
            budget,
            resident: Mutex::new(Resident::new(0)),
            load_guards: Vec::new(),
        };
        let n_shards = sc.layout.n_shards();
        sc.resident = Mutex::new(Resident::new(n_shards));
        sc.load_guards = (0..n_shards).map(|_| Mutex::new(())).collect();
        let _span = pv_obs::span!(
            "pv.core.shard.build",
            benches = n,
            shards = n_shards,
            budget = budget
        );
        for si in 0..n_shards {
            // Warm restart: accept a key-matching, self-verified spill
            // file without regenerating. (Key + payload digest is the
            // same trust model as the cell cache's verified loads.)
            let shard = match sc.try_load_spill(si, None) {
                Some(s) => s,
                None => {
                    let fresh = Arc::new(sc.encode_shard(si)?);
                    sc.write_spill(si, &fresh);
                    fresh
                }
            };
            sc.bench_fps.extend_from_slice(shard.bench_fingerprints());
            sc.shard_fps.push(shard.fingerprint());
            sc.lock_resident().insert(si, shard, budget);
        }
        Ok(sc)
    }
}

/// A corpus as a set of benchmark-range shards with an LRU-bounded
/// resident set. See the module docs for the memory model and the
/// bit-identity guarantee.
pub struct ShardedCorpus<'c> {
    source: ShardSource<'c>,
    spec: EncodingSpec,
    layout: ShardLayout,
    ids: Vec<BenchmarkId>,
    /// Per-benchmark content digests, roster order — always resident
    /// (8 bytes per benchmark); fold fingerprints read these without
    /// touching any shard.
    bench_fps: Vec<u64>,
    /// Expected content fingerprint per shard, pinned at build time;
    /// post-build spill loads must match exactly.
    shard_fps: Vec<u64>,
    spill_dir: Option<PathBuf>,
    budget: usize,
    resident: Mutex<Resident>,
    /// Per-shard load guards so concurrent folds faulting on the same
    /// shard do one recompute, not one each.
    load_guards: Vec<Mutex<()>>,
}

impl<'c> ShardedCorpus<'c> {
    /// Starts building a sharded corpus over `source` with encoding
    /// coverage `spec`.
    pub fn builder(source: ShardSource<'c>, spec: &EncodingSpec) -> ShardedCorpusBuilder<'c> {
        ShardedCorpusBuilder {
            source,
            spec: spec.clone(),
            shard_size: 256,
            layout: None,
            spill_dir: None,
            resident_shards: None,
        }
    }

    /// Number of benchmarks.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the corpus has no benchmarks.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Benchmark identities, roster order.
    pub fn ids(&self) -> &[BenchmarkId] {
        &self.ids
    }

    /// Identity of benchmark `bi`.
    pub fn id(&self, bi: usize) -> BenchmarkId {
        self.ids[bi]
    }

    /// The measured system.
    pub fn system(&self) -> SystemId {
        self.source.system()
    }

    /// Runs per benchmark.
    pub fn n_runs(&self) -> usize {
        self.source.n_runs()
    }

    /// Root seed of the campaign.
    pub fn seed(&self) -> u64 {
        self.source.seed()
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The encoding coverage every shard was built with.
    pub fn spec(&self) -> &EncodingSpec {
        &self.spec
    }

    /// Per-benchmark content digests, roster order — identical to
    /// [`crate::pipeline::bench_fingerprints`] on the equivalent
    /// monolithic corpus.
    pub fn bench_fingerprints(&self) -> &[u64] {
        &self.bench_fps
    }

    /// Per-shard content fingerprints, shard order.
    pub fn shard_fingerprints(&self) -> &[u64] {
        &self.shard_fps
    }

    /// Corpus fingerprint — identical to
    /// [`crate::pipeline::corpus_fingerprint`] on the equivalent
    /// monolithic corpus, independent of shard layout, so sharded and
    /// monolithic runs share fold and cell caches.
    pub fn fingerprint(&self) -> u64 {
        corpus_digest_parts(
            self.source.system(),
            self.source.n_runs(),
            self.source.seed(),
            &self.bench_fps,
        )
    }

    /// Shards currently resident (≤ the budget).
    pub fn n_resident(&self) -> usize {
        self.lock_resident().len()
    }

    /// The resident-set budget, in shards.
    pub fn resident_budget(&self) -> usize {
        self.budget
    }

    #[allow(clippy::unwrap_used)] // lock poisoning: a panicked fold already aborted the eval
    fn lock_resident(&self) -> std::sync::MutexGuard<'_, Resident> {
        self.resident
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn spill_key(&self, si: usize) -> u64 {
        let range = self.layout.range(si);
        let mut h = Fnv1a::new();
        h.write_str("pv-shard-key-v1");
        h.write_str(self.source.system().short_name());
        h.write_usize(self.source.n_runs());
        h.write_u64(self.source.seed());
        h.write_usize(self.len());
        h.write_usize(range.start);
        h.write_usize(range.end);
        self.spec.write_digest(&mut h);
        h.finish()
    }

    fn spill_path(&self, si: usize) -> Option<PathBuf> {
        let dir = self.spill_dir.as_ref()?;
        Some(dir.join(format!("shard-{si:05}-{:016x}.bin", self.spill_key(si))))
    }

    /// Loads shard `si` from its spill file, verifying magic, key
    /// fingerprint, payload digest (against `expect_fp` when the build
    /// already pinned it), and range. Any failure is a miss.
    fn try_load_spill(&self, si: usize, expect_fp: Option<u64>) -> Option<Arc<EncodedShard>> {
        let path = self.spill_path(si)?;
        match self.load_spill(&path, si, expect_fp) {
            Ok(shard) => {
                pv_obs::counter_inc!("pv.core.shard.load");
                Some(Arc::new(shard))
            }
            Err(e) => {
                if path.exists() {
                    // A missing file is a plain cold miss; anything else
                    // is a verification failure worth counting.
                    pv_obs::counter_inc!("pv.core.shard.verify_fail");
                    let _ = e;
                }
                None
            }
        }
    }

    fn load_spill(
        &self,
        path: &Path,
        si: usize,
        expect_fp: Option<u64>,
    ) -> Result<EncodedShard, PvError> {
        let bytes =
            fs::read(path).map_err(|e| spill_err("read", format!("{}: {e}", path.display())))?;
        if bytes.len() < SPILL_MAGIC.len() + 16 || &bytes[..SPILL_MAGIC.len()] != SPILL_MAGIC {
            return Err(spill_err("verify", "bad magic"));
        }
        let (header, rest) = bytes.split_at(SPILL_MAGIC.len() + 8);
        let mut key_arr = [0u8; 8];
        key_arr.copy_from_slice(&header[SPILL_MAGIC.len()..]);
        if u64::from_le_bytes(key_arr) != self.spill_key(si) {
            return Err(spill_err("verify", "key fingerprint mismatch"));
        }
        let (payload, trailer) = rest.split_at(rest.len() - 8);
        let mut fp_arr = [0u8; 8];
        fp_arr.copy_from_slice(trailer);
        let stored_fp = u64::from_le_bytes(fp_arr);
        let content_fp = pv_stats::fingerprint::fnv1a(payload);
        if content_fp != stored_fp {
            return Err(spill_err("verify", "payload digest mismatch"));
        }
        if let Some(expect) = expect_fp {
            if content_fp != expect {
                return Err(spill_err("verify", "shard fingerprint mismatch"));
            }
        }
        let (start, ids, block) = parse_payload(payload)?;
        let range = self.layout.range(si);
        if start != range.start || ids.len() != range.len() {
            return Err(spill_err("verify", "shard range mismatch"));
        }
        Ok(EncodedShard {
            start,
            ids,
            block,
            content_fp,
        })
    }

    /// Spills a shard with the temp-file+rename discipline. Failures are
    /// non-fatal (the shard can always be recomputed) and counted.
    fn write_spill(&self, si: usize, shard: &EncodedShard) {
        let Some(path) = self.spill_path(si) else {
            return;
        };
        let payload = payload_bytes(shard.start, &shard.ids, &shard.block);
        let mut bytes = Vec::with_capacity(SPILL_MAGIC.len() + 16 + payload.len());
        bytes.extend_from_slice(SPILL_MAGIC);
        bytes.extend_from_slice(&self.spill_key(si).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&pv_stats::fingerprint::fnv1a(&payload).to_le_bytes());
        let tmp = path.with_extension(format!("bin.tmp.{}", std::process::id()));
        let ok = fs::write(&tmp, &bytes).is_ok() && fs::rename(&tmp, &path).is_ok();
        if ok {
            pv_obs::counter_inc!("pv.core.shard.spill");
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Generates (or borrows) shard `si`'s benchmark range and encodes
    /// it. The raw range data lives only for the duration of this call.
    fn encode_shard(&self, si: usize) -> Result<EncodedShard, StatsError> {
        let range = self.layout.range(si);
        match &self.source {
            ShardSource::Corpus(c) => {
                EncodedShard::encode(range.start, &c.benchmarks[range], c.n_runs, &self.spec)
            }
            ShardSource::Campaign(g) => {
                let benches =
                    collect_benchmarks(&g.system, &self.ids[range.clone()], g.n_runs, g.seed);
                EncodedShard::encode(range.start, &benches, g.n_runs, &self.spec)
            }
        }
    }

    /// The shard at index `si`, resident or faulted in (spill load when
    /// verified, recompute otherwise). Holding the returned `Arc` pins
    /// the shard's memory even across eviction, so callers keep at most
    /// one or two shards pinned at a time.
    ///
    /// # Errors
    /// Propagates recompute (generation/encode) failures; spill problems
    /// never propagate — a bad file is recomputed silently.
    pub fn shard(&self, si: usize) -> Result<Arc<EncodedShard>, StatsError> {
        if let Some(shard) = self.lock_resident().get(si) {
            return Ok(shard);
        }
        // Serialize faults per shard: concurrent folds missing on the
        // same shard wait here and find it resident on re-check.
        #[allow(clippy::unwrap_used)] // poisoning: see lock_resident
        let _guard = self.load_guards[si]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(shard) = self.lock_resident().get(si) {
            return Ok(shard);
        }
        let expect = self.shard_fps.get(si).copied();
        let shard = match self.try_load_spill(si, expect) {
            Some(s) => s,
            None => {
                let fresh = Arc::new(self.encode_shard(si)?);
                // Heal the spill file so the next fault is a load again.
                self.write_spill(si, &fresh);
                fresh
            }
        };
        debug_assert!(
            expect.is_none() || expect == Some(shard.fingerprint()),
            "recomputed shard diverged from its build-time fingerprint"
        );
        self.lock_resident()
            .insert(si, Arc::clone(&shard), self.budget);
        Ok(shard)
    }
}

// ---------------------------------------------------------------------
// Shard-aware fold assembly: same rows, same order, one shard pinned at
// a time.

/// The use-case-1 fold assembly over shards: include rows stream in
/// ascending benchmark order (windows inner) — exactly the
/// include-rank-major order of the monolithic
/// [`crate::eval::few_runs_assemble`] — pinning each shard once per fold.
pub(crate) fn few_runs_assemble_sharded<'a>(
    sh: &'a ShardedCorpus<'_>,
    cfg: FewRunsConfig,
) -> impl Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError> + Send + Sync + 'a {
    let s = cfg.n_profile_runs;
    let windows = cfg.profiles_per_benchmark.max(1);
    move |held, include| {
        let held_shard = sh.shard(sh.layout.shard_of(held))?;
        let query = held_shard.profile(s, held, 0)?.to_vec();
        let x_dim = query.len();
        let y_dim = held_shard.target(cfg.repr, held)?.len();
        drop(held_shard);
        Ok(FoldView::new(
            include.len() * windows,
            x_dim,
            y_dim,
            query,
            move |sink| {
                let mut i = 0;
                for si in 0..sh.layout.n_shards() {
                    let end = sh.layout.range(si).end;
                    if i >= include.len() || include[i] >= end {
                        continue;
                    }
                    let shard = sh.shard(si)?;
                    while i < include.len() && include[i] < end {
                        let bi = include[i];
                        let target = shard.target(cfg.repr, bi)?;
                        for w in 0..windows {
                            sink(shard.profile(s, bi, w)?, target, bi)?;
                        }
                        i += 1;
                    }
                }
                Ok(())
            },
        ))
    }
}

/// The use-case-2 fold assembly over shards: ascending include order,
/// one source shard and one destination shard pinned at a time (layouts
/// may differ between the two corpora).
pub(crate) fn cross_system_assemble_sharded<'a>(
    src: &'a ShardedCorpus<'_>,
    dst: &'a ShardedCorpus<'_>,
    cfg: CrossSystemConfig,
) -> impl Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError> + Send + Sync + 'a {
    let s_eff = cfg.profile_runs.min(src.n_runs()).max(1);
    move |held, include| {
        let held_src = src.shard(src.layout.shard_of(held))?;
        let query = held_src.joined(s_eff, cfg.repr, held)?.to_vec();
        let x_dim = query.len();
        drop(held_src);
        let held_dst = dst.shard(dst.layout.shard_of(held))?;
        let y_dim = held_dst.target(cfg.repr, held)?.len();
        drop(held_dst);
        Ok(FoldView::new(
            include.len(),
            x_dim,
            y_dim,
            query,
            move |sink| {
                let mut src_cur: Option<Arc<EncodedShard>> = None;
                let mut dst_cur: Option<Arc<EncodedShard>> = None;
                for &bi in &include {
                    if !src_cur.as_ref().is_some_and(|sh| sh.range().contains(&bi)) {
                        src_cur = Some(src.shard(src.layout.shard_of(bi))?);
                    }
                    if !dst_cur.as_ref().is_some_and(|sh| sh.range().contains(&bi)) {
                        dst_cur = Some(dst.shard(dst.layout.shard_of(bi))?);
                    }
                    let (Some(s_sh), Some(d_sh)) = (&src_cur, &dst_cur) else {
                        unreachable!("shards assigned above");
                    };
                    sink(
                        s_sh.joined(s_eff, cfg.repr, bi)?,
                        d_sh.target(cfg.repr, bi)?,
                        bi,
                    )?;
                }
                Ok(())
            },
        ))
    }
}

/// The fold-truth closure over a sharded corpus. The relative times are
/// copied out of the shard (owned `Cow`) so scoring never depends on
/// the shard staying resident; the copy is taken from the shard's
/// presorted cache so scoring skips the per-fold truth sort.
pub(crate) fn sharded_truth<'a>(
    sh: &'a ShardedCorpus<'_>,
) -> impl Fn(usize) -> Result<FoldTruth<'a>, StatsError> + Send + Sync + 'a {
    move |held| {
        let shard = sh.shard(sh.layout.shard_of(held))?;
        Ok(FoldTruth {
            id: sh.id(held),
            rel: std::borrow::Cow::Owned(shard.rel_times_sorted(held)?.to_vec()),
            sorted: true,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::repr::ReprKind;
    use pv_sysmodel::SystemModel;

    #[test]
    fn uniform_layout_covers_everything() {
        let l = ShardLayout::uniform(60, 7).unwrap();
        assert_eq!(l.n_benchmarks(), 60);
        assert_eq!(l.n_shards(), 9);
        assert_eq!(l.range(0), 0..7);
        assert_eq!(l.range(8), 56..60);
        for bi in 0..60 {
            assert!(l.range(l.shard_of(bi)).contains(&bi), "bi={bi}");
        }
        assert!(ShardLayout::uniform(60, 0).is_err());
        let one = ShardLayout::uniform(60, 64).unwrap();
        assert_eq!(one.n_shards(), 1);
    }

    #[test]
    fn boundary_layout_sanitizes_cuts() {
        let l = ShardLayout::from_boundaries(10, &[3, 3, 7, 0, 10, 99]);
        assert_eq!(l.n_shards(), 3);
        assert_eq!(l.range(0), 0..3);
        assert_eq!(l.range(1), 3..7);
        assert_eq!(l.range(2), 7..10);
        let whole = ShardLayout::from_boundaries(10, &[]);
        assert_eq!(whole.n_shards(), 1);
    }

    fn spec() -> EncodingSpec {
        EncodingSpec::new()
            .profiles(5, 2)
            .target(ReprKind::PearsonRnd)
    }

    #[test]
    fn sharded_encodings_match_monolithic() {
        let c = Corpus::collect(&SystemModel::intel(), 20, 3);
        let enc = crate::pipeline::EncodedCorpus::build(&c, &spec()).unwrap();
        let sh = ShardedCorpus::builder(ShardSource::Corpus(&c), &spec())
            .shard_size(7)
            .build()
            .unwrap();
        assert_eq!(sh.len(), c.len());
        assert_eq!(sh.bench_fingerprints(), enc.bench_fingerprints());
        assert_eq!(sh.fingerprint(), enc.fingerprint());
        for bi in 0..c.len() {
            let shard = sh.shard(sh.layout().shard_of(bi)).unwrap();
            assert_eq!(shard.rel_times(bi).unwrap(), enc.rel_times(bi));
            assert_eq!(
                shard.profile(5, bi, 1).unwrap(),
                enc.profile(5, bi, 1).unwrap()
            );
            assert_eq!(
                shard.target(ReprKind::PearsonRnd, bi).unwrap(),
                enc.target(ReprKind::PearsonRnd, bi).unwrap()
            );
        }
        // Out-of-range access is rejected.
        let shard0 = sh.shard(0).unwrap();
        assert!(shard0.rel_times(55).is_err());
    }

    #[test]
    fn campaign_source_matches_collected_corpus() {
        let c = Corpus::collect(&SystemModel::amd(), 12, 9);
        let sh = ShardedCorpus::builder(
            ShardSource::Campaign(CampaignSource {
                system: SystemModel::amd(),
                n_benchmarks: 60,
                n_runs: 12,
                seed: 9,
            }),
            &spec(),
        )
        .shard_size(13)
        .build()
        .unwrap();
        let enc = crate::pipeline::EncodedCorpus::build(&c, &spec()).unwrap();
        assert_eq!(sh.fingerprint(), enc.fingerprint());
        assert_eq!(
            sh.ids(),
            &c.benchmarks.iter().map(|b| b.id).collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn resident_set_respects_budget() {
        let c = Corpus::collect(&SystemModel::intel(), 10, 1);
        let sh = ShardedCorpus::builder(ShardSource::Corpus(&c), &spec())
            .shard_size(6)
            .resident_shards(2)
            .build()
            .unwrap();
        assert_eq!(sh.layout().n_shards(), 10);
        assert_eq!(sh.resident_budget(), 2);
        assert!(sh.n_resident() <= 2);
        // Faulting shards in and out keeps the budget.
        for si in 0..sh.layout().n_shards() {
            sh.shard(si).unwrap();
            assert!(sh.n_resident() <= 2);
        }
        // An evicted shard recomputes bit-identically.
        let again = sh.shard(0).unwrap();
        assert_eq!(again.fingerprint(), sh.shard_fingerprints()[0]);
    }

    #[test]
    fn spill_round_trips_and_warm_restarts() {
        let dir = std::env::temp_dir().join(format!("pv-shard-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let c = Corpus::collect(&SystemModel::intel(), 10, 2);
        let sh = ShardedCorpus::builder(ShardSource::Corpus(&c), &spec())
            .shard_size(16)
            .spill_dir(&dir)
            .resident_shards(1)
            .build()
            .unwrap();
        let n_files = fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_files, sh.layout().n_shards());
        // Evict shard 0 (budget 1), then fault it back in: the spill
        // load must reproduce the exact build-time fingerprint.
        sh.shard(sh.layout().n_shards() - 1).unwrap();
        let reloaded = sh.shard(0).unwrap();
        assert_eq!(reloaded.fingerprint(), sh.shard_fingerprints()[0]);
        // Warm restart: a second build on the same dir loads, and agrees.
        let warm = ShardedCorpus::builder(ShardSource::Corpus(&c), &spec())
            .shard_size(16)
            .spill_dir(&dir)
            .build()
            .unwrap();
        assert_eq!(warm.fingerprint(), sh.fingerprint());
        assert_eq!(warm.shard_fingerprints(), sh.shard_fingerprints());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_spill_dir_is_typed_cache_io() {
        let file = std::env::temp_dir().join(format!("pv-shard-file-{}", std::process::id()));
        fs::write(&file, b"not a directory").unwrap();
        let c = Corpus::collect(&SystemModel::intel(), 5, 2);
        let err = ShardedCorpus::builder(ShardSource::Corpus(&c), &spec())
            .spill_dir(&file)
            .build()
            .err()
            .unwrap();
        assert_eq!(err.kind(), "cache-io");
        let _ = fs::remove_file(&file);
    }

    #[test]
    fn spec_digest_is_phrasing_independent() {
        let a = EncodingSpec::new()
            .profiles(5, 2)
            .target(ReprKind::Histogram);
        let b = EncodingSpec::new()
            .target(ReprKind::Histogram)
            .profiles(5, 2);
        let digest = |spec: &EncodingSpec| {
            let mut h = Fnv1a::new();
            spec.write_digest(&mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&b));
        assert_ne!(digest(&a), digest(&EncodingSpec::new().profiles(5, 2)));
    }
}
