//! Prediction baselines: what must a learned predictor beat?
//!
//! The paper motivates prediction by showing that few-sample empirical
//! distributions are unrepresentative (Fig. 1 b–e). These baselines make
//! that comparison quantitative for the whole corpus:
//!
//! * [`empirical_baseline`] — skip learning entirely: use the `s`
//!   measured runs *as* the distribution estimate. This is what a
//!   practitioner does today, and it is the economically meaningful
//!   baseline: prediction is only worth anything where it beats it.
//! * [`population_baseline`] — ignore the application entirely: predict
//!   the pooled distribution of all *other* benchmarks. Any profile-aware
//!   model must beat this, or the profiles carry no information.

use pv_stats::ks::ks2_statistic;
use pv_stats::StatsError;
use pv_sysmodel::Corpus;

use crate::eval::{BenchScore, EvalSummary};
use crate::pipeline::{EncodedCorpus, EncodingSpec};

/// KS of the `s`-run empirical distribution against the full measured
/// distribution, per benchmark.
///
/// # Errors
/// Fails when `s` is zero or exceeds the corpus run count.
pub fn empirical_baseline(corpus: &Corpus, s: usize) -> Result<EvalSummary, StatsError> {
    let enc = EncodedCorpus::build(corpus, &EncodingSpec::new())?;
    empirical_baseline_encoded(&enc, s)
}

/// [`empirical_baseline`] on a prebuilt cache (relative times are always
/// cached, so any [`EncodedCorpus`] works; sweeps over `s` share one).
///
/// # Errors
/// Same as [`empirical_baseline`].
pub fn empirical_baseline_encoded(
    enc: &EncodedCorpus,
    s: usize,
) -> Result<EvalSummary, StatsError> {
    let corpus = enc.corpus();
    if s == 0 || s > corpus.n_runs {
        return Err(StatsError::invalid(
            "empirical_baseline",
            format!("s = {s} outside [1, {}]", corpus.n_runs),
        ));
    }
    let scores = corpus
        .benchmarks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let rel = enc.rel_times(bi);
            let ks = ks2_statistic(&rel[..s], rel)?;
            Ok(BenchScore { id: b.id, ks })
        })
        .collect::<Result<Vec<_>, StatsError>>()?;
    EvalSummary::from_scores(scores)
}

/// KS of the pooled leave-one-out population distribution against each
/// benchmark's measured distribution.
///
/// To keep the pooled sample a manageable size it is thinned to at most
/// `max_pool` observations (deterministic striding).
///
/// # Errors
/// Fails on an empty corpus.
pub fn population_baseline(corpus: &Corpus, max_pool: usize) -> Result<EvalSummary, StatsError> {
    let enc = EncodedCorpus::build(corpus, &EncodingSpec::new())?;
    population_baseline_encoded(&enc, max_pool)
}

/// [`population_baseline`] on a prebuilt cache.
///
/// # Errors
/// Same as [`population_baseline`].
pub fn population_baseline_encoded(
    enc: &EncodedCorpus,
    max_pool: usize,
) -> Result<EvalSummary, StatsError> {
    let corpus = enc.corpus();
    if corpus.is_empty() {
        return Err(StatsError::EmptyInput {
            what: "population_baseline",
            needed: 1,
            got: 0,
        });
    }
    let scores = corpus
        .benchmarks
        .iter()
        .enumerate()
        .map(|(held, b)| {
            // Pool every other benchmark's relative times.
            let mut pool: Vec<f64> = Vec::new();
            for i in 0..corpus.len() {
                if i != held {
                    pool.extend_from_slice(enc.rel_times(i));
                }
            }
            let stride = (pool.len() / max_pool.max(1)).max(1);
            let thinned: Vec<f64> = pool.into_iter().step_by(stride).collect();
            let ks = ks2_statistic(&thinned, enc.rel_times(held))?;
            Ok(BenchScore { id: b.id, ks })
        })
        .collect::<Result<Vec<_>, StatsError>>()?;
    EvalSummary::from_scores(scores)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::evaluate_few_runs;
    use crate::usecase1::FewRunsConfig;
    use crate::{ModelKind, ReprKind};
    use pv_sysmodel::SystemModel;

    fn corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 100, 0xC0FFEE)
    }

    #[test]
    fn empirical_baseline_improves_with_more_runs() {
        let c = corpus();
        let few = empirical_baseline(&c, 3).unwrap();
        let many = empirical_baseline(&c, 50).unwrap();
        assert!(many.mean < few.mean, "{} !< {}", many.mean, few.mean);
    }

    #[test]
    fn empirical_baseline_validates_s() {
        let c = corpus();
        assert!(empirical_baseline(&c, 0).is_err());
        assert!(empirical_baseline(&c, 101).is_err());
        assert!(empirical_baseline(&c, 100).is_ok());
    }

    #[test]
    fn learned_predictor_beats_the_population_baseline() {
        let c = corpus();
        let pop = population_baseline(&c, 3000).unwrap();
        let cfg = FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: 10,
            profiles_per_benchmark: 1,
            seed: 1,
        };
        let learned = evaluate_few_runs(&c, cfg).unwrap();
        assert!(
            learned.mean < pop.mean,
            "learned {} !< population {}",
            learned.mean,
            pop.mean
        );
    }

    #[test]
    fn learned_predictor_beats_the_ten_run_empirical_baseline() {
        // The economic claim: with the same 10-run budget, prediction
        // should produce a better distribution estimate than the raw 10
        // runs do.
        let c = corpus();
        let raw = empirical_baseline(&c, 10).unwrap();
        let cfg = FewRunsConfig {
            repr: ReprKind::PearsonRnd,
            model: ModelKind::Knn,
            n_profile_runs: 10,
            profiles_per_benchmark: 1,
            seed: 1,
        };
        let learned = evaluate_few_runs(&c, cfg).unwrap();
        assert!(
            learned.mean < raw.mean + 0.02,
            "learned {} should be at least competitive with raw-10-runs {}",
            learned.mean,
            raw.mean
        );
    }

    #[test]
    fn population_baseline_is_worse_than_empirical_hundred() {
        // Using 100 of the application's own runs beats using everyone
        // else's distribution — the corpus is not degenerate.
        let c = corpus();
        let own = empirical_baseline(&c, 100).unwrap();
        let pop = population_baseline(&c, 3000).unwrap();
        assert!(own.mean < pop.mean);
    }
}
