//! Shared training/evaluation pipeline: encode once, slice per fold.
//!
//! Every evaluation in this crate is the same shape: a leave-one-group-out
//! loop whose folds differ only in *which rows* of a fixed feature/target
//! pool they train on. Profiles and representation encodings are RNG-free,
//! so they can be computed once per corpus and reused across folds (and
//! across grid cells sharing a corpus) without changing a single bit of
//! output. This module provides the two pieces:
//!
//! * [`EncodedCorpus`] — per-benchmark profiles (for each requested window
//!   setting) and per-representation target encodings, computed in
//!   parallel up front; folds become row slicing.
//! * [`FoldRunner`] — the LOGO scaffolding itself: include-set
//!   construction, per-fold seed derivation, optional standardization,
//!   model fit, representation decode, and KS scoring. Callers supply a
//!   row-assembly closure, which is the only part that differs between
//!   use case 1 (windowed profiles), use case 2 (profile ⊕ source
//!   encoding), and the kNN ablation variants.
//!
//! Both seed-derivation chains used in the crate are preserved exactly
//! (see [`SeedMode`]), so results are bit-identical to training each fold
//! from scratch, for any thread count.

use std::borrow::Cow;

use rand::SeedableRng;
use rayon::prelude::*;

use pv_ml::{Dataset, DenseMatrix, Regressor, StandardScaler};
use pv_stats::fingerprint::Fnv1a;
use pv_stats::ks::ks2_statistic_presorted;
use pv_stats::rng::{derive_stream, Xoshiro256pp};
use pv_stats::StatsError;
use pv_sysmodel::{BenchmarkData, BenchmarkId, Corpus, RunSet, SystemId};

use crate::eval::{BenchScore, EvalSummary};
use crate::profile::Profile;
use crate::repr::{DistributionRepr, ReprKind};

/// Per-benchmark content fingerprints of a corpus, roster order.
///
/// Each digest covers one benchmark's identity and every run's times and
/// metric readings, floats as IEEE-754 bit patterns. These are the exact
/// digests [`corpus_fingerprint`] folds together, exposed separately so
/// the incremental fold cache (see [`crate::incremental`]) can fingerprint
/// a fold's training set as the ordered list of its benchmarks' digests.
///
/// Hashing runs in parallel over benchmarks; rayon preserves order.
pub fn bench_fingerprints(corpus: &Corpus) -> Vec<u64> {
    (0..corpus.benchmarks.len())
        .into_par_iter()
        .map(|bi| bench_digest(&corpus.benchmarks[bi]))
        .collect()
}

/// One benchmark's content digest (identity + every run, bit-exact).
pub(crate) fn bench_digest(b: &BenchmarkData) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(&b.id.qualified());
    h.write_usize(b.runs.records.len());
    for r in &b.runs.records {
        h.write_f64(r.time_s);
        h.write_f64(r.rel_time);
        h.write_f64s(&r.metrics);
    }
    h.finish()
}

/// Folds campaign identity + per-benchmark digests into the corpus
/// fingerprint. Takes the identity fields directly so a
/// [`crate::shard::ShardedCorpus`] — which never materializes a `Corpus`
/// — can produce the exact same fingerprint as the monolithic path (and
/// hence share fold and cell caches with it).
pub(crate) fn corpus_digest_parts(
    system: SystemId,
    n_runs: usize,
    seed: u64,
    per_bench: &[u64],
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("pv-corpus-v1");
    h.write_str(system.short_name());
    h.write_usize(n_runs);
    h.write_u64(seed);
    h.write_usize(per_bench.len());
    for &d in per_bench {
        h.write_u64(d);
    }
    h.finish()
}

/// Folds per-benchmark digests into the corpus fingerprint.
fn fold_corpus_digest(corpus: &Corpus, per_bench: &[u64]) -> u64 {
    corpus_digest_parts(corpus.system, corpus.n_runs, corpus.seed, per_bench)
}

/// Stable content fingerprint of a corpus.
///
/// Covers everything an [`EncodedCorpus`] (and hence every evaluation)
/// can observe: the system, campaign shape, seed, and every run's times
/// and metric readings, all fed bit-exactly (floats as IEEE-754 bit
/// patterns) into FNV-1a. Two corpora fingerprint equal iff every
/// evaluation over them is bit-identical, so on-disk caches keyed by
/// this value can trust a hit and must discard a mismatch.
///
/// The per-benchmark hashing runs in parallel; benchmark digests are
/// folded in roster order, so the result is thread-count independent.
pub fn corpus_fingerprint(corpus: &Corpus) -> u64 {
    fold_corpus_digest(corpus, &bench_fingerprints(corpus))
}

/// What to precompute when building an [`EncodedCorpus`].
///
/// Requesting a superset is harmless (and how grids share one cache):
/// the builder methods are idempotent — duplicate entries merge instead
/// of accumulating, and window counts for the same `s` merge to the
/// maximum — so two specs requesting the same coverage compare equal no
/// matter how the requests were phrased.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EncodingSpec {
    profiles: Vec<(usize, usize)>,
    targets: Vec<ReprKind>,
    joined: Vec<(usize, ReprKind)>,
}

impl EncodingSpec {
    /// An empty spec (only relative times are cached). Identical to
    /// `EncodingSpec::default()`.
    pub fn new() -> Self {
        EncodingSpec::default()
    }

    /// Requests `windows` disjoint `s`-run window profiles per benchmark.
    ///
    /// Idempotent: repeated requests for the same `s` keep the maximum
    /// window count.
    pub fn profiles(mut self, s: usize, windows: usize) -> Self {
        let windows = windows.max(1);
        match self.profiles.iter_mut().find(|(t, _)| *t == s) {
            Some((_, w)) => *w = (*w).max(windows),
            None => self.profiles.push((s, windows)),
        }
        self
    }

    /// Requests the target encoding of every benchmark under `repr`.
    ///
    /// Idempotent: duplicate requests are no-ops.
    pub fn target(mut self, repr: ReprKind) -> Self {
        if !self.targets.contains(&repr) {
            self.targets.push(repr);
        }
        self
    }

    /// Requests joined rows — `s`-run profile ⊕ `repr` encoding — the
    /// feature layout of use case 2. Implies `profiles(s, 1)` and
    /// `target(repr)`.
    ///
    /// Idempotent: duplicate `(s, repr)` requests are no-ops, so nothing
    /// is ever double-encoded.
    pub fn joined(mut self, s: usize, repr: ReprKind) -> Self {
        if !self.joined.contains(&(s, repr)) {
            self.joined.push((s, repr));
        }
        self
    }

    /// Writes a canonical digest of the requested coverage into `h`.
    ///
    /// Entries are sorted first, so two specs with equal coverage digest
    /// equal no matter how the requests were phrased. Shard spill files
    /// key on this: a spilled shard is only reusable when it was encoded
    /// under the same coverage.
    pub(crate) fn write_digest(&self, h: &mut Fnv1a) {
        let mut profiles = self.profiles.clone();
        profiles.sort_unstable();
        h.write_usize(profiles.len());
        for (s, w) in profiles {
            h.write_usize(s);
            h.write_usize(w);
        }
        let mut targets: Vec<&str> = self.targets.iter().map(|k| k.name()).collect();
        targets.sort_unstable();
        h.write_usize(targets.len());
        for t in targets {
            h.write_str(t);
        }
        let mut joined: Vec<(usize, &str)> =
            self.joined.iter().map(|&(s, k)| (s, k.name())).collect();
        joined.sort_unstable();
        h.write_usize(joined.len());
        for (s, t) in joined {
            h.write_usize(s);
            h.write_str(t);
        }
    }

    /// The idempotent union of two specs: everything either requests.
    /// Grids merge their cells' specs with this so one encode pass
    /// covers the whole sweep.
    pub fn merge(mut self, other: &EncodingSpec) -> Self {
        for &(s, w) in &other.profiles {
            self = self.profiles(s, w);
        }
        for &k in &other.targets {
            self = self.target(k);
        }
        for &(s, k) in &other.joined {
            self = self.joined(s, k);
        }
        self
    }
}

/// A corpus with its fold-invariant features and targets precomputed.
///
/// Construction is parallel over benchmarks; everything computed here is
/// RNG-free, so the cache is a pure function of the corpus and spec.
/// One feature row per benchmark, roster order.
type BenchRows = Vec<Vec<f64>>;

/// Window profiles per benchmark: `[bench][window] -> features`.
type BenchWindows = Vec<Vec<Vec<f64>>>;

/// The encoded payload of a contiguous run of benchmarks — everything an
/// evaluation reads, keyed by *local* index. [`EncodedCorpus`] wraps one
/// block covering a whole corpus (local = global index);
/// [`crate::shard::EncodedShard`] wraps one block per benchmark range.
/// Both paths run the exact same per-benchmark encode, so sharding a
/// corpus never changes an encoded bit.
pub(crate) struct EncodedBlock {
    pub(crate) rel: Vec<Vec<f64>>,
    /// `rel` sorted ascending (`total_cmp`), cached once at encode time
    /// so every fold's KS scoring can take the allocation-free
    /// [`pv_stats::ks::ks2_statistic_presorted`] path. The KS statistic is
    /// an order-invariant of the input multisets, so scoring against the
    /// sorted copy is bit-identical to scoring against `rel`.
    pub(crate) rel_sorted: Vec<Vec<f64>>,
    /// `s` → per-benchmark window profiles.
    pub(crate) profiles: Vec<(usize, BenchWindows)>,
    /// Representation → per-benchmark target encoding.
    pub(crate) targets: Vec<(ReprKind, BenchRows)>,
    /// `(s, repr)` → per-benchmark joined row (profile ⊕ encoding).
    pub(crate) joined: Vec<((usize, ReprKind), BenchRows)>,
    /// Per-benchmark content digests. Hashing every run of every
    /// benchmark is the single most expensive step of an incremental
    /// evaluation (FNV-1a is byte-serial), so it happens once here —
    /// inside the parallel per-benchmark pass — not per eval call.
    pub(crate) bench_fps: Vec<u64>,
}

impl EncodedBlock {
    /// Precomputes everything the spec asks for over `benches`.
    ///
    /// # Errors
    /// Fails when a window setting does not fit `n_runs` or an encoding
    /// fails.
    pub(crate) fn build(
        benches: &[BenchmarkData],
        n_runs: usize,
        spec: &EncodingSpec,
    ) -> Result<Self, StatsError> {
        // Merge window requests: one entry per distinct s, max windows.
        let mut window_specs: Vec<(usize, usize)> = Vec::new();
        let mut add_windows =
            |s: usize, windows: usize| match window_specs.iter_mut().find(|(t, _)| *t == s) {
                Some((_, w)) => *w = (*w).max(windows),
                None => window_specs.push((s, windows)),
            };
        for &(s, windows) in &spec.profiles {
            add_windows(s, windows);
        }
        for &(s, _) in &spec.joined {
            add_windows(s, 1);
        }
        for &(s, windows) in &window_specs {
            if s == 0 {
                return Err(StatsError::invalid("EncodedCorpus", "profile window s = 0"));
            }
            if windows * s > n_runs {
                return Err(StatsError::invalid(
                    "EncodedCorpus",
                    format!("{windows} windows × {s} runs exceed the {n_runs}-run corpus"),
                ));
            }
        }

        // One repr instance per distinct kind mentioned anywhere.
        let mut kinds: Vec<ReprKind> = Vec::new();
        for &k in spec
            .targets
            .iter()
            .chain(spec.joined.iter().map(|(_, k)| k))
        {
            if !kinds.contains(&k) {
                kinds.push(k);
            }
        }
        let reprs: Vec<(ReprKind, Box<dyn DistributionRepr>)> =
            kinds.iter().map(|&k| (k, k.build())).collect();

        // Per-benchmark computation, parallel; rayon preserves order.
        struct BenchEnc {
            rel: Vec<f64>,
            profiles: Vec<Vec<Vec<f64>>>,
            targets: Vec<Vec<f64>>,
            fp: u64,
        }
        let n = benches.len();
        let per_bench: Result<Vec<BenchEnc>, StatsError> = (0..n)
            .into_par_iter()
            .map(|bi| {
                let bench = &benches[bi];
                let rel = bench.runs.rel_times();
                let mut profiles = Vec::with_capacity(window_specs.len());
                for &(s, windows) in &window_specs {
                    let mut per_window = Vec::with_capacity(windows);
                    for w in 0..windows {
                        // Same window construction as training always
                        // used: a fresh RunSet over records [w·s, (w+1)·s).
                        let window = RunSet {
                            bench: bench.id,
                            system: bench.runs.system,
                            records: bench.runs.records[w * s..(w + 1) * s].to_vec(),
                        };
                        per_window.push(Profile::from_runs(&window, s)?.features);
                    }
                    profiles.push(per_window);
                }
                let targets = reprs
                    .iter()
                    .map(|(_, r)| r.encode(&rel))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(BenchEnc {
                    rel,
                    profiles,
                    targets,
                    fp: bench_digest(bench),
                })
            })
            .collect();
        let per_bench = per_bench?;

        // Transpose bench-major results into key-major storage.
        let mut rel = Vec::with_capacity(n);
        let mut bench_fps = Vec::with_capacity(n);
        let mut profiles: Vec<(usize, Vec<Vec<Vec<f64>>>)> = window_specs
            .iter()
            .map(|&(s, _)| (s, Vec::with_capacity(n)))
            .collect();
        let mut targets: Vec<(ReprKind, Vec<Vec<f64>>)> =
            kinds.iter().map(|&k| (k, Vec::with_capacity(n))).collect();
        for be in per_bench {
            rel.push(be.rel);
            bench_fps.push(be.fp);
            for (slot, p) in profiles.iter_mut().zip(be.profiles) {
                slot.1.push(p);
            }
            for (slot, t) in targets.iter_mut().zip(be.targets) {
                slot.1.push(t);
            }
        }

        let rel_sorted = rel
            .iter()
            .map(|r| {
                let mut s = r.clone();
                s.sort_by(f64::total_cmp);
                s
            })
            .collect();
        let mut block = EncodedBlock {
            rel,
            rel_sorted,
            profiles,
            targets,
            joined: Vec::new(),
            bench_fps,
        };
        for &(s, kind) in &spec.joined {
            if block.joined.iter().any(|(key, _)| *key == (s, kind)) {
                continue;
            }
            let rows = (0..n)
                .map(|bi| {
                    let mut row = block.profile(s, bi, 0)?.to_vec();
                    row.extend_from_slice(block.target(kind, bi)?);
                    Ok(row)
                })
                .collect::<Result<Vec<_>, StatsError>>()?;
            block.joined.push(((s, kind), rows));
        }
        Ok(block)
    }

    /// Number of benchmarks in the block.
    pub(crate) fn len(&self) -> usize {
        self.rel.len()
    }

    /// Cached relative times of local benchmark `bi`.
    pub(crate) fn rel_times(&self, bi: usize) -> &[f64] {
        &self.rel[bi]
    }

    /// Cached *sorted* relative times of local benchmark `bi` — the
    /// truth side of the presorted KS fast path.
    pub(crate) fn rel_times_sorted(&self, bi: usize) -> &[f64] {
        &self.rel_sorted[bi]
    }

    /// Cached window-`w` profile of local benchmark `bi` for setting `s`.
    pub(crate) fn profile(&self, s: usize, bi: usize, w: usize) -> Result<&[f64], StatsError> {
        let (_, per_bench) = self.profiles.iter().find(|(t, _)| *t == s).ok_or_else(|| {
            StatsError::invalid("EncodedCorpus", format!("no profiles cached for s = {s}"))
        })?;
        let windows = per_bench
            .get(bi)
            .ok_or_else(|| StatsError::invalid("EncodedCorpus", "bad index"))?;
        windows.get(w).map(Vec::as_slice).ok_or_else(|| {
            StatsError::invalid(
                "EncodedCorpus",
                format!(
                    "window {w} not cached for s = {s} ({} cached)",
                    windows.len()
                ),
            )
        })
    }

    /// Cached target encoding of local benchmark `bi` under `repr`.
    pub(crate) fn target(&self, repr: ReprKind, bi: usize) -> Result<&[f64], StatsError> {
        let (_, per_bench) = self
            .targets
            .iter()
            .find(|(k, _)| *k == repr)
            .ok_or_else(|| {
                StatsError::invalid(
                    "EncodedCorpus",
                    format!("no targets cached for {}", repr.name()),
                )
            })?;
        per_bench
            .get(bi)
            .map(Vec::as_slice)
            .ok_or_else(|| StatsError::invalid("EncodedCorpus", "bad index"))
    }

    /// Cached joined row (profile ⊕ encoding) of local benchmark `bi`.
    pub(crate) fn joined(&self, s: usize, repr: ReprKind, bi: usize) -> Result<&[f64], StatsError> {
        let (_, per_bench) = self
            .joined
            .iter()
            .find(|(key, _)| *key == (s, repr))
            .ok_or_else(|| {
                StatsError::invalid(
                    "EncodedCorpus",
                    format!("no joined rows cached for (s = {s}, {})", repr.name()),
                )
            })?;
        per_bench
            .get(bi)
            .map(Vec::as_slice)
            .ok_or_else(|| StatsError::invalid("EncodedCorpus", "bad index"))
    }
}

pub struct EncodedCorpus<'c> {
    corpus: &'c Corpus,
    block: EncodedBlock,
}

impl<'c> EncodedCorpus<'c> {
    /// Precomputes everything the spec asks for.
    ///
    /// # Errors
    /// Fails when a window setting does not fit the corpus run count or
    /// an encoding fails.
    pub fn build(corpus: &'c Corpus, spec: &EncodingSpec) -> Result<Self, StatsError> {
        let _span = pv_obs::span!("pv.core.pipeline.encode_corpus", benches = corpus.len());
        let block = EncodedBlock::build(&corpus.benchmarks, corpus.n_runs, spec)?;
        Ok(EncodedCorpus { corpus, block })
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &'c Corpus {
        self.corpus
    }

    /// Cached per-benchmark content digests, roster order — the same
    /// values [`bench_fingerprints`] computes, hashed once at build time.
    pub fn bench_fingerprints(&self) -> &[u64] {
        &self.block.bench_fps
    }

    /// Cached corpus fingerprint — equals [`corpus_fingerprint`] on the
    /// underlying corpus without re-hashing every run.
    pub fn fingerprint(&self) -> u64 {
        fold_corpus_digest(self.corpus, &self.block.bench_fps)
    }

    /// Number of benchmarks.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// Whether the corpus has no benchmarks.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Cached relative times of benchmark `bi`.
    pub fn rel_times(&self, bi: usize) -> &[f64] {
        self.block.rel_times(bi)
    }

    /// Cached relative times of benchmark `bi`, sorted ascending — fold
    /// truths built from this (with `sorted: true`) let scoring use the
    /// allocation-free presorted KS path.
    pub fn rel_times_sorted(&self, bi: usize) -> &[f64] {
        self.block.rel_times_sorted(bi)
    }

    /// Cached window-`w` profile of benchmark `bi` for window setting `s`.
    ///
    /// # Errors
    /// Fails when `(s, w)` was not covered by the build spec or `bi` is
    /// out of range.
    pub fn profile(&self, s: usize, bi: usize, w: usize) -> Result<&[f64], StatsError> {
        self.block.profile(s, bi, w)
    }

    /// Cached target encoding of benchmark `bi` under `repr`.
    ///
    /// # Errors
    /// Fails when `repr` was not covered by the build spec or `bi` is out
    /// of range.
    pub fn target(&self, repr: ReprKind, bi: usize) -> Result<&[f64], StatsError> {
        self.block.target(repr, bi)
    }

    /// Cached joined row (profile ⊕ encoding) of benchmark `bi`.
    ///
    /// # Errors
    /// Fails when `(s, repr)` was not covered by the build spec or `bi`
    /// is out of range.
    pub fn joined(&self, s: usize, repr: ReprKind, bi: usize) -> Result<&[f64], StatsError> {
        self.block.joined(s, repr, bi)
    }
}

/// How per-fold seeds derive from the root seed.
///
/// Both chains predate this module; preserving them keeps every output
/// bit-identical to the per-fold training it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// The evaluation chain: fold seed = `derive_stream(root, held)`;
    /// models are built with the fold seed and decode uses
    /// `derive_stream(fold_seed, held)` (this is what per-fold
    /// `FewRunsPredictor::train` + `predict_distribution(…, held)` did).
    PerFold,
    /// The ablation chain: the fold seed is the root seed itself; decode
    /// uses `derive_stream(root, held)` and models ignore the seed.
    Shared,
}

/// Row consumer fed by a [`FoldView`]: `(x_row, y_row, group)` per
/// training row, in training order.
pub type RowSink<'s> = dyn FnMut(&[f64], &[f64], usize) -> Result<(), StatsError> + 's;

/// A streaming view over one fold's training rows.
///
/// The assemble closure declares the fold's shape up front and hands the
/// runner a visitor that yields `(x_row, y_row, group)` triples borrowed
/// from whatever cache backs the fold — an [`EncodedCorpus`], or one
/// resident [`crate::shard::EncodedShard`] at a time. The runner
/// materializes the fold matrix exactly once, while visiting; no
/// intermediate row-pointer vectors or full-matrix copies exist on the
/// hot path, monolithic or sharded.
pub struct FoldView<'a> {
    n_rows: usize,
    x_dim: usize,
    y_dim: usize,
    query: Vec<f64>,
    #[allow(clippy::type_complexity)]
    visit: Box<dyn FnOnce(&mut RowSink<'_>) -> Result<(), StatsError> + 'a>,
}

impl<'a> FoldView<'a> {
    /// A view declaring `n_rows` training rows of `x_dim` features and
    /// `y_dim` targets, the (unscaled) held-out query row, and the
    /// visitor that streams the rows.
    pub fn new(
        n_rows: usize,
        x_dim: usize,
        y_dim: usize,
        query: Vec<f64>,
        visit: impl FnOnce(&mut RowSink<'_>) -> Result<(), StatsError> + 'a,
    ) -> Self {
        FoldView {
            n_rows,
            x_dim,
            y_dim,
            query,
            visit: Box::new(visit),
        }
    }

    /// Declared number of training rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Declared feature width.
    pub fn x_dim(&self) -> usize {
        self.x_dim
    }

    /// Declared target width.
    pub fn y_dim(&self) -> usize {
        self.y_dim
    }

    /// The held-out query row (unscaled).
    pub fn query(&self) -> &[f64] {
        &self.query
    }

    /// Consumes the view, feeding every training row to `sink` in order.
    ///
    /// # Errors
    /// Propagates row-production and sink failures.
    pub fn visit_rows(self, sink: &mut RowSink<'_>) -> Result<(), StatsError> {
        (self.visit)(sink)
    }
}

/// Ground truth for scoring one fold.
pub struct FoldTruth<'a> {
    /// Identity reported in the per-benchmark score.
    pub id: BenchmarkId,
    /// Measured relative times the prediction is scored against.
    /// Borrowed on the monolithic path; owned on the sharded path (the
    /// backing shard may be evicted before scoring finishes).
    pub rel: Cow<'a, [f64]>,
    /// Whether `rel` is already sorted ascending (`total_cmp` order).
    /// When true, scoring skips the copy-and-sort of the truth side and
    /// feeds [`pv_stats::ks::ks2_statistic_presorted`] directly; the KS
    /// value is bit-identical either way (the statistic is an
    /// order-invariant of its input multisets).
    pub sorted: bool,
}

/// Generic leave-one-group-out fold runner.
///
/// Owns everything the folds share — include-set construction, seed
/// derivation, optional standardization, fit, decode, KS scoring — and
/// runs folds in parallel. Results are independent of thread count: fold
/// seeds derive from the fold index alone and rayon preserves order.
pub struct FoldRunner<'r> {
    /// Number of folds (= benchmarks; fold `i` holds out benchmark `i`).
    pub n_folds: usize,
    /// Root seed.
    pub seed: u64,
    /// Seed-derivation chain (see [`SeedMode`]).
    pub seed_mode: SeedMode,
    /// Whether to fit a [`StandardScaler`] on each fold's training rows.
    pub standardize: bool,
    /// Samples drawn when reconstructing the predicted distribution.
    pub n_samples: usize,
    /// Representation used to decode predicted feature vectors.
    pub repr: &'r dyn DistributionRepr,
}

/// One fold's training data, materialized and (optionally) standardized,
/// plus the transformed query row — everything that happens before a
/// model enters the picture.
///
/// Produced by [`FoldRunner::prepare_fold`]; consumed by
/// [`FoldRunner::score_fold`]. The incremental layer
/// (see [`crate::incremental`]) splits the fold here: it prepares a fold,
/// probes the cheap delta check against a cached fold entry, and only
/// pays for fit + decode + KS when the check fails.
pub struct PreparedFold {
    /// The fold's training set (scaled when the runner standardizes).
    pub data: Dataset,
    /// The held-out query row, transformed like the training rows.
    pub query: Vec<f64>,
    /// The fold's derived seed (see [`SeedMode`]).
    pub fold_seed: u64,
}

impl FoldRunner<'_> {
    /// The seed fold `held` trains and decodes with (see [`SeedMode`]).
    pub fn fold_seed(&self, held: usize) -> u64 {
        match self.seed_mode {
            SeedMode::PerFold => derive_stream(self.seed, held as u64),
            SeedMode::Shared => self.seed,
        }
    }

    /// Assembles and materializes fold `held`: include-set construction,
    /// row assembly via the caller's closure, optional standardization,
    /// and query transformation. No model is involved yet.
    ///
    /// # Errors
    /// Propagates assembly failures and rejects degenerate folds (empty
    /// or mismatched row sets).
    pub fn prepare_fold<'a, A>(&self, held: usize, assemble: &A) -> Result<PreparedFold, StatsError>
    where
        A: Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError>,
    {
        let include: Vec<usize> = (0..self.n_folds).filter(|&i| i != held).collect();
        let fold_seed = self.fold_seed(held);
        let view = assemble(held, include)?;
        if view.n_rows == 0 {
            // Without this, fitting below fails obscurely on an empty
            // fold — e.g. a single-benchmark corpus where the include
            // set is empty.
            return Err(StatsError::degenerate(
                "FoldRunner",
                format!("fold {held} has no training rows"),
            ));
        }
        let FoldView {
            n_rows,
            x_dim,
            y_dim,
            mut query,
            visit,
        } = view;
        // Each row is copied into the flat fold buffers exactly once,
        // straight from the backing cache; scaling happens in place
        // afterwards (`StandardScaler::fit` accumulates per-column
        // moments in the same row order `fit_rows` did on borrowed rows,
        // so fit-then-transform-in-place is bit-identical to the old
        // fit-on-borrows-then-copy).
        let mut x_flat = Vec::with_capacity(n_rows * x_dim);
        let mut y_flat = Vec::with_capacity(n_rows * y_dim);
        let mut groups = Vec::with_capacity(n_rows);
        let mut sink = |x_row: &[f64], y_row: &[f64], group: usize| {
            if x_row.len() != x_dim || y_row.len() != y_dim {
                return Err(StatsError::invalid(
                    "FoldRunner",
                    format!(
                        "fold {held} row {}: {}×{} features/targets, expected {x_dim}×{y_dim}",
                        groups.len(),
                        x_row.len(),
                        y_row.len()
                    ),
                ));
            }
            x_flat.extend_from_slice(x_row);
            y_flat.extend_from_slice(y_row);
            groups.push(group);
            Ok(())
        };
        visit(&mut sink)?;
        if groups.len() != n_rows {
            return Err(StatsError::invalid(
                "FoldRunner",
                format!(
                    "fold {held} visited {} rows, view declared {n_rows}",
                    groups.len()
                ),
            ));
        }
        let mut x = DenseMatrix::from_flat(n_rows, x_dim, x_flat)?;
        let scaler = if self.standardize {
            let mut sc = StandardScaler::new();
            sc.fit(&x)?;
            for r in 0..n_rows {
                sc.transform_row(x.row_mut(r))?;
            }
            Some(sc)
        } else {
            None
        };
        let y = DenseMatrix::from_flat(n_rows, y_dim, y_flat)?;
        let data = Dataset::new(x, y, groups)?;
        if let Some(sc) = &scaler {
            sc.transform_row(&mut query)?;
        }
        Ok(PreparedFold {
            data,
            query,
            fold_seed,
        })
    }

    /// Fits a fresh model on a prepared fold, decodes the prediction, and
    /// scores it against the truth — the expensive back half of a fold.
    ///
    /// # Errors
    /// Propagates fit/decode/scoring failures.
    pub fn score_fold<'a, M, T>(
        &self,
        held: usize,
        prepared: &PreparedFold,
        build_model: &M,
        truth: &T,
    ) -> Result<BenchScore, StatsError>
    where
        M: Fn(u64) -> Box<dyn Regressor>,
        T: Fn(usize) -> Result<FoldTruth<'a>, StatsError>,
    {
        let mut model = build_model(prepared.fold_seed);
        model.fit(&prepared.data)?;
        let predicted_features = model.predict(&prepared.query)?;
        let mut rng = Xoshiro256pp::seed_from_u64(derive_stream(prepared.fold_seed, held as u64));
        let mut predicted = self
            .repr
            .decode(&predicted_features, &mut rng, self.n_samples)?;
        // Sort the freshly-decoded sample once and use the presorted KS
        // sweep: same sort order (`total_cmp`) and same merge as
        // `ks2_statistic`, so the D value is bit-identical — but the
        // truth side (cached sorted in the encode block) is no longer
        // copied and re-sorted on every fold.
        predicted.sort_by(f64::total_cmp);
        let t = truth(held)?;
        let ks = if t.sorted {
            ks2_statistic_presorted(&predicted, &t.rel)?
        } else {
            let mut rel = t.rel.into_owned();
            rel.sort_by(f64::total_cmp);
            ks2_statistic_presorted(&predicted, &rel)?
        };
        Ok(BenchScore { id: t.id, ks })
    }

    /// Runs one fold end to end: prepare, fit, decode, score.
    ///
    /// # Errors
    /// Propagates assembly/fit/decode/scoring failures.
    pub fn run_fold<'a, M, A, T>(
        &self,
        held: usize,
        build_model: &M,
        assemble: &A,
        truth: &T,
    ) -> Result<BenchScore, StatsError>
    where
        M: Fn(u64) -> Box<dyn Regressor>,
        A: Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError>,
        T: Fn(usize) -> Result<FoldTruth<'a>, StatsError>,
    {
        let _fold_span = pv_obs::span!("pv.core.pipeline.fold", held = held);
        let prepared = self.prepare_fold(held, assemble)?;
        self.score_fold(held, &prepared, build_model, truth)
    }

    /// Runs all folds and aggregates the per-benchmark KS scores.
    ///
    /// `build_model` receives the fold seed; `assemble` receives the
    /// held-out index and the include set (all other indices, ascending)
    /// and returns the fold's training rows; `truth` supplies what fold
    /// `held` is scored against.
    ///
    /// # Errors
    /// Propagates assembly/fit/decode/scoring failures from any fold.
    pub fn run<'a, M, A, T>(
        &self,
        build_model: M,
        assemble: A,
        truth: T,
    ) -> Result<EvalSummary, StatsError>
    where
        M: Fn(u64) -> Box<dyn Regressor> + Send + Sync,
        A: Fn(usize, Vec<usize>) -> Result<FoldView<'a>, StatsError> + Send + Sync,
        T: Fn(usize) -> Result<FoldTruth<'a>, StatsError> + Send + Sync,
    {
        let _span = pv_obs::span!("pv.core.pipeline.logo_eval", folds = self.n_folds);
        let scores: Result<Vec<BenchScore>, StatsError> = (0..self.n_folds)
            .into_par_iter()
            .map(|held| self.run_fold(held, &build_model, &assemble, &truth))
            .collect();
        EvalSummary::from_scores(scores?)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_sysmodel::SystemModel;

    fn corpus() -> Corpus {
        Corpus::collect(&SystemModel::intel(), 30, 11)
    }

    #[test]
    fn cached_encodings_match_fresh_computation() {
        let c = corpus();
        let spec = EncodingSpec::new()
            .profiles(5, 3)
            .target(ReprKind::PearsonRnd)
            .target(ReprKind::Histogram)
            .joined(10, ReprKind::PearsonRnd);
        let enc = EncodedCorpus::build(&c, &spec).unwrap();
        for (bi, bench) in c.benchmarks.iter().enumerate() {
            let rel = bench.runs.rel_times();
            assert_eq!(enc.rel_times(bi), rel.as_slice());
            for kind in [ReprKind::PearsonRnd, ReprKind::Histogram] {
                let fresh = kind.build().encode(&rel).unwrap();
                assert_eq!(enc.target(kind, bi).unwrap(), fresh.as_slice());
            }
            // Window 0 equals a fresh head profile.
            let fresh = Profile::from_runs(&bench.runs, 5).unwrap().features;
            assert_eq!(enc.profile(5, bi, 0).unwrap(), fresh.as_slice());
            // Joined = 10-run profile ⊕ PearsonRnd encoding.
            let mut joined = Profile::from_runs(&bench.runs, 10).unwrap().features;
            joined.extend(ReprKind::PearsonRnd.build().encode(&rel).unwrap());
            assert_eq!(
                enc.joined(10, ReprKind::PearsonRnd, bi).unwrap(),
                joined.as_slice()
            );
        }
    }

    #[test]
    fn window_profiles_cover_disjoint_runs() {
        let c = corpus();
        let enc = EncodedCorpus::build(&c, &EncodingSpec::new().profiles(5, 3)).unwrap();
        // Windows of the same benchmark differ (different run slices)…
        assert_ne!(enc.profile(5, 0, 0).unwrap(), enc.profile(5, 0, 1).unwrap());
        // …and window 1 matches a profile built on that exact slice.
        let bench = &c.benchmarks[0];
        let window = RunSet {
            bench: bench.id,
            system: c.system,
            records: bench.runs.records[5..10].to_vec(),
        };
        let fresh = Profile::from_runs(&window, 5).unwrap().features;
        assert_eq!(enc.profile(5, 0, 1).unwrap(), fresh.as_slice());
    }

    #[test]
    fn build_validates_window_settings() {
        let c = corpus();
        assert!(EncodedCorpus::build(&c, &EncodingSpec::new().profiles(0, 1)).is_err());
        assert!(EncodedCorpus::build(&c, &EncodingSpec::new().profiles(16, 2)).is_err());
        assert!(EncodedCorpus::build(&c, &EncodingSpec::new().profiles(15, 2)).is_ok());
    }

    #[test]
    fn missing_cache_entries_error() {
        let c = corpus();
        let enc = EncodedCorpus::build(&c, &EncodingSpec::new().profiles(5, 1)).unwrap();
        assert!(enc.profile(7, 0, 0).is_err());
        assert!(enc.profile(5, 0, 1).is_err());
        assert!(enc.target(ReprKind::PearsonRnd, 0).is_err());
        assert!(enc.joined(5, ReprKind::PearsonRnd, 0).is_err());
        assert!(enc.profile(5, c.len(), 0).is_err());
    }

    #[test]
    fn duplicate_spec_entries_merge() {
        let c = corpus();
        let spec = EncodingSpec::new()
            .profiles(5, 2)
            .profiles(5, 3)
            .target(ReprKind::PearsonRnd)
            .target(ReprKind::PearsonRnd)
            .joined(5, ReprKind::PearsonRnd)
            .joined(5, ReprKind::PearsonRnd);
        let enc = EncodedCorpus::build(&c, &spec).unwrap();
        assert!(enc.profile(5, 0, 2).is_ok());
        assert!(enc.joined(5, ReprKind::PearsonRnd, 0).is_ok());
        assert_eq!(enc.block.targets.len(), 1);
        assert_eq!(enc.block.joined.len(), 1);
    }

    #[test]
    fn spec_builders_are_idempotent() {
        assert_eq!(EncodingSpec::new(), EncodingSpec::default());
        let once = EncodingSpec::new()
            .profiles(5, 3)
            .target(ReprKind::Histogram)
            .joined(10, ReprKind::PearsonRnd);
        let twice = EncodingSpec::new()
            .profiles(5, 2)
            .profiles(5, 3)
            .target(ReprKind::Histogram)
            .target(ReprKind::Histogram)
            .joined(10, ReprKind::PearsonRnd)
            .joined(10, ReprKind::PearsonRnd);
        assert_eq!(once, twice);
        // Distinct settings still accumulate.
        let two_s = EncodingSpec::new().profiles(5, 1).profiles(7, 1);
        assert_ne!(two_s, EncodingSpec::new().profiles(5, 1));
    }

    #[test]
    fn corpus_fingerprint_tracks_content() {
        let a = Corpus::collect(&SystemModel::intel(), 20, 11);
        let b = Corpus::collect(&SystemModel::intel(), 20, 11);
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        // Any observable difference — seed, run count, system — moves it.
        let other_seed = Corpus::collect(&SystemModel::intel(), 20, 12);
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&other_seed));
        let other_runs = Corpus::collect(&SystemModel::intel(), 21, 11);
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&other_runs));
        let other_sys = Corpus::collect(&SystemModel::amd(), 20, 11);
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&other_sys));
        // A single flipped bit in one run moves it too.
        let mut tampered = a.clone();
        tampered.benchmarks[17].runs.records[3].rel_time += 1e-12;
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&tampered));
    }

    #[test]
    fn prepare_fold_reads_each_row_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Five single-row groups; the view counts how many times the
        // runner pulls a row. Both the scaled and unscaled paths must
        // stream every training row exactly once — a second pass would
        // mean a full-matrix copy crept back onto the hot path.
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 1.0 + i as f64]).collect();
        let repr = ReprKind::PearsonRnd.build();
        for standardize in [false, true] {
            let visits = AtomicUsize::new(0);
            let runner = FoldRunner {
                n_folds: 5,
                seed: 1,
                seed_mode: SeedMode::PerFold,
                standardize,
                n_samples: 10,
                repr: repr.as_ref(),
            };
            let assemble = |held: usize, include: Vec<usize>| {
                let rows = &rows;
                let visits = &visits;
                Ok(FoldView::new(
                    include.len(),
                    2,
                    2,
                    rows[held].clone(),
                    move |sink: &mut RowSink<'_>| {
                        for &bi in &include {
                            visits.fetch_add(1, Ordering::Relaxed);
                            sink(&rows[bi], &rows[bi], bi)?;
                        }
                        Ok(())
                    },
                ))
            };
            let prepared = runner.prepare_fold(0, &assemble).unwrap();
            assert_eq!(
                visits.load(Ordering::Relaxed),
                4,
                "standardize={standardize}"
            );
            assert_eq!(prepared.query.len(), 2);
        }
    }

    #[test]
    fn prepare_fold_rejects_ragged_and_miscounted_views() {
        let repr = ReprKind::PearsonRnd.build();
        let runner = FoldRunner {
            n_folds: 3,
            seed: 1,
            seed_mode: SeedMode::PerFold,
            standardize: false,
            n_samples: 10,
            repr: repr.as_ref(),
        };
        // Ragged row.
        let ragged = |_held: usize, _include: Vec<usize>| {
            Ok(FoldView::new(
                2,
                2,
                1,
                vec![0.0, 0.0],
                |sink: &mut RowSink<'_>| {
                    sink(&[1.0, 2.0], &[3.0], 0)?;
                    sink(&[1.0], &[3.0], 1)
                },
            ))
        };
        assert!(runner.prepare_fold(0, &ragged).is_err());
        // Fewer rows than declared.
        let short = |_held: usize, _include: Vec<usize>| {
            Ok(FoldView::new(
                2,
                2,
                1,
                vec![0.0, 0.0],
                |sink: &mut RowSink<'_>| sink(&[1.0, 2.0], &[3.0], 0),
            ))
        };
        assert!(runner.prepare_fold(0, &short).is_err());
        // Empty fold is degenerate.
        let empty = |_held: usize, _include: Vec<usize>| {
            Ok(FoldView::new(
                0,
                2,
                1,
                vec![0.0, 0.0],
                |_sink: &mut RowSink<'_>| Ok(()),
            ))
        };
        assert!(runner.prepare_fold(0, &empty).is_err());
    }

    #[test]
    fn corpus_fingerprint_is_thread_count_independent() {
        let c = corpus();
        let baseline = corpus_fingerprint(&c);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(baseline, pool.install(|| corpus_fingerprint(&c)));
    }
}
