//! Text rendering of the paper's exhibits: KDE curves, overlay plots,
//! violin summaries, and CSV emission.
//!
//! The original paper plots with matplotlib; the reproduction renders the
//! same information as unicode block-art plus machine-readable CSV, so
//! every figure can be regenerated and inspected without a plotting
//! stack.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use pv_stats::kde::{Bandwidth, Kde};
use pv_stats::StatsError;

use crate::eval::EvalSummary;

/// Vertical-resolution glyphs for curve rendering.
const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Evaluates a KDE of `values` on a `width`-point grid over `[lo, hi]`.
///
/// # Errors
/// Fails on empty/non-finite input.
pub fn kde_curve(values: &[f64], lo: f64, hi: f64, width: usize) -> Result<Vec<f64>, StatsError> {
    let kde = Kde::fit(values, Bandwidth::Silverman)?;
    Ok(kde
        .grid(lo, hi, width.max(2))
        .into_iter()
        .map(|(_, y)| y)
        .collect())
}

/// Renders one density curve as a single sparkline row.
pub fn sparkline(curve: &[f64]) -> String {
    let max = curve.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    curve
        .iter()
        .map(|&y| BLOCKS[((y / max) * 8.0).round() as usize])
        .collect()
}

/// Renders a density curve as a multi-row block plot (`height` rows).
pub fn block_plot(curve: &[f64], height: usize) -> String {
    let height = height.max(1);
    let max = curve.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    let mut out = String::new();
    for row in (0..height).rev() {
        for &y in curve {
            let level = y / max * height as f64 - row as f64;
            let idx = (level * 8.0).clamp(0.0, 8.0) as usize;
            out.push(BLOCKS[idx]);
        }
        out.push('\n');
    }
    out
}

/// Renders measured and predicted distributions on a shared axis: two
/// sparkline rows plus an axis caption — the textual analogue of the
/// paper's Fig. 5/9 overlays.
///
/// # Errors
/// Fails when either sample is empty or non-finite.
pub fn overlay(
    actual: &[f64],
    predicted: &[f64],
    lo: f64,
    hi: f64,
    width: usize,
) -> Result<String, StatsError> {
    let a = kde_curve(actual, lo, hi, width)?;
    let p = kde_curve(predicted, lo, hi, width)?;
    let mut out = String::new();
    writeln!(out, "  measured : {}", sparkline(&a)).expect("string write");
    writeln!(out, "  predicted: {}", sparkline(&p)).expect("string write");
    writeln!(
        out,
        "             {:<w$.2}{:>6.2}",
        lo,
        hi,
        w = width.saturating_sub(6)
    )
    .expect("string write");
    Ok(out)
}

/// Renders a violin-style row for a set of KS scores: a sparkline of the
/// score KDE over `[0, 1]` plus the five-number summary.
///
/// # Errors
/// Fails on empty input.
pub fn violin_row(label: &str, scores: &[f64], width: usize) -> Result<String, StatsError> {
    let curve = kde_curve(scores, 0.0, 1.0, width)?;
    let spread = pv_stats::descriptive::FiveNumber::from_sample(scores)?;
    Ok(format!(
        "{label:<24} {} mean={:.3} med={:.3} iqr=[{:.3},{:.3}]",
        sparkline(&curve),
        scores.iter().sum::<f64>() / scores.len() as f64,
        spread.median,
        spread.q1,
        spread.q3,
    ))
}

/// Formats a grid of evaluation summaries (rows: labels) as an aligned
/// table with violin sparklines — the text rendition of Figs. 4/7.
///
/// # Errors
/// Fails when any summary has no scores.
pub fn summary_table(rows: &[(String, &EvalSummary)]) -> Result<String, StatsError> {
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:<44} {:>8} {:>8} {:>8}",
        "configuration", "KS violin (0..1)", "mean", "median", "q3"
    )
    .expect("string write");
    for (label, summary) in rows {
        let scores = summary.ks_values();
        let curve = kde_curve(&scores, 0.0, 1.0, 44)?;
        writeln!(
            out,
            "{:<24} {:<44} {:>8.3} {:>8.3} {:>8.3}",
            label,
            sparkline(&curve),
            summary.mean,
            summary.spread.median,
            summary.spread.q3,
        )
        .expect("string write");
    }
    Ok(out)
}

/// Writes rows of `f64` values as CSV with a header.
///
/// # Errors
/// Fails on I/O errors (wrapped as `InvalidParameter` to stay within the
/// workspace error type).
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: &[Vec<f64>],
    label_col: Option<&[String]>,
) -> Result<(), StatsError> {
    let to_err = |e: std::io::Error| StatsError::invalid("write_csv", e.to_string());
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(to_err)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(to_err)?);
    writeln!(f, "{}", header.join(",")).map_err(to_err)?;
    for (i, row) in rows.iter().enumerate() {
        let mut cells: Vec<String> = Vec::with_capacity(row.len() + 1);
        if let Some(labels) = label_col {
            cells.push(labels[i].clone());
        }
        cells.extend(row.iter().map(|v| format!("{v}")));
        writeln!(f, "{}", cells.join(",")).map_err(to_err)?;
    }
    f.flush().map_err(to_err)?;
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::{BenchScore, EvalSummary};
    use pv_sysmodel::suites;

    fn scores(vals: &[f64]) -> EvalSummary {
        let roster = suites::roster();
        EvalSummary::from_scores(
            vals.iter()
                .enumerate()
                .map(|(i, &ks)| BenchScore { id: roster[i], ks })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn kde_curve_has_requested_width() {
        let c = kde_curve(&[0.2, 0.3, 0.25, 0.4], 0.0, 1.0, 30).unwrap();
        assert_eq!(c.len(), 30);
        assert!(c.iter().all(|&y| y >= 0.0));
    }

    #[test]
    fn sparkline_peaks_where_density_peaks() {
        let c = vec![0.0, 0.1, 1.0, 0.1, 0.0];
        let s = sparkline(&c);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[2], '█');
        assert_eq!(chars[0], ' ');
    }

    #[test]
    fn block_plot_has_height_rows() {
        let c = vec![0.1, 0.5, 1.0, 0.5, 0.1];
        let p = block_plot(&c, 4);
        assert_eq!(p.lines().count(), 4);
        assert!(p.lines().all(|l| l.chars().count() == 5));
    }

    #[test]
    fn overlay_renders_two_rows_and_axis() {
        let a = vec![1.0, 1.01, 0.99, 1.02, 1.0, 0.98];
        let b = vec![1.05, 1.04, 1.06, 1.05, 1.03, 1.07];
        let o = overlay(&a, &b, 0.9, 1.2, 40).unwrap();
        assert_eq!(o.lines().count(), 3);
        assert!(o.contains("measured"));
        assert!(o.contains("predicted"));
    }

    #[test]
    fn violin_row_contains_statistics() {
        let r = violin_row("PearsonRnd+kNN", &[0.2, 0.25, 0.3, 0.22, 0.28], 30).unwrap();
        assert!(r.contains("PearsonRnd+kNN"));
        assert!(r.contains("mean=0.250"));
    }

    #[test]
    fn summary_table_lists_all_rows() {
        let s1 = scores(&[0.2, 0.3, 0.4]);
        let s2 = scores(&[0.1, 0.15, 0.2]);
        let t = summary_table(&[("a".into(), &s1), ("b".into(), &s2)]).unwrap();
        assert!(t.contains("configuration"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn csv_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("pv_core_report_test");
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["name", "x", "y"],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
            Some(&["a".into(), "b".into()]),
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("name,x,y\n"));
        assert!(text.contains("a,1,2"));
        assert!(text.contains("b,3,4"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
