//! Distribution representations: how a performance distribution becomes a
//! prediction target and how a predicted vector becomes a distribution.
//!
//! Section III-B2 considers three designs, all reproduced here:
//!
//! * [`HistogramRepr`] — the feature vector is the bin masses of a
//!   fixed-range histogram of relative time (a discretized PDF);
//!   reconstruction samples from the predicted histogram.
//! * [`MaxEntRepr`] ("PyMaxEnt") — the feature vector is the first four
//!   moments; reconstruction solves the maximum-entropy problem for a
//!   density with those moments.
//! * [`PearsonRepr`] ("PearsonRnd") — the feature vector is the same four
//!   moments; reconstruction draws random numbers from the Pearson-system
//!   member with those moments (MATLAB `pearsrnd`), then treats the draws
//!   as the distribution.
//!
//! All three implement [`DistributionRepr`]; predicted vectors coming out
//! of a regression model can be mildly invalid (negative bin masses,
//! infeasible moments) and every `decode` is written to degrade
//! gracefully rather than panic.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use pv_maxent::MaxEntDensity;
use pv_pearson::PearsonDist;
use pv_stats::histogram::Histogram;
use pv_stats::moments::MomentSummary;
use pv_stats::StatsError;

/// Relative-time range shared by all fixed-range encodings. Ground-truth
/// relative times concentrate near 1 (mean-normalized); [0.7, 1.5] covers
/// every mode structure the simulator produces, and real outliers clamp
/// into the edge bins exactly as the paper's fixed-range histograms do.
pub const REL_TIME_RANGE: (f64, f64) = (0.7, 1.5);

/// A distribution representation: encode samples → feature vector, decode
/// a (possibly predicted) feature vector → reconstructed sample set.
pub trait DistributionRepr: Send + Sync {
    /// Human-readable name used in reports ("Histogram", "PyMaxEnt",
    /// "PearsonRnd").
    fn name(&self) -> &'static str;

    /// Width of the feature vector.
    fn dim(&self) -> usize;

    /// Encodes a measured sample of relative times.
    ///
    /// # Errors
    /// Fails on empty or non-finite input.
    fn encode(&self, rel_times: &[f64]) -> Result<Vec<f64>, StatsError>;

    /// Decodes a feature vector into `n` reconstructed samples.
    ///
    /// # Errors
    /// Fails when the vector has the wrong width or is beyond repair
    /// (e.g. all-zero histogram masses).
    fn decode(
        &self,
        features: &[f64],
        rng: &mut dyn RngCore,
        n: usize,
    ) -> Result<Vec<f64>, StatsError>;
}

/// Which representation to use — the unit of comparison in Figs. 4 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReprKind {
    /// Discretized PDF.
    Histogram,
    /// Moments + maximum-entropy reconstruction.
    PyMaxEnt,
    /// Moments + Pearson-system sampling.
    PearsonRnd,
}

impl ReprKind {
    /// All three representations, in the paper's presentation order.
    pub const ALL: [ReprKind; 3] = [
        ReprKind::Histogram,
        ReprKind::PyMaxEnt,
        ReprKind::PearsonRnd,
    ];

    /// Instantiates the representation with its default configuration.
    pub fn build(&self) -> Box<dyn DistributionRepr> {
        match self {
            ReprKind::Histogram => Box::new(HistogramRepr::default()),
            ReprKind::PyMaxEnt => Box::new(MaxEntRepr::default()),
            ReprKind::PearsonRnd => Box::new(PearsonRepr),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ReprKind::Histogram => "Histogram",
            ReprKind::PyMaxEnt => "PyMaxEnt",
            ReprKind::PearsonRnd => "PearsonRnd",
        }
    }
}

impl std::str::FromStr for ReprKind {
    type Err = StatsError;

    /// Parses a display name case-insensitively (`"histogram"`,
    /// `"pymaxent"` / `"maxent"`, `"pearsonrnd"` / `"pearson"`), as used
    /// by the `repro sweep` command line.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "histogram" | "hist" => Ok(ReprKind::Histogram),
            "pymaxent" | "maxent" => Ok(ReprKind::PyMaxEnt),
            "pearsonrnd" | "pearson" => Ok(ReprKind::PearsonRnd),
            _ => Err(StatsError::invalid(
                "ReprKind::from_str",
                format!(
                    "unknown representation {s:?} (expected Histogram, PyMaxEnt, or PearsonRnd)"
                ),
            )),
        }
    }
}

/// Histogram representation: bin masses over [`REL_TIME_RANGE`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramRepr {
    /// Number of bins.
    pub n_bins: usize,
    /// Fixed range of the relative-time axis.
    pub range: (f64, f64),
}

impl Default for HistogramRepr {
    fn default() -> Self {
        HistogramRepr {
            n_bins: 15,
            range: REL_TIME_RANGE,
        }
    }
}

impl DistributionRepr for HistogramRepr {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn dim(&self) -> usize {
        self.n_bins
    }

    fn encode(&self, rel_times: &[f64]) -> Result<Vec<f64>, StatsError> {
        if rel_times.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "HistogramRepr::encode",
                needed: 1,
                got: 0,
            });
        }
        let h =
            Histogram::from_data_with_range(rel_times, self.range.0, self.range.1, self.n_bins)?;
        Ok(h.probabilities())
    }

    fn decode(
        &self,
        features: &[f64],
        rng: &mut dyn RngCore,
        n: usize,
    ) -> Result<Vec<f64>, StatsError> {
        if features.len() != self.n_bins {
            return Err(StatsError::invalid(
                "HistogramRepr::decode",
                format!("expected {} bins, got {}", self.n_bins, features.len()),
            ));
        }
        // `from_masses` clips negative / NaN masses from the regressor.
        let h = Histogram::from_masses(features, self.range.0, self.range.1)?;
        Ok(h.sample_n(rng, n))
    }
}

/// Shared moment encoding for the two moment-based representations.
fn encode_moments(rel_times: &[f64]) -> Result<Vec<f64>, StatsError> {
    Ok(MomentSummary::from_sample(rel_times)?.to_vec())
}

fn summary_from_features(
    features: &[f64],
    what: &'static str,
) -> Result<MomentSummary, StatsError> {
    if features.len() != 4 {
        return Err(StatsError::invalid(
            what,
            format!("expected 4 moments, got {}", features.len()),
        ));
    }
    let mut s = MomentSummary::from_vec(features)?;
    if !s.mean.is_finite() || !s.std.is_finite() {
        return Err(StatsError::NonFinite { what });
    }
    // Regressors can predict a (slightly) negative spread.
    if s.std < 1e-6 {
        s.std = 1e-6;
    }
    Ok(s.clamped_feasible(1e-3))
}

/// Maximum-entropy representation ("PyMaxEnt").
///
/// Like PyMaxEnt's continuous reconstruction, the support is derived from
/// the moments themselves: `[μ − kσ, μ + kσ]` with `k =`
/// [`MaxEntRepr::support_sigmas`]. This is the representation's honest
/// weak spot — when the predicted σ understates the true spread (tight
/// neighbour consensus, far-out modes, long tails), real probability mass
/// falls outside the assumed support and the reconstruction cannot ever
/// recover it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxEntRepr {
    /// Half-width of the reconstruction support in predicted standard
    /// deviations.
    pub support_sigmas: f64,
}

impl Default for MaxEntRepr {
    fn default() -> Self {
        MaxEntRepr {
            support_sigmas: 3.5,
        }
    }
}

impl DistributionRepr for MaxEntRepr {
    fn name(&self) -> &'static str {
        "PyMaxEnt"
    }

    fn dim(&self) -> usize {
        4
    }

    fn encode(&self, rel_times: &[f64]) -> Result<Vec<f64>, StatsError> {
        encode_moments(rel_times)
    }

    fn decode(
        &self,
        features: &[f64],
        rng: &mut dyn RngCore,
        n: usize,
    ) -> Result<Vec<f64>, StatsError> {
        let s = summary_from_features(features, "MaxEntRepr::decode")?;
        // Moment-derived support, as PyMaxEnt assumes for continuous
        // reconstructions.
        let k = self.support_sigmas.max(1.5);
        let lo = s.mean - k * s.std;
        let hi = s.mean + k * s.std;
        if let Ok(d) = MaxEntDensity::from_summary(&s, (lo, hi)) {
            return Ok(d.sample_n(rng, n));
        }
        // The four-moment problem has no solution on this support (tail
        // moments a bounded density cannot carry, or Newton divergence —
        // the same failure modes PyMaxEnt exhibits). Degrade by dropping
        // constraints: the two-moment max-ent density (a truncated
        // Gaussian), and as a last resort the zero-constraint one (the
        // uniform density on the support).
        let mu = pv_maxent::central_to_raw_moments(&s);
        if let Ok(d) = MaxEntDensity::from_raw_moments(&mu[..3], (lo, hi)) {
            return Ok(d.sample_n(rng, n));
        }
        Ok((0..n)
            .map(|_| {
                use rand::Rng;
                lo + (hi - lo) * rng.gen::<f64>()
            })
            .collect())
    }
}

/// Pearson-system representation ("PearsonRnd").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PearsonRepr;

impl DistributionRepr for PearsonRepr {
    fn name(&self) -> &'static str {
        "PearsonRnd"
    }

    fn dim(&self) -> usize {
        4
    }

    fn encode(&self, rel_times: &[f64]) -> Result<Vec<f64>, StatsError> {
        encode_moments(rel_times)
    }

    fn decode(
        &self,
        features: &[f64],
        rng: &mut dyn RngCore,
        n: usize,
    ) -> Result<Vec<f64>, StatsError> {
        let s = summary_from_features(features, "PearsonRepr::decode")?;
        let d = PearsonDist::fit(s)?;
        Ok(d.sample_n(rng, n))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pv_stats::ks::ks2_statistic;
    use pv_stats::rng::Xoshiro256pp;
    use pv_stats::samplers::{Normal, Sampler};
    use rand::SeedableRng;

    fn normal_sample(n: usize, seed: u64) -> Vec<f64> {
        let d = Normal::new(1.0, 0.03).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        d.sample_n(&mut rng, n)
    }

    #[test]
    fn display_names_parse_back() {
        for kind in ReprKind::ALL {
            assert_eq!(kind.name().parse::<ReprKind>().unwrap(), kind);
        }
        assert_eq!("maxent".parse::<ReprKind>().unwrap(), ReprKind::PyMaxEnt);
        assert!("spline".parse::<ReprKind>().is_err());
    }

    #[test]
    fn all_kinds_roundtrip_a_normal_distribution() {
        // encode → decode of a measured sample must approximately recover
        // the distribution (KS below 0.1 with 1000-vs-1000 samples).
        let xs = normal_sample(1000, 1);
        for kind in ReprKind::ALL {
            let repr = kind.build();
            let f = repr.encode(&xs).unwrap();
            assert_eq!(f.len(), repr.dim(), "{}", repr.name());
            let mut rng = Xoshiro256pp::seed_from_u64(2);
            let ys = repr.decode(&f, &mut rng, 1000).unwrap();
            let ks = ks2_statistic(&xs, &ys).unwrap();
            assert!(ks < 0.1, "{}: KS = {ks}", repr.name());
        }
    }

    #[test]
    fn histogram_preserves_bimodality_but_moments_cannot() {
        // Bimodal sample: two tight modes.
        let mut xs = Vec::new();
        let d1 = Normal::new(0.97, 0.004).unwrap();
        let d2 = Normal::new(1.07, 0.004).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        xs.extend(d1.sample_n(&mut rng, 700));
        xs.extend(d2.sample_n(&mut rng, 300));

        // A fine-grained histogram can always out-resolve a four-moment
        // family on *true* bin masses; use explicit high resolution so the
        // property is about representation capability, not the default
        // bin count (which trades resolution against predictability).
        let hist: Box<dyn DistributionRepr> = Box::new(HistogramRepr {
            n_bins: 40,
            range: REL_TIME_RANGE,
        });
        let pear = ReprKind::PearsonRnd.build();
        let fh = hist.encode(&xs).unwrap();
        let fp = pear.encode(&xs).unwrap();
        let mut r1 = Xoshiro256pp::seed_from_u64(4);
        let mut r2 = Xoshiro256pp::seed_from_u64(4);
        let yh = hist.decode(&fh, &mut r1, 1000).unwrap();
        let yp = pear.decode(&fp, &mut r2, 1000).unwrap();
        let ks_h = ks2_statistic(&xs, &yh).unwrap();
        let ks_p = ks2_statistic(&xs, &yp).unwrap();
        // The histogram sees the modes; a four-moment family cannot
        // (given *true* moments — the paper's advantage for PearsonRnd
        // comes from moments being easier to *predict*).
        assert!(ks_h < ks_p, "hist {ks_h} vs pearson {ks_p}");
    }

    #[test]
    fn histogram_decode_tolerates_negative_masses() {
        let repr = HistogramRepr::default();
        let mut f = vec![0.0; repr.n_bins];
        f[10] = 0.5;
        f[11] = -0.2; // regression artifact
        f[12] = 0.5;
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let ys = repr.decode(&f, &mut rng, 500).unwrap();
        assert_eq!(ys.len(), 500);
        assert!(ys.iter().all(|&y| (0.7..=1.5).contains(&y)));
    }

    #[test]
    fn moment_reprs_tolerate_infeasible_predictions() {
        for kind in [ReprKind::PyMaxEnt, ReprKind::PearsonRnd] {
            let repr = kind.build();
            // skew² + 1 > kurtosis: impossible moments.
            let f = vec![1.0, 0.05, 2.0, 2.0];
            let mut rng = Xoshiro256pp::seed_from_u64(6);
            let ys = repr.decode(&f, &mut rng, 200).unwrap();
            assert_eq!(ys.len(), 200, "{}", repr.name());
            assert!(ys.iter().all(|y| y.is_finite()));
        }
    }

    #[test]
    fn moment_reprs_tolerate_negative_std() {
        for kind in [ReprKind::PyMaxEnt, ReprKind::PearsonRnd] {
            let repr = kind.build();
            let f = vec![1.0, -0.01, 0.0, 3.0];
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            assert!(repr.decode(&f, &mut rng, 100).is_ok(), "{}", repr.name());
        }
    }

    #[test]
    fn wrong_width_features_error() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        assert!(HistogramRepr::default()
            .decode(&[0.1, 0.2], &mut rng, 10)
            .is_err());
        assert!(PearsonRepr.decode(&[1.0, 0.1], &mut rng, 10).is_err());
        assert!(MaxEntRepr::default().decode(&[1.0], &mut rng, 10).is_err());
    }

    #[test]
    fn encode_rejects_empty_input() {
        for kind in ReprKind::ALL {
            assert!(kind.build().encode(&[]).is_err());
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(ReprKind::Histogram.name(), "Histogram");
        assert_eq!(ReprKind::PyMaxEnt.name(), "PyMaxEnt");
        assert_eq!(ReprKind::PearsonRnd.name(), "PearsonRnd");
        for kind in ReprKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn maxent_fallback_path_produces_clamped_normal() {
        let repr = MaxEntRepr::default();
        // Extreme kurtosis that max-ent on a narrow support cannot honor.
        let f = vec![1.0, 0.02, 0.0, 500.0];
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let ys = repr.decode(&f, &mut rng, 400).unwrap();
        assert!(ys.iter().all(|&y| (0.7..=1.5).contains(&y)));
    }
}
