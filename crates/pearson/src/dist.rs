//! Fitting, sampling, and density evaluation for Pearson distributions.
//!
//! Everything is done in two coordinate systems: the family parameters are
//! recovered for the *standardized* variable (zero mean, unit variance,
//! target skewness/kurtosis) exactly as MATLAB's `pearsrnd` does, and the
//! public API shifts/scales back to the caller's mean and standard
//! deviation.

use rand::Rng;

use pv_stats::moments::MomentSummary;
use pv_stats::samplers::{standard_normal, Beta, Gamma, Sampler};
use pv_stats::special::{ln_beta, ln_gamma};
use pv_stats::StatsError;

use crate::classify::{classify, pearson_coeffs, PearsonType};
use crate::Result;

/// Number of grid points used by the type IV inverse-CDF sampler.
const TYPE4_GRID: usize = 4096;

/// Standardized-family parameters, one variant per Pearson type.
#[derive(Debug, Clone)]
enum StdKind {
    /// Point mass at zero (σ = 0 input).
    Degenerate,
    /// Standard normal.
    Normal,
    /// Beta(p, q) stretched onto `[a1, a2]` (types I and II).
    BetaOn { a1: f64, a2: f64, p: f64, q: f64 },
    /// `sign · (Gamma(shape, 1) − shape) / √shape` (type III).
    GammaShifted { shape: f64, sign: f64 },
    /// Type IV: density ∝ `[1+((x−λ)/a)²]^{−m} e^{−ν arctan((x−λ)/a)}`,
    /// sampled by inverse CDF on the compact angle substitution
    /// `φ = arctan((x−λ)/a)`.
    TypeIv {
        m: f64,
        nu: f64,
        a: f64,
        lambda: f64,
        /// Precomputed CDF grid over φ ∈ (−π/2, π/2): (φ, CDF(φ)).
        grid: Vec<(f64, f64)>,
        /// Normalization constant of the φ-space density.
        norm: f64,
    },
    /// Inverse gamma: `x = scale / Gamma(shape, 1) − shift` (type V).
    InvGamma { shape: f64, scale: f64, shift: f64 },
    /// Beta-prime: `x = sign · (a2 + (a2 − a1) · W)`, `W ~ β′(α, β)`
    /// (type VI).
    BetaPrime {
        a1: f64,
        a2: f64,
        alpha: f64,
        beta: f64,
        sign: f64,
    },
    /// Scaled Student-t: `x = √((ν−2)/ν) · t_ν` (type VII).
    ScaledT { nu: f64 },
}

/// A fitted Pearson-system distribution in the caller's coordinates.
///
/// Fit via [`PearsonDist::fit`]; then [`PearsonDist::sample_n`] is the
/// `pearsrnd` call and [`PearsonDist::pdf`] evaluates the density (used by
/// tests and plotting).
#[derive(Debug, Clone)]
pub struct PearsonDist {
    mean: f64,
    std: f64,
    ptype: PearsonType,
    kind: StdKind,
}

impl PearsonDist {
    /// Fits the Pearson family member with the given four moments.
    ///
    /// Infeasible specifications (kurtosis below the hard bound
    /// `skew² + 1`) are projected to the closest feasible point first —
    /// regression models routinely predict such vectors and the pipeline
    /// must still reconstruct a distribution.
    ///
    /// # Errors
    /// Fails when the moments are non-finite.
    pub fn fit(spec: MomentSummary) -> Result<Self> {
        if !(spec.mean.is_finite()
            && spec.std.is_finite()
            && spec.skewness.is_finite()
            && spec.kurtosis.is_finite())
        {
            return Err(StatsError::NonFinite {
                what: "PearsonDist::fit",
            });
        }
        let spec = spec.clamped_feasible(1e-3);
        let ptype = classify(&spec);
        let kind = match ptype {
            PearsonType::Degenerate => StdKind::Degenerate,
            PearsonType::Zero => StdKind::Normal,
            PearsonType::I | PearsonType::II => fit_beta_on(&spec)?,
            PearsonType::III => StdKind::GammaShifted {
                shape: 4.0 / (spec.skewness * spec.skewness),
                sign: spec.skewness.signum(),
            },
            PearsonType::IV => fit_type_iv(&spec)?,
            PearsonType::V => fit_type_v(&spec)?,
            PearsonType::VI => fit_type_vi(&spec)?,
            PearsonType::VII => StdKind::ScaledT {
                nu: 4.0 + 6.0 / (spec.kurtosis - 3.0),
            },
        };
        Ok(PearsonDist {
            mean: spec.mean,
            std: spec.std,
            ptype,
            kind,
        })
    }

    /// The Pearson type the moments classified into.
    pub fn pearson_type(&self) -> PearsonType {
        self.ptype
    }

    /// Target mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Target standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * self.sample_std(rng)
    }

    /// Draws `n` variates — the `pearsrnd(mu, sigma, skew, kurt, n, 1)`
    /// equivalent.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Density at `x` in the caller's coordinates. The degenerate
    /// distribution reports `+∞` at its atom and 0 elsewhere.
    pub fn pdf(&self, x: f64) -> f64 {
        if matches!(self.kind, StdKind::Degenerate) {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std;
        self.pdf_std(z) / self.std
    }

    fn sample_std<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match &self.kind {
            StdKind::Degenerate => 0.0,
            StdKind::Normal => standard_normal(rng),
            StdKind::BetaOn { a1, a2, p, q } => {
                let b = Beta {
                    alpha: *p,
                    beta: *q,
                };
                a1 + (a2 - a1) * b.sample(rng)
            }
            StdKind::GammaShifted { shape, sign } => {
                let g = Gamma {
                    shape: *shape,
                    scale: 1.0,
                };
                sign * (g.sample(rng) - shape) / shape.sqrt()
            }
            StdKind::TypeIv {
                a, lambda, grid, ..
            } => {
                let u: f64 = rng.gen();
                let phi = inverse_cdf_grid(grid, u);
                lambda + a * phi.tan()
            }
            StdKind::InvGamma {
                shape,
                scale,
                shift,
            } => {
                let g = Gamma {
                    shape: *shape,
                    scale: 1.0,
                };
                let z = g.sample(rng).max(1e-300);
                scale / z - shift
            }
            StdKind::BetaPrime {
                a1,
                a2,
                alpha,
                beta,
                sign,
            } => {
                let gx = Gamma {
                    shape: *alpha,
                    scale: 1.0,
                }
                .sample(rng);
                let gy = Gamma {
                    shape: *beta,
                    scale: 1.0,
                }
                .sample(rng)
                .max(1e-300);
                let w = gx / gy;
                sign * (a2 + (a2 - a1) * w)
            }
            StdKind::ScaledT { nu } => {
                let z = standard_normal(rng);
                let w = Gamma {
                    shape: nu / 2.0,
                    scale: 2.0,
                }
                .sample(rng)
                .max(1e-300);
                ((nu - 2.0) / nu).sqrt() * z / (w / nu).sqrt()
            }
        }
    }

    /// Standardized density.
    fn pdf_std(&self, z: f64) -> f64 {
        match &self.kind {
            StdKind::Degenerate => 0.0,
            StdKind::Normal => pv_stats::special::normal_pdf(z),
            StdKind::BetaOn { a1, a2, p, q } => {
                if z <= *a1 || z >= *a2 {
                    return 0.0;
                }
                let u = (z - a1) / (a2 - a1);
                let ln_pdf = (p - 1.0) * u.ln() + (q - 1.0) * (1.0 - u).ln()
                    - ln_beta(*p, *q)
                    - (a2 - a1).ln();
                ln_pdf.exp()
            }
            StdKind::GammaShifted { shape, sign } => {
                // y = shape + sign·z·√shape ~ Gamma(shape, 1)
                let y = shape + sign * z * shape.sqrt();
                if y <= 0.0 {
                    return 0.0;
                }
                let ln_pdf = (shape - 1.0) * y.ln() - y - ln_gamma(*shape);
                ln_pdf.exp() * shape.sqrt()
            }
            StdKind::TypeIv {
                m,
                nu,
                a,
                lambda,
                norm,
                ..
            } => {
                let t = (z - lambda) / a;
                let ln_pdf = -m * (1.0 + t * t).ln() - nu * t.atan();
                ln_pdf.exp() / (norm * a)
            }
            StdKind::InvGamma {
                shape,
                scale,
                shift,
            } => {
                // z = scale/y − shift with y ~ Gamma(shape, 1)
                let y = scale / (z + shift);
                if y <= 0.0 {
                    return 0.0;
                }
                let ln_gpdf = (shape - 1.0) * y.ln() - y - ln_gamma(*shape);
                // |dy/dz| = scale/(z+shift)² = y²/scale
                ln_gpdf.exp() * y * y / scale.abs()
            }
            StdKind::BetaPrime {
                a1,
                a2,
                alpha,
                beta,
                sign,
            } => {
                let zz = sign * z;
                let w = (zz - a2) / (a2 - a1);
                if w <= 0.0 {
                    return 0.0;
                }
                let ln_pdf = (alpha - 1.0) * w.ln()
                    - (alpha + beta) * (1.0 + w).ln()
                    - ln_beta(*alpha, *beta)
                    - (a2 - a1).ln();
                ln_pdf.exp()
            }
            StdKind::ScaledT { nu } => {
                let s = ((nu - 2.0) / nu).sqrt();
                let t = z / s;
                let ln_pdf = ln_gamma((nu + 1.0) / 2.0)
                    - ln_gamma(nu / 2.0)
                    - 0.5 * (nu * std::f64::consts::PI).ln()
                    - (nu + 1.0) / 2.0 * (1.0 + t * t / nu).ln();
                ln_pdf.exp() / s
            }
        }
    }
}

/// Types I and II: roots of the Pearson quadratic give the support, the
/// partial-fraction exponents give the beta shapes.
fn fit_beta_on(spec: &MomentSummary) -> Result<StdKind> {
    let (b0, b1, b2, denom) = pearson_coeffs(spec.skewness, spec.kurtosis);
    let disc = b1 * b1 - 4.0 * b0 * b2;
    if disc <= 0.0 || b2 == 0.0 {
        return Err(StatsError::invalid(
            "PearsonDist::fit(type I)",
            format!("no real roots: b=({b0}, {b1}, {b2})"),
        ));
    }
    let sq = disc.sqrt();
    let r1 = (-b1 - sq) / (2.0 * b2);
    let r2 = (-b1 + sq) / (2.0 * b2);
    let (a1, a2) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
    // Denominator-free exponent formulas: mᵢ = (b1 + aᵢ·denom)/(b2·span).
    // Exact for every (β₁, β₂), including the denom = 0 line the uniform
    // distribution sits on.
    let span = a2 - a1;
    let m1 = (b1 + a1 * denom) / (b2 * span);
    let m2 = -(b1 + a2 * denom) / (b2 * span);
    // Beta shapes; exponents can graze −1 near the feasibility boundary,
    // clamp to keep the sampler valid.
    let p = (m1 + 1.0).max(1e-4);
    let q = (m2 + 1.0).max(1e-4);
    Ok(StdKind::BetaOn { a1, a2, p, q })
}

/// Type IV: Heinrich's parametrization plus a precomputed inverse-CDF grid
/// on the angle substitution.
fn fit_type_iv(spec: &MomentSummary) -> Result<StdKind> {
    let beta1 = spec.skewness * spec.skewness;
    let beta2 = spec.kurtosis;
    let denom = 2.0 * beta2 - 3.0 * beta1 - 6.0;
    let r = 6.0 * (beta2 - beta1 - 1.0) / denom;
    let m = 1.0 + r / 2.0;
    let disc = 16.0 * (r - 1.0) - beta1 * (r - 2.0) * (r - 2.0);
    if disc <= 0.0 || disc.is_nan() || r <= 2.0 || r.is_nan() {
        return Err(StatsError::invalid(
            "PearsonDist::fit(type IV)",
            format!("invalid parameters: r={r}, disc={disc}"),
        ));
    }
    let nu = -r * (r - 2.0) * spec.skewness / disc.sqrt();
    let a = disc.sqrt() / 4.0;
    let lambda = -(r - 2.0) * spec.skewness / 4.0;

    // φ-space density g(φ) ∝ cos^r(φ) · e^{−νφ} on (−π/2, π/2): compact
    // support, so a trapezoid CDF grid is exact enough for sampling.
    let half_pi = std::f64::consts::FRAC_PI_2;
    let n = TYPE4_GRID;
    let mut grid = Vec::with_capacity(n + 1);
    let mut cdf = 0.0;
    let mut prev_g = 0.0;
    let h = 2.0 * half_pi / n as f64;
    // Work with the log-density peak subtracted for numerical stability.
    let ln_g = |phi: f64| r * phi.cos().max(1e-300).ln() - nu * phi;
    let peak = (0..=n)
        .map(|i| ln_g(-half_pi + i as f64 * h))
        .fold(f64::NEG_INFINITY, f64::max);
    for i in 0..=n {
        let phi = -half_pi + i as f64 * h;
        let g = (ln_g(phi) - peak).exp();
        if i > 0 {
            cdf += 0.5 * (g + prev_g) * h;
        }
        grid.push((phi, cdf));
        prev_g = g;
    }
    let total = cdf;
    if total <= 0.0 || total.is_nan() {
        return Err(StatsError::invalid(
            "PearsonDist::fit(type IV)",
            "degenerate angle density",
        ));
    }
    for (_, c) in grid.iter_mut() {
        *c /= total;
    }
    // Normalization constant for pdf(): ∫ cos^r φ e^{−νφ} dφ = total·e^peak
    let norm = total * peak.exp();
    Ok(StdKind::TypeIv {
        m,
        nu,
        a,
        lambda,
        grid,
        norm,
    })
}

/// Type V (κ = 1): the Pearson quadratic is a perfect square; the density
/// reduces to an inverse gamma in the shifted coordinate.
fn fit_type_v(spec: &MomentSummary) -> Result<StdKind> {
    let (_, b1, b2, denom) = pearson_coeffs(spec.skewness, spec.kurtosis);
    if b2 == 0.0 || denom == 0.0 {
        return Err(StatsError::invalid(
            "PearsonDist::fit(type V)",
            "degenerate coefficients",
        ));
    }
    let c1 = b1 / denom;
    let c2 = b2 / denom;
    let c1_half = c1 / (2.0 * c2);
    let shape = 1.0 / c2 - 1.0;
    let scale = -(c1 - c1_half) / c2;
    if shape <= 0.0 || shape.is_nan() {
        return Err(StatsError::invalid(
            "PearsonDist::fit(type V)",
            format!("non-positive shape {shape}"),
        ));
    }
    Ok(StdKind::InvGamma {
        shape,
        scale,
        shift: c1_half,
    })
}

/// Type VI (κ > 1): both quadratic roots on the same side; beta-prime in
/// the shifted/scaled coordinate. Negative skew is handled by mirroring.
fn fit_type_vi(spec: &MomentSummary) -> Result<StdKind> {
    let sign = if spec.skewness < 0.0 { -1.0 } else { 1.0 };
    let skew = spec.skewness.abs();
    let (b0, b1, b2, denom) = pearson_coeffs(skew, spec.kurtosis);
    let disc = b1 * b1 - 4.0 * b0 * b2;
    if disc <= 0.0 || b2 == 0.0 {
        return Err(StatsError::invalid(
            "PearsonDist::fit(type VI)",
            format!("no real roots: b=({b0}, {b1}, {b2})"),
        ));
    }
    let sq = disc.sqrt();
    let r1 = (-b1 - sq) / (2.0 * b2);
    let r2 = (-b1 + sq) / (2.0 * b2);
    let (a1, a2) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
    let span = a2 - a1;
    let m1 = (b1 + a1 * denom) / (b2 * span);
    let m2 = -(b1 + a2 * denom) / (b2 * span);
    let alpha = (m2 + 1.0).max(1e-4);
    let beta = (-(m1 + m2) - 1.0).max(1e-4);
    Ok(StdKind::BetaPrime {
        a1,
        a2,
        alpha,
        beta,
        sign,
    })
}

/// Linear-interpolated inverse of a `(x, cdf)` grid.
fn inverse_cdf_grid(grid: &[(f64, f64)], u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    // Binary search on the CDF column.
    let mut lo = 0usize;
    let mut hi = grid.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if grid[mid].1 < u {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (x0, c0) = grid[lo];
    let (x1, c1) = grid[hi];
    if c1 <= c0 {
        return x0;
    }
    x0 + (x1 - x0) * (u - c0) / (c1 - c0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_stats::rng::Xoshiro256pp;
    use rand::SeedableRng;

    const N: usize = 200_000;

    fn spec(mean: f64, std: f64, skew: f64, kurt: f64) -> MomentSummary {
        MomentSummary {
            mean,
            std,
            skewness: skew,
            kurtosis: kurt,
        }
    }

    /// Fit, sample, and verify that the sample moments round-trip.
    fn roundtrip(s: MomentSummary, seed: u64, tol_mk: (f64, f64, f64, f64)) {
        let d = PearsonDist::fit(s).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let xs = d.sample_n(&mut rng, N);
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite samples");
        let got = MomentSummary::from_sample(&xs).unwrap();
        let (tm, ts, tg, tk) = tol_mk;
        assert!(
            (got.mean - s.mean).abs() < tm,
            "{:?}: mean {} vs {}",
            d.pearson_type(),
            got.mean,
            s.mean
        );
        assert!(
            (got.std - s.std).abs() / s.std < ts,
            "{:?}: std {} vs {}",
            d.pearson_type(),
            got.std,
            s.std
        );
        assert!(
            (got.skewness - s.skewness).abs() < tg,
            "{:?}: skew {} vs {}",
            d.pearson_type(),
            got.skewness,
            s.skewness
        );
        assert!(
            (got.kurtosis - s.kurtosis).abs() < tk,
            "{:?}: kurt {} vs {}",
            d.pearson_type(),
            got.kurtosis,
            s.kurtosis
        );
    }

    #[test]
    fn type_zero_roundtrip() {
        roundtrip(spec(2.0, 0.5, 0.0, 3.0), 1, (0.01, 0.01, 0.05, 0.1));
    }

    #[test]
    fn type_one_roundtrip() {
        // Beta(2,5) moments: skew ≈ 0.5962, kurt ≈ 2.8776
        roundtrip(spec(0.0, 1.0, 0.5962, 2.8776), 2, (0.01, 0.01, 0.05, 0.1));
    }

    #[test]
    fn type_one_strongly_bimodal_edge() {
        // Near the β₂ = β₁ + 1 boundary: U-shaped beta.
        roundtrip(spec(1.0, 0.2, 0.0, 1.3), 3, (0.005, 0.02, 0.05, 0.1));
    }

    #[test]
    fn type_two_roundtrip() {
        // Uniform-like: kurtosis 1.8.
        roundtrip(spec(5.0, 2.0, 0.0, 1.8), 4, (0.02, 0.01, 0.05, 0.05));
    }

    #[test]
    fn type_three_roundtrip() {
        // Gamma line with k = 4: skew = 1, kurt = 4.5.
        roundtrip(spec(0.0, 1.0, 1.0, 4.5), 5, (0.01, 0.02, 0.1, 0.4));
    }

    #[test]
    fn type_three_negative_skew() {
        roundtrip(spec(0.0, 1.0, -1.0, 4.5), 6, (0.01, 0.02, 0.1, 0.4));
    }

    #[test]
    fn type_four_roundtrip() {
        roundtrip(spec(0.0, 1.0, 0.8, 4.5), 7, (0.02, 0.02, 0.1, 0.4));
    }

    #[test]
    fn type_four_negative_skew() {
        roundtrip(spec(10.0, 3.0, -0.8, 4.5), 8, (0.05, 0.02, 0.1, 0.4));
    }

    #[test]
    fn type_six_roundtrip() {
        // Log-normal-ish moments (σ² = 0.25): skew ≈ 1.7502, kurt ≈ 8.898.
        roundtrip(spec(0.0, 1.0, 1.7502, 8.898), 9, (0.02, 0.05, 0.3, 2.5));
    }

    #[test]
    fn type_six_negative_skew() {
        roundtrip(spec(0.0, 1.0, -1.7502, 8.898), 10, (0.02, 0.05, 0.3, 2.5));
    }

    #[test]
    fn type_seven_roundtrip() {
        // kurt 4 → ν = 10: all four moments exist comfortably.
        roundtrip(spec(0.0, 1.0, 0.0, 4.0), 11, (0.01, 0.02, 0.1, 0.5));
    }

    #[test]
    fn degenerate_spec_yields_constant() {
        let d = PearsonDist::fit(spec(3.0, 0.0, 0.0, 3.0)).unwrap();
        assert_eq!(d.pearson_type(), PearsonType::Degenerate);
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let xs = d.sample_n(&mut rng, 100);
        assert!(xs.iter().all(|&x| x == 3.0));
        assert_eq!(d.pdf(2.9), 0.0);
        assert_eq!(d.pdf(3.0), f64::INFINITY);
    }

    #[test]
    fn infeasible_moments_are_projected_not_rejected() {
        // kurt < skew² + 1 is impossible; fit must still succeed.
        let d = PearsonDist::fit(spec(0.0, 1.0, 2.0, 2.0)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let xs = d.sample_n(&mut rng, 10_000);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn non_finite_moments_are_rejected() {
        assert!(PearsonDist::fit(spec(f64::NAN, 1.0, 0.0, 3.0)).is_err());
        assert!(PearsonDist::fit(spec(0.0, f64::INFINITY, 0.0, 3.0)).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_for_each_type() {
        let cases = [
            spec(0.0, 1.0, 0.0, 3.0),       // 0
            spec(0.0, 1.0, 0.5962, 2.8776), // I
            spec(0.0, 1.0, 0.0, 2.0),       // II
            spec(0.0, 1.0, 1.0, 4.5),       // III
            spec(0.0, 1.0, 0.8, 4.5),       // IV
            spec(0.0, 1.0, 1.7502, 8.898),  // VI
            spec(0.0, 1.0, 0.0, 4.0),       // VII
        ];
        for s in cases {
            let d = PearsonDist::fit(s).unwrap();
            // Integrate the pdf over a generous range.
            let (lo, hi, n) = (-30.0, 30.0, 60_000);
            let h = (hi - lo) / n as f64;
            let integral: f64 = (0..n).map(|i| d.pdf(lo + (i as f64 + 0.5) * h) * h).sum();
            assert!(
                (integral - 1.0).abs() < 0.02,
                "{:?}: ∫pdf = {integral}",
                d.pearson_type()
            );
        }
    }

    #[test]
    fn pdf_matches_sample_histogram_for_type_iv() {
        let s = spec(0.0, 1.0, 0.8, 4.5);
        let d = PearsonDist::fit(s).unwrap();
        assert_eq!(d.pearson_type(), PearsonType::IV);
        let mut rng = Xoshiro256pp::seed_from_u64(14);
        let xs = d.sample_n(&mut rng, N);
        let h = pv_stats::histogram::Histogram::from_data_with_range(&xs, -4.0, 4.0, 40).unwrap();
        // Compare a few interior bins' empirical density to the pdf.
        for i in [10, 20, 30] {
            let x = h.bin_center(i);
            let emp = h.density_at(x) * (xs.len() as f64 / h.total()); // correct clamped mass
            assert!(
                (emp - d.pdf(x)).abs() < 0.03 + 0.1 * d.pdf(x),
                "bin {i}: emp {emp} vs pdf {}",
                d.pdf(x)
            );
        }
    }

    #[test]
    fn negative_skew_mirrors_positive() {
        let dp = PearsonDist::fit(spec(0.0, 1.0, 1.2, 5.5)).unwrap();
        let dn = PearsonDist::fit(spec(0.0, 1.0, -1.2, 5.5)).unwrap();
        assert_eq!(dp.pearson_type(), dn.pearson_type());
        for x in [-2.0, -1.0, 0.0, 0.5, 1.5] {
            assert!(
                (dp.pdf(x) - dn.pdf(-x)).abs() < 1e-9,
                "pdf mirror at {x}: {} vs {}",
                dp.pdf(x),
                dn.pdf(-x)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = PearsonDist::fit(spec(1.0, 0.1, 0.5, 3.5)).unwrap();
        let mut r1 = Xoshiro256pp::seed_from_u64(42);
        let mut r2 = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(d.sample_n(&mut r1, 100), d.sample_n(&mut r2, 100));
    }

    #[test]
    fn inverse_cdf_grid_interpolates() {
        let grid = vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)];
        assert_eq!(inverse_cdf_grid(&grid, 0.0), 0.0);
        assert_eq!(inverse_cdf_grid(&grid, 1.0), 2.0);
        assert!((inverse_cdf_grid(&grid, 0.25) - 0.5).abs() < 1e-12);
        assert!((inverse_cdf_grid(&grid, 0.75) - 1.5).abs() < 1e-12);
    }
}
