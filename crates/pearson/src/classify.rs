//! Classification of four-moment specifications into Pearson types.

use pv_stats::moments::MomentSummary;
use serde::{Deserialize, Serialize};

/// The eight members of the Pearson system (type 0 is the normal
/// distribution in MATLAB's `pearsrnd` numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PearsonType {
    /// Normal distribution (β₁ = 0, β₂ = 3).
    Zero,
    /// Four-parameter beta (κ < 0).
    I,
    /// Symmetric beta (β₁ = 0, β₂ < 3).
    II,
    /// Shifted gamma (2β₂ − 3β₁ − 6 = 0).
    III,
    /// The `[1+x²]^{−m} e^{−ν arctan x}` family (0 < κ < 1).
    IV,
    /// Inverse gamma (κ = 1).
    V,
    /// Beta-prime / F-like (κ > 1).
    VI,
    /// Scaled Student-t (β₁ = 0, β₂ > 3).
    VII,
    /// Degenerate point mass (σ = 0); not a classical Pearson member but a
    /// value a prediction pipeline must be able to handle.
    Degenerate,
}

/// Tolerance for the measure-zero boundary cases (types 0, II, III, V,
/// VII live on curves in the (β₁, β₂) plane; exact float equality would
/// almost never fire).
pub(crate) const BOUNDARY_TOL: f64 = 1e-10;

/// The *unnormalized* Pearson quadratic coefficients `(b0, b1, b2)` plus
/// the classic normalizer `denom = 10β₂ − 12β₁ − 18`.
///
/// The normalized coefficients are `cᵢ = bᵢ / denom`, but `denom` vanishes
/// on a line that crosses the type I/II region (the uniform distribution
/// sits exactly on it), so downstream parameter formulas are written in
/// the denominator-free form `(b1 + root·denom) / (b2 · span)` which stays
/// exact for `denom = 0`. The criterion κ uses only scale-invariant ratios
/// and is unaffected.
pub(crate) fn pearson_coeffs(skew: f64, kurt: f64) -> (f64, f64, f64, f64) {
    let beta1 = skew * skew;
    let beta2 = kurt;
    let denom = 10.0 * beta2 - 12.0 * beta1 - 18.0;
    let b0 = 4.0 * beta2 - 3.0 * beta1;
    let b1 = skew * (beta2 + 3.0);
    let b2 = 2.0 * beta2 - 3.0 * beta1 - 6.0;
    (b0, b1, b2, denom)
}

/// Classifies a moment specification into its Pearson type.
///
/// Infeasible specifications (β₂ < β₁ + 1) are *not* clamped here — they
/// classify as whatever region the raw numbers fall in; use
/// [`MomentSummary::clamped_feasible`] before fitting. A zero standard
/// deviation classifies as [`PearsonType::Degenerate`].
pub fn classify(m: &MomentSummary) -> PearsonType {
    if m.std <= 0.0 || m.std.is_nan() {
        return PearsonType::Degenerate;
    }
    let skew = m.skewness;
    let kurt = m.kurtosis;
    let beta1 = skew * skew;

    if skew.abs() < BOUNDARY_TOL {
        if (kurt - 3.0).abs() < BOUNDARY_TOL {
            return PearsonType::Zero;
        }
        if kurt < 3.0 {
            return PearsonType::II;
        }
        return PearsonType::VII;
    }

    let b2 = 2.0 * kurt - 3.0 * beta1 - 6.0;
    if b2.abs() < BOUNDARY_TOL {
        return PearsonType::III;
    }

    let (b0, b1, b2_, _) = pearson_coeffs(skew, kurt);
    let kappa = b1 * b1 / (4.0 * b0 * b2_);
    if kappa < 0.0 {
        PearsonType::I
    } else if (kappa - 1.0).abs() < BOUNDARY_TOL {
        PearsonType::V
    } else if kappa < 1.0 {
        PearsonType::IV
    } else {
        PearsonType::VI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(skew: f64, kurt: f64) -> MomentSummary {
        MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: skew,
            kurtosis: kurt,
        }
    }

    #[test]
    fn normal_is_type_zero() {
        assert_eq!(classify(&spec(0.0, 3.0)), PearsonType::Zero);
    }

    #[test]
    fn symmetric_platykurtic_is_type_two() {
        assert_eq!(classify(&spec(0.0, 2.0)), PearsonType::II);
        assert_eq!(classify(&spec(0.0, 1.8)), PearsonType::II);
        // Uniform distribution: kurtosis 1.8.
    }

    #[test]
    fn symmetric_leptokurtic_is_type_seven() {
        assert_eq!(classify(&spec(0.0, 4.0)), PearsonType::VII);
        assert_eq!(classify(&spec(0.0, 10.0)), PearsonType::VII);
    }

    #[test]
    fn gamma_line_is_type_three() {
        // Gamma with shape k: skew = 2/√k, kurt = 3 + 6/k.
        // Check 2β₂ − 3β₁ − 6 = 6 + 12/k − 12/k − 6 = 0. ✓
        for k in [0.5f64, 1.0, 4.0, 25.0] {
            let skew = 2.0 / k.sqrt();
            let kurt = 3.0 + 6.0 / k;
            assert_eq!(classify(&spec(skew, kurt)), PearsonType::III, "k={k}");
        }
    }

    #[test]
    fn beta_distribution_moments_are_type_one() {
        // Beta(2, 5): skew = 0.596…, kurt ≈ 2.88. Below the gamma line.
        let (a, b): (f64, f64) = (2.0, 5.0);
        let skew = 2.0 * (b - a) * (a + b + 1.0).sqrt() / ((a + b + 2.0) * (a * b).sqrt());
        let ex_kurt = 6.0 * ((a - b).powi(2) * (a + b + 1.0) - a * b * (a + b + 2.0))
            / (a * b * (a + b + 2.0) * (a + b + 3.0));
        assert_eq!(classify(&spec(skew, ex_kurt + 3.0)), PearsonType::I);
    }

    #[test]
    fn skewed_moderate_kurtosis_is_type_four() {
        // Above the gamma line but below the type V boundary.
        assert_eq!(classify(&spec(0.8, 4.5)), PearsonType::IV);
        assert_eq!(classify(&spec(-0.8, 4.5)), PearsonType::IV);
    }

    #[test]
    fn heavy_skew_heavy_tail_is_type_six() {
        // Log-normal-like moments live in the type VI region: for σ²=0.25,
        // skew ≈ 1.75, kurt ≈ 8.9.
        assert_eq!(classify(&spec(1.75, 8.9)), PearsonType::VI);
    }

    #[test]
    fn inverse_gamma_boundary_is_type_five() {
        // Construct a point exactly on κ = 1 numerically: for given skew,
        // solve for kurt on the V line by bisection between IV and VI.
        let skew = 1.0f64;
        let kappa = |kurt: f64| {
            let (b0, b1, b2, _) = pearson_coeffs(skew, kurt);
            b1 * b1 / (4.0 * b0 * b2)
        };
        // κ decreases with kurtosis above the gamma line: just past the
        // type III line it is huge (VI region), and it falls below 1 (IV
        // region) as kurtosis grows. Bracket the κ = 1 crossing.
        let (mut lo, mut hi) = (4.6, 12.0); // VI side, IV side
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if kappa(mid) > 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let kurt_v = 0.5 * (lo + hi);
        // The classifier should see κ ≈ 1 within tolerance.
        let t = classify(&spec(skew, kurt_v));
        assert!(
            t == PearsonType::V || t == PearsonType::IV || t == PearsonType::VI,
            "boundary classification = {t:?}"
        );
        // And points clearly on either side classify VI (below) / IV
        // (above). The VI strip between the III line (κ→∞) and the V curve
        // (κ=1) is thin — for skew = 1 it spans kurtosis ≈ (4.5, 4.97) —
        // so step down by less than the strip width.
        assert_eq!(classify(&spec(skew, kurt_v - 0.2)), PearsonType::VI);
        assert_eq!(classify(&spec(skew, kurt_v + 0.5)), PearsonType::IV);
    }

    #[test]
    fn zero_std_is_degenerate() {
        let m = MomentSummary {
            mean: 5.0,
            std: 0.0,
            skewness: 0.0,
            kurtosis: 3.0,
        };
        assert_eq!(classify(&m), PearsonType::Degenerate);
    }

    #[test]
    fn classification_is_mirror_symmetric_in_skew() {
        for (s, k) in [(0.5, 3.2), (1.2, 6.0), (0.3, 2.5)] {
            assert_eq!(classify(&spec(s, k)), classify(&spec(-s, k)));
        }
    }
}
