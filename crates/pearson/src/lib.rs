//! # pv-pearson — the Pearson distribution system
//!
//! A from-scratch Rust equivalent of MATLAB's `pearsrnd`, which the paper
//! uses for its best-performing distribution representation
//! ("PearsonRnd", Section III-B2): given the first four moments of a
//! performance distribution (mean, standard deviation, skewness,
//! kurtosis), draw random numbers from the member of the Pearson family
//! with exactly those moments, and rebuild the distribution from the
//! sample.
//!
//! The Pearson system partitions the (β₁, β₂) = (skewness², kurtosis)
//! plane into seven families plus the normal distribution:
//!
//! | Type | Region | Family |
//! |------|--------|--------|
//! | 0    | β₁ = 0, β₂ = 3 | normal |
//! | I    | κ < 0 | four-parameter beta |
//! | II   | β₁ = 0, β₂ < 3 | symmetric beta |
//! | III  | 2β₂ − 3β₁ − 6 = 0 | shifted gamma |
//! | IV   | 0 < κ < 1 | `[1+x²]^{−m} e^{−ν arctan x}` |
//! | V    | κ = 1 | inverse gamma |
//! | VI   | κ > 1 | beta-prime (F-like) |
//! | VII  | β₁ = 0, β₂ > 3 | scaled Student-t |
//!
//! where `κ = c₁² / (4 c₀ c₂)` is the classic Pearson criterion computed
//! from the moment-derived quadratic `c₀ + c₁x + c₂x²`.
//!
//! The central type is [`PearsonDist`]: [`PearsonDist::fit`] classifies the
//! moments, recovers the family parameters analytically, and the result
//! samples / evaluates densities in the original (unstandardized)
//! coordinates.
//!
//! ```
//! use pv_pearson::PearsonDist;
//! use pv_stats::moments::MomentSummary;
//! use pv_stats::rng::Xoshiro256pp;
//! use rand::SeedableRng;
//!
//! // A right-skewed, heavy-tailed spec — Pearson type IV territory.
//! let m = MomentSummary { mean: 1.0, std: 0.05, skewness: 0.8, kurtosis: 4.5 };
//! let dist = PearsonDist::fit(m).unwrap();
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! let xs = dist.sample_n(&mut rng, 10_000);
//! let got = MomentSummary::from_sample(&xs).unwrap();
//! assert!((got.mean - 1.0).abs() < 0.01);
//! ```

mod classify;
mod dist;

pub use classify::{classify, PearsonType};
pub use dist::PearsonDist;

/// Result alias re-using the statistical substrate's error type.
pub type Result<T> = std::result::Result<T, pv_stats::StatsError>;
