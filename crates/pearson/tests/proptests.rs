//! Property tests: every feasible four-moment specification must fit,
//! sample finitely, and approximately round-trip its first two moments.

use proptest::prelude::*;
use pv_pearson::{classify, PearsonDist, PearsonType};
use pv_stats::moments::MomentSummary;
use pv_stats::rng::Xoshiro256pp;
use rand::SeedableRng;

fn feasible_spec() -> impl Strategy<Value = MomentSummary> {
    // skew in [-2, 2], kurtosis above the feasibility bound with margin.
    (-5.0..5.0f64, 0.01..10.0f64, -2.0..2.0f64, 0.05..6.0f64).prop_map(
        |(mean, std, skew, excess_over_bound)| MomentSummary {
            mean,
            std,
            skewness: skew,
            kurtosis: skew * skew + 1.0 + excess_over_bound,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_feasible_spec_fits_and_samples(spec in feasible_spec()) {
        let d = PearsonDist::fit(spec).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let xs = d.sample_n(&mut rng, 4000);
        prop_assert!(xs.iter().all(|x| x.is_finite()));
        let got = MomentSummary::from_sample(&xs).unwrap();
        // Mean and std round-trip within sampling noise. Tolerances are
        // loose because heavy-tailed members converge slowly.
        prop_assert!(
            (got.mean - spec.mean).abs() < 0.35 * spec.std + 1e-9,
            "mean {} vs {} (type {:?})", got.mean, spec.mean, d.pearson_type()
        );
        prop_assert!(
            got.std > 0.3 * spec.std && got.std < 3.0 * spec.std,
            "std {} vs {} (type {:?})", got.std, spec.std, d.pearson_type()
        );
    }

    #[test]
    fn classification_is_deterministic_and_total(spec in feasible_spec()) {
        let t1 = classify(&spec);
        let t2 = classify(&spec);
        prop_assert_eq!(t1, t2);
        prop_assert!(t1 != PearsonType::Degenerate);
    }

    #[test]
    fn pdf_is_nonnegative_and_finite(spec in feasible_spec()) {
        let d = PearsonDist::fit(spec).unwrap();
        for i in -20..=20 {
            let x = spec.mean + spec.std * i as f64 / 4.0;
            let p = d.pdf(x);
            prop_assert!(p >= 0.0, "pdf({x}) = {p}");
            prop_assert!(p.is_finite(), "pdf({x}) = {p}");
        }
    }

    #[test]
    fn scaling_moments_scales_samples(skew in -1.5..1.5f64, ex in 0.2..4.0f64) {
        let base = MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: skew,
            kurtosis: skew * skew + 1.0 + ex,
        };
        let scaled = MomentSummary {
            mean: 10.0,
            std: 3.0,
            ..base
        };
        let d1 = PearsonDist::fit(base).unwrap();
        let d2 = PearsonDist::fit(scaled).unwrap();
        // Same standardized family → identical samples after affine map.
        let mut r1 = Xoshiro256pp::seed_from_u64(5);
        let mut r2 = Xoshiro256pp::seed_from_u64(5);
        let a = d1.sample_n(&mut r1, 200);
        let b = d2.sample_n(&mut r2, 200);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((10.0 + 3.0 * x - y).abs() < 1e-9);
        }
    }
}
