//! Benchmarks for the vectorized kernel layer (`pv_stats::kernel`,
//! `pv_ml::kernel`): chunked-lane primitives against scalar
//! element-order references, and the blocked batch-kNN scoring path
//! against row-at-a-time scalar scoring.
//!
//! Fixed sample counts (`sample_size`) so successive runs measure the
//! same work and the headline ratio below is reproducible.
//!
//! Headline (release, this container, 59 queries × 472 train × 272
//! features, k = 15): batched cosine kNN scoring
//! (`knn_score/batch_59q_472t`) runs **≥ 2×** faster than the
//! row-at-a-time scalar loop (`knn_score/scalar_rows_59q_472t`) —
//! measured ~2.0–2.7× across runs (scalar ~6.0–6.6 ms vs batch
//! ~2.4–3.0 ms per pass; the cached-norm chunked row loop sits in
//! between at ~3.0 ms). The `kernel_parity` tier pins that all paths
//! select bit-identical neighbour sets.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_ml::distance::{cosine_with_sq_norms, squared_norm};
use pv_ml::kernel::{cosine_distance_matrix, F32Train, TILE_Q, TILE_T};
use pv_ml::DenseMatrix;
use pv_stats::kernel::{central_sums4, dot4, sum4};
use pv_stats::ks::{ks2_statistic, ks2_statistic_presorted};
use pv_stats::rng::Xoshiro256pp;
use pv_stats::Moments;
use rand::Rng;
use rand::SeedableRng;

fn matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.gen::<f64>() * 4.0 - 2.0)
        .collect();
    DenseMatrix::from_flat(rows, cols, data).unwrap()
}

/// Scalar element-order cosine distance: the pre-kernel reference loop
/// the chunked path replaced.
fn scalar_cosine(a: &[f64], b: &[f64]) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    (1.0 - (dot / (na.sqrt() * nb.sqrt()))).clamp(0.0, 2.0)
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(50);
    let m = matrix(2, 272, 1);
    let (a, b) = (m.row(0).to_vec(), m.row(1).to_vec());
    g.bench_function("dot_scalar_272", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for (x, y) in black_box(&a).iter().zip(black_box(&b)) {
                acc += x * y;
            }
            acc
        })
    });
    g.bench_function("dot_chunked_272", |bch| {
        bch.iter(|| dot4(black_box(&a), black_box(&b)))
    });
    g.bench_function("sum_chunked_272", |bch| bch.iter(|| sum4(black_box(&a))));
    g.bench_function("central_sums_chunked_272", |bch| {
        let mean = sum4(&a) / a.len() as f64;
        bch.iter(|| central_sums4(black_box(&a), mean))
    });
    g.finish();
}

fn bench_knn_scoring(c: &mut Criterion) {
    // The evaluation's fold shape, scaled up: score every query against
    // every training row and keep the k best. Three variants over the
    // identical pair space — the headline ratio in the file header.
    let mut g = c.benchmark_group("knn_score");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(30);
    let (nq, nt, d, k) = (59usize, 472usize, 272usize, 15usize);
    let queries = matrix(nq, d, 2);
    let train = matrix(nt, d, 3);
    let tn: Vec<f64> = (0..nt).map(|r| squared_norm(train.row(r))).collect();

    g.bench_function("scalar_rows_59q_472t", |bch| {
        bch.iter(|| {
            let mut out = 0usize;
            for q in 0..nq {
                let qrow = queries.row(q);
                let mut dists: Vec<(usize, f64)> = (0..nt)
                    .map(|r| (r, scalar_cosine(qrow, train.row(r))))
                    .collect();
                dists.select_nth_unstable_by(k - 1, |x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                out += dists[k - 1].0;
            }
            out
        })
    });

    g.bench_function("chunked_rows_59q_472t", |bch| {
        bch.iter(|| {
            let mut out = 0usize;
            for q in 0..nq {
                let qrow = queries.row(q);
                let qn = squared_norm(qrow);
                let mut dists: Vec<(usize, f64)> = (0..nt)
                    .map(|r| (r, cosine_with_sq_norms(qrow, train.row(r), qn, tn[r])))
                    .collect();
                dists.select_nth_unstable_by(k - 1, |x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                out += dists[k - 1].0;
            }
            out
        })
    });

    g.bench_function("batch_59q_472t", |bch| {
        bch.iter(|| {
            let qn: Vec<f64> = (0..nq).map(|r| squared_norm(queries.row(r))).collect();
            let dmat = cosine_distance_matrix(&queries, &qn, &train, &tn, TILE_Q, TILE_T);
            let mut out = 0usize;
            for q in 0..nq {
                let mut dists: Vec<(usize, f64)> = dmat[q * nt..(q + 1) * nt]
                    .iter()
                    .copied()
                    .enumerate()
                    .collect();
                dists.select_nth_unstable_by(k - 1, |x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                out += dists[k - 1].0;
            }
            out
        })
    });

    let shadow = F32Train::build(&train);
    g.bench_function("f32_prescreen_59q_472t", |bch| {
        bch.iter(|| {
            let mut out = 0usize;
            for q in 0..nq {
                let qrow = queries.row(q);
                let qn = squared_norm(qrow);
                let cand = shadow.prescreen(qrow, k);
                let mut dists: Vec<(usize, f64)> = cand
                    .rows
                    .into_iter()
                    .map(|r| (r, cosine_with_sq_norms(qrow, train.row(r), qn, tn[r])))
                    .collect();
                let kk = k.min(dists.len());
                dists
                    .select_nth_unstable_by(kk - 1, |x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                out += dists[kk - 1].0;
            }
            out
        })
    });
    g.finish();
}

fn bench_ks_and_moments(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats_kernel");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(50);
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
    let ys: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
    let mut xs_sorted = xs.clone();
    xs_sorted.sort_by(f64::total_cmp);
    let mut ys_sorted = ys.clone();
    ys_sorted.sort_by(f64::total_cmp);
    g.bench_function("ks2_allocating_1000", |bch| {
        bch.iter(|| ks2_statistic(black_box(&xs), black_box(&ys)).unwrap())
    });
    g.bench_function("ks2_presorted_1000", |bch| {
        bch.iter(|| ks2_statistic_presorted(black_box(&xs_sorted), black_box(&ys_sorted)).unwrap())
    });
    g.bench_function("moments_streaming_1000", |bch| {
        bch.iter(|| Moments::from_slice(black_box(&xs)))
    });
    g.bench_function("moments_chunked_1000", |bch| {
        bch.iter(|| Moments::from_slice_chunked(black_box(&xs)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_knn_scoring,
    bench_ks_and_moments
);
criterion_main!(benches);
