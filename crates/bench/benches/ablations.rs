//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! kNN distance metric and k, histogram bin count, forest size, and the
//! tree-builder's scratch-sort split search. These measure the *cost* side
//! of each choice; the accuracy side is reported by the `repro` harness
//! and EXPERIMENTS.md.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_ml::{
    Dataset, DenseMatrix, Distance, KnnRegressor, MaxFeatures, RandomForestRegressor, Regressor,
};
use pv_stats::histogram::Histogram;
use pv_stats::rng::Xoshiro256pp;
use rand::Rng;
use rand::SeedableRng;

fn problem(n: usize, d: usize, t: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let x: Vec<f64> = (0..n * d).map(|_| rng.gen()).collect();
    let y: Vec<f64> = (0..n * t).map(|_| rng.gen()).collect();
    Dataset::ungrouped(
        DenseMatrix::from_flat(n, d, x).unwrap(),
        DenseMatrix::from_flat(n, t, y).unwrap(),
    )
    .unwrap()
}

fn bench_distance_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_distance");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let data = problem(59, 272, 4, 1);
    let q: Vec<f64> = data.x.row(0).to_vec();
    for dist in [
        Distance::Cosine,
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Chebyshev,
    ] {
        let mut m = KnnRegressor::new(15).with_distance(dist);
        m.fit(&data).unwrap();
        g.bench_function(format!("{dist:?}"), |b| {
            b.iter(|| m.predict(black_box(&q)).unwrap())
        });
    }
    g.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_k");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let data = problem(590, 272, 4, 2);
    let q: Vec<f64> = data.x.row(0).to_vec();
    for k in [1usize, 5, 15, 50] {
        let mut m = KnnRegressor::new(k).with_distance(Distance::Cosine);
        m.fit(&data).unwrap();
        g.bench_with_input(BenchmarkId::new("predict", k), &k, |b, _| {
            b.iter(|| m.predict(black_box(&q)).unwrap())
        });
    }
    g.finish();
}

fn bench_bin_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bins");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let xs: Vec<f64> = (0..1000).map(|_| 0.9 + 0.2 * rng.gen::<f64>()).collect();
    for bins in [10usize, 15, 40, 120] {
        g.bench_with_input(BenchmarkId::new("encode", bins), &bins, |b, &bins| {
            b.iter(|| {
                Histogram::from_data_with_range(black_box(&xs), 0.7, 1.5, bins)
                    .unwrap()
                    .probabilities()
            })
        });
    }
    g.finish();
}

fn bench_forest_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_forest");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let data = problem(59, 272, 4, 4);
    for (name, feats) in [("sqrt", MaxFeatures::Sqrt), ("all", MaxFeatures::All)] {
        g.bench_function(format!("fit_50trees_{name}"), |b| {
            b.iter(|| {
                let mut m = RandomForestRegressor::new(50)
                    .with_max_features(feats)
                    .with_seed(9);
                m.fit(black_box(&data)).unwrap();
                m
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_distance_metrics,
    bench_k_sweep,
    bench_bin_count,
    bench_forest_width
);
criterion_main!(benches);
