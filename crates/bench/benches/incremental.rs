//! Incremental fold-cache benchmarks: what a corpus re-evaluation costs
//! cold, on an unchanged rerun (pure fingerprint hits), and after a
//! one-benchmark append (kNN neighbour-delta reuse) — plus the ML
//! hot-kernel comparison between exact and pre-binned forest splits.
//!
//! Honest expectations for the append scenario: with k = 15 neighbours,
//! an appended benchmark enters a surviving fold's neighbourhood with
//! probability ≈ k/n, so at n = 50 roughly a third of the folds (plus
//! the new fold itself) must recompute in full, and the delta check
//! still pays row assembly + scaling per reused fold. That caps the
//! append speedup near 2× at this roster size; the ≥5× regime is the
//! unchanged rerun, where every fold is an exact fingerprint hit and
//! the evaluation reduces to hashing and integrity checks.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::uc1_config;
use pv_core::eval::few_runs_spec;
use pv_core::pipeline::EncodedCorpus;
use pv_core::{evaluate_few_runs_encoded, evaluate_few_runs_incremental, ModelKind, ReprKind};
use pv_ml::{Dataset, DenseMatrix, RandomForestRegressor, Regressor};
use pv_stats::rng::Xoshiro256pp;
use pv_sysmodel::{Corpus, SystemModel};

/// The paper-scale corpus the fold cache targets: 50 benchmarks kept
/// from the intel roster at campaign depth.
fn corpora() -> (Corpus, Corpus) {
    let mut full = Corpus::collect(&SystemModel::intel(), 1000, 7);
    full.benchmarks.truncate(50);
    let mut base = full.clone();
    base.benchmarks.truncate(49);
    (full, base)
}

fn bench_incremental_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental_eval");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);

    let (full, base) = corpora();
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
    let spec = few_runs_spec(&cfg);
    let enc_base = EncodedCorpus::build(&base, &spec).unwrap();
    let enc_full = EncodedCorpus::build(&full, &spec).unwrap();
    let seeded = evaluate_few_runs_incremental(&enc_base, cfg, &[]).unwrap();
    let warm = evaluate_few_runs_incremental(&enc_full, cfg, &seeded.folds).unwrap();
    // The comparison only means anything if reuse actually happened and
    // reproduced the cold bits.
    let cold = evaluate_few_runs_encoded(&enc_full, cfg).unwrap();
    assert_eq!(warm.summary, cold);
    assert!(warm.stats.deltas > 0, "{:?}", warm.stats);
    assert_eq!(warm.stats.hits, 0);

    g.bench_function("cold_logo_50bench", |b| {
        b.iter(|| evaluate_few_runs_encoded(black_box(&enc_full), cfg).unwrap())
    });
    g.bench_function("rerun_unchanged_all_hits", |b| {
        b.iter(|| evaluate_few_runs_incremental(black_box(&enc_full), cfg, &warm.folds).unwrap())
    });
    g.bench_function("append_one_delta_reuse", |b| {
        b.iter(|| evaluate_few_runs_incremental(black_box(&enc_full), cfg, &seeded.folds).unwrap())
    });
    g.finish();
}

fn bench_forest_split_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest_split");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);

    // Dense regression problems bracketing the pipeline's regime: the
    // small shape is folds × windows territory (binned ≈ parity — the
    // hybrid kernel falls back to exact sorts on sub-bin-count nodes),
    // the large shape is where the shared-bin histogram kernel pulls
    // ahead (~1.4–2.4× measured on one core).
    for (shape, rows, cols) in [("400x24", 400usize, 24usize), ("2000x24", 2000, 24)] {
        let mut rng = Xoshiro256pp::from_seed_stream(11, 0);
        let x: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.next_f64() * 10.0).collect())
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                vec![r
                    .iter()
                    .enumerate()
                    .map(|(j, v)| v * (j as f64 + 1.0))
                    .sum::<f64>()]
            })
            .collect();
        let data = Dataset::ungrouped(
            DenseMatrix::from_rows(&x).unwrap(),
            DenseMatrix::from_rows(&y).unwrap(),
        )
        .unwrap();

        for (name, binned) in [("exact", false), ("binned", true)] {
            g.bench_function(format!("forest_fit_{name}_{shape}"), |b| {
                b.iter(|| {
                    let mut m = RandomForestRegressor::new(30)
                        .with_max_depth(10)
                        .with_seed(3)
                        .with_binned(binned);
                    m.fit(black_box(&data)).unwrap();
                    m
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_incremental_eval, bench_forest_split_kernels);
criterion_main!(benches);
