//! Sweep-service benchmarks: what the cell cache buys on a re-run.
//!
//! `sweep_warm_vs_cold` measures the same small grid three ways — no
//! cache, cold cache (store every cell), warm cache (every cell a
//! verified hit) — so the tracked numbers expose both the caching
//! overhead on first contact and the near-free re-run.

use std::path::PathBuf;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_core::pipeline::EncodedCorpus;
use pv_core::sweep::{CellCache, GridSpec, Sweep};
use pv_core::{ModelKind, ReprKind};
use pv_sysmodel::{Corpus, SystemModel};

/// A scratch cache directory unique to this process.
fn scratch_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pv-sweep-bench-{}-{name}", std::process::id()))
}

fn bench_sweep_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_warm_vs_cold");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);

    let corpus = Corpus::collect(&SystemModel::intel(), 100, 7);
    let grid = GridSpec {
        reprs: vec![ReprKind::Histogram, ReprKind::PearsonRnd],
        models: vec![ModelKind::Knn],
        sample_counts: vec![5, 10, 25],
        seeds: vec![7],
        profiles_per_benchmark: 1,
    };
    let enc = EncodedCorpus::build(&corpus, &grid.few_runs_encoding()).unwrap();

    g.bench_function("uncached_6_cells", |b| {
        let sweep = Sweep::few_runs(&enc);
        b.iter(|| sweep.run(black_box(&grid)).unwrap())
    });

    g.bench_function("cold_cache_6_cells", |b| {
        // Every iteration starts from an empty directory, so each cell
        // is computed and stored: the cache's worst case.
        let dir = scratch_dir("cold");
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let sweep = Sweep::few_runs(&enc).with_cache(CellCache::new(&dir));
            sweep.run(black_box(&grid)).unwrap()
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.bench_function("warm_cache_6_cells", |b| {
        // The directory is pre-populated once; every iteration is pure
        // verified hits.
        let dir = scratch_dir("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let sweep = Sweep::few_runs(&enc).with_cache(CellCache::new(&dir));
        let seeded = sweep.run(&grid).unwrap();
        assert_eq!(seeded.misses, seeded.cells.len());
        b.iter(|| {
            let report = sweep.run(black_box(&grid)).unwrap();
            assert_eq!(report.misses, 0);
            report
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.finish();
}

criterion_group!(benches, bench_sweep_warm_vs_cold);
criterion_main!(benches);
