//! Benchmarks for the ML substrate: training and prediction of the three
//! model families on realistic problem sizes (59 benchmarks × 272 profile
//! features × 4–15 outputs — the shapes the evaluation actually uses).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_ml::{
    Dataset, DenseMatrix, Distance, GradientBoostingRegressor, KnnRegressor, MaxFeatures,
    RandomForestRegressor, Regressor,
};
use pv_stats::rng::Xoshiro256pp;
use rand::Rng;
use rand::SeedableRng;

/// Synthetic regression problem with the evaluation's shape.
fn problem(n: usize, d: usize, t: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n * t);
    for _ in 0..n {
        let latent: f64 = rng.gen();
        for j in 0..d {
            x.push(latent * (j % 7) as f64 + rng.gen::<f64>());
        }
        for k in 0..t {
            y.push(latent * (k + 1) as f64 + 0.1 * rng.gen::<f64>());
        }
    }
    Dataset::ungrouped(
        DenseMatrix::from_flat(n, d, x).unwrap(),
        DenseMatrix::from_flat(n, t, y).unwrap(),
    )
    .unwrap()
}

fn bench_knn(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let data = problem(59, 272, 4, 1);
    g.bench_function("fit_59x272", |b| {
        b.iter(|| {
            let mut m = KnnRegressor::new(15).with_distance(Distance::Cosine);
            m.fit(black_box(&data)).unwrap();
            m
        })
    });
    let mut m = KnnRegressor::new(15).with_distance(Distance::Cosine);
    m.fit(&data).unwrap();
    let q: Vec<f64> = data.x.row(0).to_vec();
    g.bench_function("predict_59x272", |b| {
        b.iter(|| m.predict(black_box(&q)).unwrap())
    });
    g.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let data = problem(59, 272, 4, 2);
    g.bench_function("fit_100trees_59x272", |b| {
        b.iter(|| {
            let mut m = RandomForestRegressor::new(100)
                .with_max_depth(14)
                .with_max_features(MaxFeatures::Sqrt)
                .with_seed(3);
            m.fit(black_box(&data)).unwrap();
            m
        })
    });
    let mut m = RandomForestRegressor::new(100).with_seed(3);
    m.fit(&data).unwrap();
    let q: Vec<f64> = data.x.row(1).to_vec();
    g.bench_function("predict_100trees", |b| {
        b.iter(|| m.predict(black_box(&q)).unwrap())
    });
    g.finish();
}

fn bench_gbt(c: &mut Criterion) {
    let mut g = c.benchmark_group("gbt");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let data = problem(59, 272, 4, 4);
    g.bench_function("fit_80rounds_59x272", |b| {
        b.iter(|| {
            let mut m = GradientBoostingRegressor::new(80)
                .with_max_depth(3)
                .with_seed(5);
            m.fit(black_box(&data)).unwrap();
            m
        })
    });
    g.finish();
}

criterion_group!(benches, bench_knn, bench_forest, bench_gbt);
criterion_main!(benches);
