//! Benchmarks for the distribution-reconstruction engines: Pearson-system
//! fitting/sampling (`pearsrnd`) and the maximum-entropy Newton solver.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_maxent::{MaxEntDensity, MaxEntOptions};
use pv_pearson::PearsonDist;
use pv_stats::moments::MomentSummary;
use pv_stats::rng::Xoshiro256pp;
use rand::SeedableRng;

fn spec(skew: f64, kurt: f64) -> MomentSummary {
    MomentSummary {
        mean: 1.0,
        std: 0.05,
        skewness: skew,
        kurtosis: kurt,
    }
}

fn bench_pearson(c: &mut Criterion) {
    let mut g = c.benchmark_group("pearson");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for (name, s) in [
        ("fit_type0", spec(0.0, 3.0)),
        ("fit_typeI", spec(0.6, 2.9)),
        ("fit_typeIV", spec(0.8, 5.0)),
        ("fit_typeVI", spec(1.8, 9.0)),
    ] {
        g.bench_function(name, |b| b.iter(|| PearsonDist::fit(black_box(s)).unwrap()));
    }
    let d = PearsonDist::fit(spec(0.8, 5.0)).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    g.bench_function("sample_1000_typeIV", |b| {
        b.iter(|| d.sample_n(&mut rng, black_box(1000)))
    });
    let d0 = PearsonDist::fit(spec(0.0, 3.0)).unwrap();
    g.bench_function("sample_1000_type0", |b| {
        b.iter(|| d0.sample_n(&mut rng, black_box(1000)))
    });
    g.finish();
}

fn bench_maxent(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxent");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(20);
    for (name, s) in [
        ("solve_normal", spec(0.0, 3.0)),
        ("solve_skewed", spec(0.7, 3.8)),
        ("solve_platykurtic", spec(0.0, 1.9)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| MaxEntDensity::from_summary(black_box(&s), (0.8, 1.25)).unwrap())
        });
    }
    // Quadrature-order sensitivity of the solver.
    let s = spec(0.4, 3.4);
    let mu = pv_maxent::central_to_raw_moments(&s);
    for order in [32usize, 96] {
        let opts = MaxEntOptions {
            quad_order: order,
            ..MaxEntOptions::default()
        };
        g.bench_function(format!("solve_quad{order}"), |b| {
            b.iter(|| pv_maxent::solve_maxent(black_box(&mu), 0.8, 1.25, &opts).unwrap())
        });
    }
    let d = MaxEntDensity::from_summary(&spec(0.3, 3.2), (0.8, 1.25)).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    g.bench_function("sample_1000", |b| {
        b.iter(|| d.sample_n(&mut rng, black_box(1000)))
    });
    g.finish();
}

criterion_group!(benches, bench_pearson, bench_maxent);
criterion_main!(benches);
