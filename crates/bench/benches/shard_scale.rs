//! Sharded data-plane benchmarks: encode throughput of the streaming
//! shard builder, the sharded-vs-monolithic evaluation overhead (the
//! re-layering claims ≤5% on a resident working set — the two numbers
//! reported here pin it), and the peak-memory ceiling of a scale
//! campaign that would cost hundreds of megabytes to materialize
//! monolithically.
//!
//! The memory check runs first, before anything else allocates a whole
//! corpus: it builds a 2,000-benchmark × 500-run campaign (≈600 MB of
//! raw run records if collected at once) through `ShardedCorpus` with a
//! 4-shard resident budget and asserts the process high-water mark
//! stays under a quarter of that.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_core::eval::{evaluate_few_runs_sharded, few_runs_spec};
use pv_core::pipeline::EncodedCorpus;
use pv_core::shard::{CampaignSource, ShardSource, ShardedCorpus};
use pv_core::usecase1::FewRunsConfig;
use pv_core::{evaluate_few_runs_encoded, ModelKind, ReprKind};
use pv_sysmodel::{collect_benchmarks, scaled_roster, Corpus, SystemModel};

fn cfg() -> FewRunsConfig {
    FewRunsConfig {
        repr: ReprKind::PearsonRnd,
        model: ModelKind::Knn,
        n_profile_runs: 5,
        profiles_per_benchmark: 1,
        seed: 0xC0FFEE,
    }
}

fn campaign(n_benchmarks: usize, n_runs: usize) -> CampaignSource {
    CampaignSource {
        system: SystemModel::intel(),
        n_benchmarks,
        n_runs,
        seed: 7,
    }
}

/// The process peak resident set in bytes (`VmHWM`), or `None` off
/// Linux — the ceiling assertion is skipped there.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Scale scenario: 2,000 benchmarks never materialize at once. Runs
/// before any monolithic allocation so the high-water mark reflects the
/// sharded path alone.
fn bench_scale_memory_ceiling(c: &mut Criterion) {
    const CEILING: u64 = 160 * 1024 * 1024;
    let source = campaign(2000, 500);
    let sh = ShardedCorpus::builder(ShardSource::Campaign(source), &few_runs_spec(&cfg()))
        .shard_size(64)
        .resident_shards(4)
        .build()
        .unwrap();
    assert_eq!(sh.len(), 2000);
    assert!(sh.n_resident() <= 4);
    if let Some(peak) = peak_rss_bytes() {
        assert!(
            peak < CEILING,
            "sharded scale build peaked at {} MB, ceiling {} MB",
            peak >> 20,
            CEILING >> 20,
        );
        println!(
            "scale campaign (2000 bench x 500 runs, shard 64, budget 4): peak RSS {} MB",
            peak >> 20
        );
    }
    drop(sh);

    // Faulting an evicted shard back in (recompute, no spill) is the
    // steady-state cost of touching a cold range at scale.
    let source = campaign(256, 100);
    let sh = ShardedCorpus::builder(ShardSource::Campaign(source), &few_runs_spec(&cfg()))
        .shard_size(64)
        .resident_shards(1)
        .build()
        .unwrap();
    let mut g = c.benchmark_group("shard_scale");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.bench_function("fault_in_evicted_shard_64bench", |b| {
        b.iter(|| {
            // Budget 1: touching shard 0 then shard 3 always recomputes.
            black_box(sh.shard(0).unwrap());
            black_box(sh.shard(3).unwrap());
        })
    });
    g.finish();
}

/// Streaming generate+encode throughput of the shard builder.
fn bench_encode_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_encode");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);
    let spec = few_runs_spec(&cfg());
    g.bench_function("sharded_build_256bench_100runs", |b| {
        b.iter(|| {
            ShardedCorpus::builder(ShardSource::Campaign(campaign(256, 100)), &spec)
                .shard_size(64)
                .build()
                .unwrap()
        })
    });
    g.bench_function("monolithic_build_256bench_100runs", |b| {
        let sys = SystemModel::intel();
        let ids = scaled_roster(256);
        b.iter(|| {
            let corpus = Corpus {
                system: sys.id,
                n_runs: 100,
                seed: 7,
                benchmarks: collect_benchmarks(&sys, &ids, 100, 7),
            };
            let enc = EncodedCorpus::build(&corpus, &spec).unwrap();
            black_box(enc.len())
        })
    });
    g.finish();
}

/// LOGO evaluation through shards vs the monolithic encoded corpus on
/// the paper roster. The two numbers this group reports are the ≤5%
/// overhead claim; the tripwire assertion below only catches gross
/// regressions so noisy CI boxes don't flake.
fn bench_eval_overhead(c: &mut Criterion) {
    let corpus = Corpus::collect(&SystemModel::intel(), 100, 7);
    let cfg = cfg();
    let spec = few_runs_spec(&cfg);
    let enc = EncodedCorpus::build(&corpus, &spec).unwrap();
    let sh = ShardedCorpus::builder(ShardSource::Corpus(&corpus), &spec)
        .shard_size(16)
        .build()
        .unwrap();
    let mono = evaluate_few_runs_encoded(&enc, cfg).unwrap();
    let sharded = evaluate_few_runs_sharded(&sh, cfg).unwrap();
    assert_eq!(mono, sharded, "sharded eval must be bit-identical");

    let time = |f: &dyn Fn()| {
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            f();
            best = best.min(t.elapsed());
        }
        best
    };
    let t_mono = time(&|| {
        black_box(evaluate_few_runs_encoded(&enc, cfg).unwrap());
    });
    let t_shard = time(&|| {
        black_box(evaluate_few_runs_sharded(&sh, cfg).unwrap());
    });
    let ratio = t_shard.as_secs_f64() / t_mono.as_secs_f64();
    println!("sharded/monolithic eval ratio: {ratio:.3} ({t_shard:.1?} vs {t_mono:.1?})");
    assert!(
        ratio < 1.25,
        "sharded eval overhead {ratio:.3}x exceeds the 1.25x tripwire"
    );

    let mut g = c.benchmark_group("shard_eval");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);
    g.bench_function("monolithic_logo_60bench", |b| {
        b.iter(|| evaluate_few_runs_encoded(black_box(&enc), cfg).unwrap())
    });
    g.bench_function("sharded_logo_60bench_shard16", |b| {
        b.iter(|| evaluate_few_runs_sharded(black_box(&sh), cfg).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scale_memory_ceiling,
    bench_encode_throughput,
    bench_eval_overhead
);
criterion_main!(benches);
