//! Serving-path throughput: the `pv-serve` engine answering prediction
//! requests in-process, single-line vs micro-batched.
//!
//! The engine carries the campaign's default use-case-1 model
//! (pearsonrnd + kNN at s = 10) exactly as `repro train` seals it; each
//! request decodes `n_samples = 100` reconstruction samples, so the
//! numbers are end-to-end (parse → predict → decode → render), not
//! model-predict alone. `batched_64` also asserts the acceptance floor:
//! sustained throughput must clear 2,000 predictions/second.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::serve::{Outcome, ServeEngine, ServeTelemetry, ServedModel, TelemetryOpts};
use pv_bench::{uc1_config, CAMPAIGN_SEED};
use pv_core::registry::artifact_key;
use pv_core::sweep::CellConfig;
use pv_core::usecase1::FewRunsPredictor;
use pv_core::{corpus_fingerprint, ModelKind, Profile, ReprKind};
use pv_sysmodel::{Corpus, SystemModel};
use rayon::prelude::*;

/// Three engines (plain, resilience-enabled, and full-telemetry) plus a
/// ring of pre-rendered request lines, trained once per process. 200
/// runs per benchmark keeps setup to a few seconds while leaving the
/// serving path identical to production.
fn fixture() -> &'static (ServeEngine, ServeEngine, ServeEngine, Vec<String>) {
    static FIXTURE: OnceLock<(ServeEngine, ServeEngine, ServeEngine, Vec<String>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::collect(&SystemModel::intel(), 200, CAMPAIGN_SEED);
        let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
        let include: Vec<usize> = (0..corpus.len()).collect();
        let predictor = FewRunsPredictor::train(&corpus, &include, cfg).expect("train");
        let key =
            artifact_key(corpus_fingerprint(&corpus), &CellConfig::FewRuns(cfg)).expect("key");
        let engine_for = |p: FewRunsPredictor| {
            let mut models = HashMap::new();
            models.insert(key, ServedModel::FewRuns(p));
            ServeEngine::from_models(models)
        };
        let twin = || {
            FewRunsPredictor::from_artifact(predictor.to_artifact()).expect("artifact roundtrip")
        };
        let resilient = engine_for(twin()).with_deadline(Some(Duration::from_secs(5)));
        // The full telemetry plane as an operator would run it: rolling
        // windows (always on), an SLO budget, the flight recorder, and
        // a real JSONL access log on disk.
        let scratch =
            std::env::temp_dir().join(format!("pv-serve-throughput-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&scratch);
        let telemetry = ServeTelemetry::new(TelemetryOpts {
            access_log: Some(scratch.join("access.jsonl")),
            slo: Some(Duration::from_millis(250)),
            recorder: Some(scratch.join("flight.jsonl")),
            ..TelemetryOpts::default()
        })
        .expect("telemetry");
        let telemetered = engine_for(twin())
            .with_deadline(Some(Duration::from_secs(5)))
            .with_telemetry(telemetry);
        let engine = engine_for(predictor);
        let lines: Vec<String> = corpus
            .benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let profile = Profile::from_runs(&b.runs, 10).expect("profile");
                format!(
                    "{{\"id\": {i}, \"model\": \"{key:016x}\", \"profile\": {}, \
                     \"n_samples\": 100, \"sample_seed\": {i}}}",
                    serde_json::to_string(&profile).expect("json")
                )
            })
            .collect();
        (engine, resilient, telemetered, lines)
    })
}

fn bench_serve_throughput(c: &mut Criterion) {
    let (engine, resilient, telemetered, lines) = fixture();
    let mut g = c.benchmark_group("serve_throughput");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));

    g.bench_function("single_line", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let line = &lines[i % lines.len()];
            i += 1;
            let (resp, outcome) = engine.handle_line(black_box(line));
            assert_eq!(outcome, Outcome::Ok, "{resp}");
            resp
        })
    });

    g.bench_function("batched_64", |b| {
        let batch: Vec<&str> = (0..64).map(|i| lines[i % lines.len()].as_str()).collect();
        b.iter(|| {
            let out = engine.handle_batch(black_box(&batch));
            assert!(out.iter().all(|(_, o)| *o == Outcome::Ok));
            out
        })
    });

    g.bench_function("resilient_batched_64", |b| {
        // The daemon's dispatch shape with the resilience layer live:
        // per-request deadline checks via handle_timed across rayon.
        let batch: Vec<&str> = (0..64).map(|i| lines[i % lines.len()].as_str()).collect();
        b.iter(|| {
            let now = Instant::now();
            let work: Vec<(usize, &str)> = batch.iter().copied().enumerate().collect();
            let out: Vec<(String, Outcome)> = work
                .into_par_iter()
                .map(|(k, line)| resilient.handle_timed(black_box(line), k as u64, now))
                .collect();
            assert!(out.iter().all(|(_, o)| *o == Outcome::Ok));
            out
        })
    });

    g.bench_function("telemetry_batched_64", |b| {
        // The full observability plane live: sealed replies feeding the
        // rolling windows, SLO budget, flight-recorder ring, and the
        // JSONL access log, across rayon like the daemon's batcher.
        let batch: Vec<&str> = (0..64).map(|i| lines[i % lines.len()].as_str()).collect();
        b.iter(|| {
            let now = Instant::now();
            let work: Vec<(usize, &str)> = batch.iter().copied().enumerate().collect();
            let out: Vec<usize> = work
                .into_par_iter()
                .map(|(k, line)| {
                    let reply = telemetered.handle_timed_sealed(black_box(line), k as u64, now);
                    if let Some(record) = reply.record {
                        record.finish(0);
                    }
                    reply.text.len()
                })
                .collect();
            assert_eq!(out.len(), 64);
            out
        })
    });

    g.finish();

    // Acceptance floor: the batched path must sustain >= 2,000
    // predictions/second — bare, with the resilience layer (deadline
    // checks) enabled, and with the full telemetry plane (windows +
    // SLO + recorder + access log) enabled. Checked outside criterion's
    // sampler so a regression fails the bench run loudly instead of
    // only shifting a tracked number.
    let batch: Vec<&str> = (0..64).map(|i| lines[i % lines.len()].as_str()).collect();
    for (label, run) in [
        (
            "bare",
            Box::new(|| {
                let out = engine.handle_batch(&batch);
                assert!(out.iter().all(|(_, o)| *o == Outcome::Ok));
                out.len()
            }) as Box<dyn Fn() -> usize>,
        ),
        (
            "resilient",
            Box::new(|| {
                let now = Instant::now();
                let work: Vec<(usize, &str)> = batch.iter().copied().enumerate().collect();
                let out: Vec<(String, Outcome)> = work
                    .into_par_iter()
                    .map(|(k, line)| resilient.handle_timed(line, k as u64, now))
                    .collect();
                assert!(out.iter().all(|(_, o)| *o == Outcome::Ok));
                out.len()
            }),
        ),
        (
            "telemetry",
            Box::new(|| {
                let now = Instant::now();
                let work: Vec<(usize, &str)> = batch.iter().copied().enumerate().collect();
                let out: Vec<bool> = work
                    .into_par_iter()
                    .map(|(k, line)| {
                        let reply = telemetered.handle_timed_sealed(line, k as u64, now);
                        let ok = reply.text.contains("\"ok\":true");
                        if let Some(record) = reply.record {
                            record.finish(0);
                        }
                        ok
                    })
                    .collect();
                assert!(out.iter().all(|&ok| ok));
                out.len()
            }),
        ),
    ] {
        let started = Instant::now();
        let mut answered = 0usize;
        while started.elapsed() < Duration::from_secs(2) {
            answered += run();
        }
        let rate = answered as f64 / started.elapsed().as_secs_f64();
        println!("serve_throughput[{label}]: sustained {rate:.0} predictions/sec (floor 2000)");
        assert!(
            rate >= 2000.0,
            "serving throughput [{label}] {rate:.0} predictions/sec is below the 2,000/sec floor"
        );
    }
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
