//! Observability overhead: the `logo_eval` workload with the collector
//! off versus on.
//!
//! The contract this bench documents (ISSUE 4): with **no collector
//! installed** every `pv_obs` macro must reduce to one relaxed atomic
//! load and a branch, so `collector_off` must stay within noise of the
//! same workload before pv-obs existed — the `logo_eval` and
//! `sweep_warm_vs_cold` benches pin that externally. FAIL LOUDLY: if
//! `collector_off` ever regresses more than ~5% against
//! `logo_eval/pipeline_prebuilt_cache`, the disabled path has grown real
//! work and must be fixed, not re-baselined. `collector_on` is expected
//! to cost a few percent more (span buffering + atomic counters); it
//! quantifies what `--trace-out`/`--metrics-out` actually costs.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::uc1_config;
use pv_core::eval::{evaluate_few_runs_encoded, few_runs_spec};
use pv_core::pipeline::EncodedCorpus;
use pv_core::{ModelKind, ReprKind};
use pv_obs::Collector;
use pv_sysmodel::{Corpus, SystemModel};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);
    let corpus = Corpus::collect(&SystemModel::intel(), 100, 7);
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
    let enc = EncodedCorpus::build(&corpus, &few_runs_spec(&cfg)).unwrap();

    // Identical workload to logo_eval/pipeline_prebuilt_cache: every
    // span!/timed! site is compiled in, no collector installed.
    g.bench_function("collector_off", |b| {
        b.iter(|| evaluate_few_runs_encoded(black_box(&enc), cfg).unwrap())
    });

    // Same workload recording: spans buffer + flush, timers feed latency
    // histograms. Draining per iteration keeps the trace buffer from
    // growing monotonically across samples.
    g.bench_function("collector_on", |b| {
        b.iter(|| {
            let collector = Collector::install();
            let summary = evaluate_few_runs_encoded(black_box(&enc), cfg).unwrap();
            let report = collector.finish();
            black_box((summary, report.events.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
