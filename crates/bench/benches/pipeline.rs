//! End-to-end pipeline benchmarks: the costs a user actually pays —
//! collecting a corpus, training a predictor, and producing one
//! distribution prediction. One bench per paper exhibit family.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::{uc1_config, uc2_config};
use pv_core::eval::{
    evaluate_few_runs, evaluate_few_runs_encoded, few_runs_spec, RECONSTRUCTION_SAMPLES,
};
use pv_core::pipeline::EncodedCorpus;
use pv_core::usecase1::FewRunsPredictor;
use pv_core::usecase2::CrossSystemPredictor;
use pv_core::{ModelKind, ReprKind};
use pv_stats::ks::ks2_statistic;
use pv_stats::rng::derive_stream;
use pv_sysmodel::{Corpus, SystemModel};

fn bench_corpus_collection(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.bench_function("collect_60x100_intel", |b| {
        b.iter(|| Corpus::collect(black_box(&SystemModel::intel()), 100, 7))
    });
    g.finish();
}

fn bench_use_case_one(c: &mut Criterion) {
    let mut g = c.benchmark_group("usecase1");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let corpus = Corpus::collect(&SystemModel::intel(), 100, 7);
    let include: Vec<usize> = (1..corpus.len()).collect();
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
    g.bench_function("train_knn_pearson", |b| {
        b.iter(|| FewRunsPredictor::train(black_box(&corpus), &include, cfg).unwrap())
    });
    let predictor = FewRunsPredictor::train(&corpus, &include, cfg).unwrap();
    g.bench_function("predict_1000_samples", |b| {
        b.iter(|| {
            predictor
                .predict_distribution(black_box(&corpus.benchmarks[0].runs), 1000, 1)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_use_case_two(c: &mut Criterion) {
    let mut g = c.benchmark_group("usecase2");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let amd = Corpus::collect(&SystemModel::amd(), 100, 7);
    let intel = Corpus::collect(&SystemModel::intel(), 100, 7);
    let include: Vec<usize> = (1..amd.len()).collect();
    let cfg = uc2_config(ReprKind::PearsonRnd, ModelKind::Knn);
    g.bench_function("train_knn_pearson", |b| {
        b.iter(|| CrossSystemPredictor::train(black_box(&amd), &intel, &include, cfg).unwrap())
    });
    let predictor = CrossSystemPredictor::train(&amd, &intel, &include, cfg).unwrap();
    g.bench_function("predict_1000_samples", |b| {
        b.iter(|| {
            predictor
                .predict_distribution(black_box(&amd.benchmarks[0]), 1000, 1)
                .unwrap()
        })
    });
    g.finish();
}

/// The tentpole speedup: a full LOGO evaluation with profiles/encodings
/// computed once (`EncodedCorpus` + `FoldRunner`) versus the historical
/// shape that trained a fresh predictor per fold, recomputing every
/// profile and encoding ~n times. All three produce bit-identical
/// `EvalSummary`s (asserted in `tests/pipeline_equivalence.rs`).
fn bench_logo_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("logo_eval");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.sample_size(10);
    let corpus = Corpus::collect(&SystemModel::intel(), 100, 7);
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);

    g.bench_function("naive_train_per_fold", |b| {
        use rayon::prelude::*;
        // Parallel over folds exactly like the historical
        // `evaluate_few_runs`, so the delta measured here is the
        // redundant per-fold profile/encoding work alone.
        b.iter(|| {
            let n = corpus.len();
            let last: f64 = (0..n)
                .into_par_iter()
                .map(|held| {
                    let include: Vec<usize> = (0..n).filter(|&i| i != held).collect();
                    let mut fold_cfg = cfg;
                    fold_cfg.seed = derive_stream(cfg.seed, held as u64);
                    let p =
                        FewRunsPredictor::train(black_box(&corpus), &include, fold_cfg).unwrap();
                    let bench = &corpus.benchmarks[held];
                    let predicted = p
                        .predict_distribution(&bench.runs, RECONSTRUCTION_SAMPLES, held as u64)
                        .unwrap();
                    ks2_statistic(&predicted, &bench.runs.rel_times()).unwrap()
                })
                .collect::<Vec<f64>>()
                .iter()
                .sum();
            last
        })
    });
    g.bench_function("pipeline_encode_then_fold", |b| {
        b.iter(|| evaluate_few_runs(black_box(&corpus), cfg).unwrap())
    });
    let enc = EncodedCorpus::build(&corpus, &few_runs_spec(&cfg)).unwrap();
    g.bench_function("pipeline_prebuilt_cache", |b| {
        b.iter(|| evaluate_few_runs_encoded(black_box(&enc), cfg).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_corpus_collection,
    bench_use_case_one,
    bench_use_case_two,
    bench_logo_eval
);
criterion_main!(benches);
