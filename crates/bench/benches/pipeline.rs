//! End-to-end pipeline benchmarks: the costs a user actually pays —
//! collecting a corpus, training a predictor, and producing one
//! distribution prediction. One bench per paper exhibit family.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::{uc1_config, uc2_config};
use pv_core::usecase1::FewRunsPredictor;
use pv_core::usecase2::CrossSystemPredictor;
use pv_core::{ModelKind, ReprKind};
use pv_sysmodel::{Corpus, SystemModel};

fn bench_corpus_collection(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    g.bench_function("collect_60x100_intel", |b| {
        b.iter(|| Corpus::collect(black_box(&SystemModel::intel()), 100, 7))
    });
    g.finish();
}

fn bench_use_case_one(c: &mut Criterion) {
    let mut g = c.benchmark_group("usecase1");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let corpus = Corpus::collect(&SystemModel::intel(), 100, 7);
    let include: Vec<usize> = (1..corpus.len()).collect();
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
    g.bench_function("train_knn_pearson", |b| {
        b.iter(|| FewRunsPredictor::train(black_box(&corpus), &include, cfg).unwrap())
    });
    let predictor = FewRunsPredictor::train(&corpus, &include, cfg).unwrap();
    g.bench_function("predict_1000_samples", |b| {
        b.iter(|| {
            predictor
                .predict_distribution(black_box(&corpus.benchmarks[0].runs), 1000, 1)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_use_case_two(c: &mut Criterion) {
    let mut g = c.benchmark_group("usecase2");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    let amd = Corpus::collect(&SystemModel::amd(), 100, 7);
    let intel = Corpus::collect(&SystemModel::intel(), 100, 7);
    let include: Vec<usize> = (1..amd.len()).collect();
    let cfg = uc2_config(ReprKind::PearsonRnd, ModelKind::Knn);
    g.bench_function("train_knn_pearson", |b| {
        b.iter(|| {
            CrossSystemPredictor::train(black_box(&amd), &intel, &include, cfg).unwrap()
        })
    });
    let predictor = CrossSystemPredictor::train(&amd, &intel, &include, cfg).unwrap();
    g.bench_function("predict_1000_samples", |b| {
        b.iter(|| {
            predictor
                .predict_distribution(black_box(&amd.benchmarks[0]), 1000, 1)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_corpus_collection,
    bench_use_case_one,
    bench_use_case_two
);
criterion_main!(benches);
