//! Microbenchmarks for the statistical substrate: the primitives every
//! experiment calls thousands of times.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_stats::histogram::Histogram;
use pv_stats::kde::{Bandwidth, Kde};
use pv_stats::ks::ks2_statistic;
use pv_stats::moments::Moments;
use pv_stats::rng::Xoshiro256pp;
use pv_stats::samplers::{Normal, Sampler};
use rand::SeedableRng;

fn data(n: usize, seed: u64) -> Vec<f64> {
    let d = Normal::new(1.0, 0.05).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    d.sample_n(&mut rng, n)
}

fn bench_moments(c: &mut Criterion) {
    let mut g = c.benchmark_group("moments");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for n in [100usize, 1000, 10_000] {
        let xs = data(n, 1);
        g.bench_with_input(BenchmarkId::new("one_pass", n), &xs, |b, xs| {
            b.iter(|| Moments::from_slice(black_box(xs)).summary())
        });
    }
    g.finish();
}

fn bench_ks(c: &mut Criterion) {
    let mut g = c.benchmark_group("ks");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for n in [100usize, 1000] {
        let a = data(n, 2);
        let b2 = data(n, 3);
        g.bench_with_input(BenchmarkId::new("two_sample", n), &n, |b, _| {
            b.iter(|| ks2_statistic(black_box(&a), black_box(&b2)).unwrap())
        });
    }
    g.finish();
}

fn bench_kde(c: &mut Criterion) {
    let mut g = c.benchmark_group("kde");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let xs = data(1000, 4);
    g.bench_function("fit_1000", |b| {
        b.iter(|| Kde::fit(black_box(&xs), Bandwidth::Silverman).unwrap())
    });
    let kde = Kde::fit(&xs, Bandwidth::Silverman).unwrap();
    g.bench_function("grid_64_over_1000pts", |b| {
        b.iter(|| kde.grid(black_box(0.8), black_box(1.2), 64))
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let xs = data(1000, 5);
    g.bench_function("build_1000x15", |b| {
        b.iter(|| Histogram::from_data_with_range(black_box(&xs), 0.7, 1.5, 15).unwrap())
    });
    let h = Histogram::from_data_with_range(&xs, 0.7, 1.5, 15).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(6);
    g.bench_function("sample_1000", |b| {
        b.iter(|| h.sample_n(&mut rng, black_box(1000)))
    });
    g.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("samplers");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let normal = Normal::new(0.0, 1.0).unwrap();
    g.bench_function("normal_1000", |b| {
        b.iter(|| normal.sample_n(&mut rng, black_box(1000)))
    });
    let gamma = pv_stats::samplers::Gamma::new(2.5, 1.0).unwrap();
    g.bench_function("gamma_1000", |b| {
        b.iter(|| gamma.sample_n(&mut rng, black_box(1000)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_moments,
    bench_ks,
    bench_kde,
    bench_histogram,
    bench_samplers
);
criterion_main!(benches);
