//! The `pv-serve` query protocol and daemon engine.
//!
//! A registry directory (see [`pv_core::registry`]) is the deployable
//! unit; this module turns one into a long-lived query service. The
//! protocol is line-delimited JSON on stdin/stdout or a unix socket:
//!
//! ```text
//! → {"model": "b3e1…", "profile": {"n_runs": 10, "n_metrics": 68, "features": […]}}
//! ← {"ok": true, "model": "b3e1…", "prediction": {"features": […], "samples": […]},
//!    "ks_confidence": null}
//! ```
//!
//! Request fields: `model` (registry key, 16-hex-digit string or
//! integer; required), `profile` (a [`Profile`]; required), `rel_times`
//! (measured relative times; required for cross-system models, and when
//! present also scores `ks_confidence`), `n_samples` (default 1000),
//! `sample_seed` (default 0), `id` (any JSON value, echoed back
//! verbatim), `shutdown` (`true` asks the daemon to ack and exit 0).
//! An `"op"` field selects non-prediction operations: `"health"` (the
//! readiness probe — state plus per-model staleness), `"reload"`
//! (atomically swap in a freshly verified registry snapshot), and
//! `"shutdown"`/`"predict"` as aliases for the field-based forms.
//!
//! Every failure is a *typed response*, never a crash: unparsable or
//! oversized lines get `{"ok": false, "error": {"kind": "bad-request",
//! …}}`, an unknown model key `"not-found"`, a prediction-time failure
//! `"invalid"`, a request that blew its `--deadline-ms` budget
//! `"timeout"`, one shed by the bounded admission queue `"overloaded"`,
//! and one arriving while the daemon drains for shutdown `"draining"`.
//! The daemon micro-batches concurrent queries — whatever is queued
//! when a worker looks, up to a batch cap — across the rayon pool, and
//! exports `pv.serve.*` metrics through `pv-obs`: by construction
//! `pv.serve.request` equals the total response count and the per-kind
//! counters partition it (pinned by `tests/serve_protocol.rs` and
//! `tests/serve_chaos.rs`).
//!
//! # Failure semantics on the serving path
//!
//! * **Deadlines** apply to predictions only (`health`/`reload`/
//!   `shutdown` are exempt): a request whose elapsed time — including
//!   any [`ServeFaultPlan`]-injected *virtual* delay — exceeds the
//!   deadline when a worker picks it up is answered `timeout` without
//!   running the prediction. Virtual delays make "slow model blows the
//!   deadline" deterministic at any thread count.
//! * **Load shedding** happens at admission: the reader rejects a line
//!   with `overloaded` the moment the bounded queue is full, so a
//!   flood degrades into fast typed rejections instead of unbounded
//!   buffering. `pv.serve.shed` counts sheds; `pv.serve.queue_depth` /
//!   `pv.serve.queue_high_watermark` gauge the queue.
//! * **Hot reload** re-verifies every registry entry and atomically
//!   swaps the model table; in-flight requests keep the old snapshot
//!   (each holds an `Arc`). An entry that fails verification keeps its
//!   previously loaded version live (`held_over`) and marks the daemon
//!   `degraded`; an entry deleted from disk is dropped. A reload that
//!   cannot read the registry at all leaves the old snapshot serving.
//! * **Drain**: after a shutdown ack the daemon state becomes
//!   `draining` — already-admitted requests are answered, new lines get
//!   a typed `draining` rejection, then the dispatcher exits.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use rayon::prelude::*;
use serde::Content;

use pv_core::registry::{ModelRegistry, REGISTRY_OBS_COUNTERS};
use pv_core::resilience::{PvError, ServeFaultPlan};
use pv_core::usecase1::FewRunsPredictor;
use pv_core::usecase2::CrossSystemPredictor;
use pv_core::{Artifact, Profile};
use pv_obs::window::{RollingCounter, RollingHisto, WindowClock, WINDOWS};
use pv_obs::{humanize_ns, telemetry::write_atomic, MetricsSnapshot};
use pv_stats::ks::ks2_test;

/// Default reconstruction sample count per prediction.
pub const DEFAULT_N_SAMPLES: usize = 1000;

/// Hard cap on `n_samples` — a typed refusal beats an allocation stall.
pub const MAX_N_SAMPLES: usize = 100_000;

/// Default micro-batch cap (requests drained per rayon dispatch).
pub const DEFAULT_BATCH: usize = 64;

/// Default maximum request line length in bytes.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// Default admission-queue capacity (queued-but-unanswered requests
/// before the daemon starts shedding). `0` means unbounded.
pub const DEFAULT_QUEUE: usize = 1024;

/// The real sleep cap for an injected slow-prediction fault. The
/// fault's full delay is *virtual* (counted against the deadline
/// arithmetically); only this much wall-clock is actually spent, enough
/// to exercise genuine backpressure without serializing the test tier.
pub const SLOW_FAULT_REAL_CAP: Duration = Duration::from_millis(25);

/// How long the dispatcher keeps answering late-arriving jobs after a
/// shutdown ack before abandoning the queue.
const DRAIN_GRACE: Duration = Duration::from_millis(50);

/// Default flight-recorder ring capacity (last N request events).
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// Default windowed shed/timeout burst size (over the 10s window) that
/// trips the flight recorder. `0` disables the burst triggers.
pub const DEFAULT_ANOMALY_THRESHOLD: u64 = 32;

/// The observability counters the serving layer emits. `pv.serve.request`
/// counts every line answered; the `pv.serve.request.*` counters plus
/// `pv.serve.shutdown` partition it by response kind; `pv.serve.batch`
/// counts rayon dispatches; `pv.serve.shed` counts admission rejections
/// (every shed is also an `overloaded` response); `pv.serve.reload` /
/// `pv.serve.reload.fail` count snapshot swap attempts and whole-reload
/// failures.
pub const SERVE_OBS_COUNTERS: &[&str] = &[
    "pv.serve.batch",
    "pv.serve.panic",
    "pv.serve.recorder.trip",
    "pv.serve.reload",
    "pv.serve.reload.fail",
    "pv.serve.request",
    "pv.serve.request.bad",
    "pv.serve.request.draining",
    "pv.serve.request.error",
    "pv.serve.request.health",
    "pv.serve.request.not_found",
    "pv.serve.request.ok",
    "pv.serve.request.overloaded",
    "pv.serve.request.reload",
    "pv.serve.request.stats",
    "pv.serve.request.timeout",
    "pv.serve.shed",
    "pv.serve.shutdown",
];

/// The gauges the serving layer maintains: instantaneous admission
/// queue depth and its high watermark.
pub const SERVE_OBS_GAUGES: &[&str] = &["pv.serve.queue_depth", "pv.serve.queue_high_watermark"];

/// Every counter and gauge a daemon process can emit (serve + registry
/// loads), preregistered at startup so metrics snapshots list zeros
/// explicitly.
pub fn preregister_serve_counters() {
    pv_obs::metrics::preregister_counters(SERVE_OBS_COUNTERS);
    pv_obs::metrics::preregister_counters(REGISTRY_OBS_COUNTERS);
    for name in SERVE_OBS_GAUGES {
        let _ = pv_obs::metrics::gauge(name);
    }
}

/// A raw JSON value — bridges `serde_json` text to a [`Content`] tree so
/// requests can be picked apart *leniently*: a malformed field yields a
/// typed error response instead of a whole-struct parse failure.
#[derive(Debug, Clone)]
pub struct Json(pub Content);

impl serde::Serialize for Json {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.0.clone())
    }
}

impl<'de> serde::Deserialize<'de> for Json {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_content().map(Json)
    }
}

/// How a request was answered — the response taxonomy the `pv.serve.*`
/// counters mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A successful prediction.
    Ok,
    /// The request line was unparsable, oversized, or semantically
    /// malformed.
    BadRequest,
    /// The model key is not in the registry.
    NotFound,
    /// The request was well-formed but prediction failed.
    Error,
    /// The request exceeded the per-request deadline before a worker
    /// could answer it.
    Timeout,
    /// The request was shed at admission (queue full or injected shed).
    Overloaded,
    /// The request arrived while the daemon was draining for shutdown.
    Draining,
    /// A health probe, answered.
    Health,
    /// A reload request, attempted (success or failure — the
    /// `pv.serve.reload*` counters carry which).
    Reload,
    /// A shutdown request, acked.
    Shutdown,
    /// A live-telemetry stats probe, answered.
    Stats,
}

impl Outcome {
    /// Every outcome, in the order the telemetry windows index them.
    pub const ALL: [Outcome; 11] = [
        Outcome::Ok,
        Outcome::BadRequest,
        Outcome::NotFound,
        Outcome::Error,
        Outcome::Timeout,
        Outcome::Overloaded,
        Outcome::Draining,
        Outcome::Health,
        Outcome::Reload,
        Outcome::Shutdown,
        Outcome::Stats,
    ];

    /// The counter this outcome increments.
    pub fn counter(&self) -> &'static str {
        match self {
            Outcome::Ok => "pv.serve.request.ok",
            Outcome::BadRequest => "pv.serve.request.bad",
            Outcome::NotFound => "pv.serve.request.not_found",
            Outcome::Error => "pv.serve.request.error",
            Outcome::Timeout => "pv.serve.request.timeout",
            Outcome::Overloaded => "pv.serve.request.overloaded",
            Outcome::Draining => "pv.serve.request.draining",
            Outcome::Health => "pv.serve.request.health",
            Outcome::Reload => "pv.serve.request.reload",
            Outcome::Shutdown => "pv.serve.shutdown",
            Outcome::Stats => "pv.serve.request.stats",
        }
    }

    /// The short key used in stats JSON and access-log lines.
    pub fn key(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::BadRequest => "bad",
            Outcome::NotFound => "not_found",
            Outcome::Error => "error",
            Outcome::Timeout => "timeout",
            Outcome::Overloaded => "overloaded",
            Outcome::Draining => "draining",
            Outcome::Health => "health",
            Outcome::Reload => "reload",
            Outcome::Shutdown => "shutdown",
            Outcome::Stats => "stats",
        }
    }

    fn index(&self) -> usize {
        Outcome::ALL
            .iter()
            .position(|o| o == self)
            .unwrap_or_default()
    }

    /// Whether this outcome answers a request-class line (a prediction
    /// attempt or its typed rejection) rather than an operator verb —
    /// the population the SLO error budget is charged against.
    pub fn slo_eligible(&self) -> bool {
        !matches!(
            self,
            Outcome::Health | Outcome::Reload | Outcome::Shutdown | Outcome::Stats
        )
    }
}

// ---------------------------------------------------------------------
// Request parsing

struct Request {
    id: Option<Content>,
    model: u64,
    profile: Profile,
    rel_times: Option<Vec<f64>>,
    n_samples: usize,
    sample_seed: u64,
}

enum Parsed {
    Predict(Box<Request>),
    Health { id: Option<Content> },
    Reload { id: Option<Content> },
    Shutdown { id: Option<Content> },
    Stats { id: Option<Content> },
}

fn field<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(c: &Content) -> Option<u64> {
    match *c {
        Content::I64(v) if v >= 0 => Some(v as u64),
        Content::U64(v) => Some(v),
        _ => None,
    }
}

fn as_f64(c: &Content) -> Option<f64> {
    match *c {
        Content::I64(v) => Some(v as f64),
        Content::U64(v) => Some(v as f64),
        Content::F64(v) => Some(v),
        _ => None,
    }
}

/// Parses the `model` field: a 1–16-digit hex string (the registry
/// filename form) or a plain unsigned integer.
fn parse_model_key(c: &Content) -> Option<u64> {
    match c {
        Content::Str(s) if !s.is_empty() && s.len() <= 16 => u64::from_str_radix(s, 16).ok(),
        other => as_u64(other),
    }
}

fn parse_request(line: &str) -> Result<Parsed, String> {
    let Json(content) =
        serde_json::from_str::<Json>(line).map_err(|e| format!("unparsable JSON: {e}"))?;
    let Content::Map(map) = content else {
        return Err("request must be a JSON object".into());
    };
    let id = field(&map, "id").cloned();
    if matches!(field(&map, "shutdown"), Some(Content::Bool(true))) {
        return Ok(Parsed::Shutdown { id });
    }
    match field(&map, "op") {
        None => {}
        Some(Content::Str(op)) => match op.as_str() {
            "predict" => {}
            "health" => return Ok(Parsed::Health { id }),
            "reload" => return Ok(Parsed::Reload { id }),
            "shutdown" => return Ok(Parsed::Shutdown { id }),
            "stats" => return Ok(Parsed::Stats { id }),
            other => {
                return Err(format!(
                    "unknown op {other:?} (expected predict|health|reload|shutdown|stats)"
                ))
            }
        },
        Some(_) => return Err("bad \"op\": expected a string".into()),
    }
    let model = field(&map, "model")
        .and_then(parse_model_key)
        .ok_or("missing or malformed \"model\" (expected a 16-hex-digit registry key)")?;
    let profile: Profile = match field(&map, "profile") {
        Some(c) => serde::from_content(c.clone()).map_err(|e| format!("bad \"profile\": {e}"))?,
        None => return Err("missing \"profile\"".into()),
    };
    if profile.features.iter().any(|v| !v.is_finite()) {
        return Err("\"profile\" features must be finite".into());
    }
    let rel_times = match field(&map, "rel_times") {
        None | Some(Content::Null) => None,
        Some(Content::Seq(xs)) => {
            let vals: Option<Vec<f64>> = xs.iter().map(as_f64).collect();
            match vals {
                Some(v) if !v.is_empty() && v.iter().all(|x| x.is_finite()) => Some(v),
                _ => {
                    return Err(
                        "bad \"rel_times\": expected a non-empty array of finite numbers".into(),
                    )
                }
            }
        }
        Some(_) => return Err("bad \"rel_times\": expected an array".into()),
    };
    let n_samples = match field(&map, "n_samples") {
        None | Some(Content::Null) => DEFAULT_N_SAMPLES,
        Some(c) => match as_u64(c) {
            Some(n) if n as usize <= MAX_N_SAMPLES => n as usize,
            Some(n) => return Err(format!("n_samples {n} exceeds the cap {MAX_N_SAMPLES}")),
            None => return Err("bad \"n_samples\": expected an unsigned integer".into()),
        },
    };
    let sample_seed = match field(&map, "sample_seed") {
        None | Some(Content::Null) => 0,
        Some(c) => as_u64(c).ok_or("bad \"sample_seed\": expected an unsigned integer")?,
    };
    Ok(Parsed::Predict(Box::new(Request {
        id,
        model,
        profile,
        rel_times,
        n_samples,
        sample_seed,
    })))
}

// ---------------------------------------------------------------------
// Response building

fn render(content: Content) -> String {
    serde_json::to_string(&Json(content)).unwrap_or_else(|_| {
        // A Content tree always serializes; keep the daemon alive anyway.
        "{\"ok\":false,\"error\":{\"kind\":\"invalid\",\"detail\":\"render failure\"}}".into()
    })
}

fn error_response(id: Option<Content>, kind: &str, detail: String) -> String {
    let mut map = Vec::with_capacity(3);
    if let Some(id) = id {
        map.push(("id".to_string(), id));
    }
    map.push(("ok".to_string(), Content::Bool(false)));
    map.push((
        "error".to_string(),
        Content::Map(vec![
            ("kind".to_string(), Content::Str(kind.to_string())),
            ("detail".to_string(), Content::Str(detail)),
        ]),
    ));
    render(Content::Map(map))
}

fn ok_response(
    id: Option<Content>,
    model: u64,
    features: Vec<f64>,
    samples: Vec<f64>,
    ks_confidence: Option<f64>,
) -> String {
    let floats = |xs: Vec<f64>| Content::Seq(xs.into_iter().map(Content::F64).collect());
    let mut map = Vec::with_capacity(5);
    if let Some(id) = id {
        map.push(("id".to_string(), id));
    }
    map.push(("ok".to_string(), Content::Bool(true)));
    map.push(("model".to_string(), Content::Str(format!("{model:016x}"))));
    map.push((
        "prediction".to_string(),
        Content::Map(vec![
            ("features".to_string(), floats(features)),
            ("samples".to_string(), floats(samples)),
        ]),
    ));
    map.push((
        "ks_confidence".to_string(),
        ks_confidence.map_or(Content::Null, Content::F64),
    ));
    render(Content::Map(map))
}

// ---------------------------------------------------------------------
// Live telemetry: tracing, rolling windows, SLO, flight recorder

/// Configuration for the serving telemetry plane. Everything defaults
/// off (no access log, no SLO, no recorder) but the rolling windows are
/// always maintained — they are lock-free atomics, cheap enough to keep
/// hot unconditionally (pinned by `benches/serve_throughput.rs`).
#[derive(Clone)]
pub struct TelemetryOpts {
    /// The clock windowed metrics bucket against. Tests inject
    /// [`WindowClock::manual`] to pin rotation deterministically.
    pub clock: WindowClock,
    /// Per-request JSONL access log path (`--access-log`).
    pub access_log: Option<PathBuf>,
    /// Latency SLO for the error budget (`--slo-ms`); a request-class
    /// line that fails or answers slower than this burns budget.
    pub slo: Option<Duration>,
    /// Flight-recorder dump path (`--flight-recorder`); `None` disables
    /// the recorder entirely.
    pub recorder: Option<PathBuf>,
    /// Ring capacity: the last N request events kept for post-mortem.
    pub recorder_capacity: usize,
    /// Windowed (10s) shed/timeout count that trips an anomaly dump;
    /// `0` disables the burst triggers (panic/reload triggers stay).
    pub anomaly_threshold: u64,
}

impl Default for TelemetryOpts {
    fn default() -> Self {
        TelemetryOpts {
            clock: WindowClock::Monotonic,
            access_log: None,
            slo: None,
            recorder: None,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            anomaly_threshold: DEFAULT_ANOMALY_THRESHOLD,
        }
    }
}

/// The SLO error budget: how many request-class answers were eligible
/// and how many burned budget (non-`ok` outcome or latency over
/// target). Both exact totals and rolling windows, so `{"op":"health"}`
/// can report instantaneous burn rate.
struct SloState {
    target: Duration,
    eligible: RollingCounter,
    violations: RollingCounter,
}

/// One request's footprint in the flight-recorder ring.
#[derive(Debug, Clone)]
struct FlightEvent {
    seq: u64,
    outcome: Outcome,
    model: Option<u64>,
}

/// A bounded ring of the last N request events plus a one-shot dump
/// latch: the first anomaly (shed/timeout burst, worker panic, failed
/// reload) writes the ring to disk as JSONL — a post-mortem of what the
/// daemon was doing when things went wrong — and further anomalies are
/// ignored so the first dump is never overwritten mid-incident.
struct FlightRecorder {
    capacity: usize,
    path: PathBuf,
    threshold: u64,
    events: Mutex<VecDeque<FlightEvent>>,
    tripped: AtomicBool,
}

impl FlightRecorder {
    fn push(&self, event: FlightEvent) {
        let mut ring = lock_mutex(&self.events);
        if ring.len() >= self.capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Dumps the ring (first trigger only). Events are sorted by arrival
    /// sequence so the dump is byte-stable whenever the event *set* is
    /// deterministic (e.g. `--batch 1` plus an injected fault plan).
    fn trip(&self, trigger: &str, seq: u64) {
        if self.tripped.swap(true, Ordering::SeqCst) {
            return;
        }
        pv_obs::counter_inc!("pv.serve.recorder.trip");
        let mut events: Vec<FlightEvent> = lock_mutex(&self.events).iter().cloned().collect();
        events.sort_by_key(|e| e.seq);
        let mut out = format!(
            "{{\"trigger\":\"{trigger}\",\"seq\":{seq},\"events\":{}}}\n",
            events.len()
        );
        for e in &events {
            let model = e
                .model
                .map_or_else(|| "null".to_string(), |m| format!("\"{m:016x}\""));
            out.push_str(&format!(
                "{{\"seq\":{},\"outcome\":\"{}\",\"model\":{}}}\n",
                e.seq,
                e.outcome.key(),
                model
            ));
        }
        if let Err(e) = write_atomic(&self.path, &out) {
            eprintln!("pv-serve: flight-recorder dump failed: {e}");
        }
    }
}

/// Everything the access log needs about one answered request, held by
/// the [`RecordHandle`] until the writer knows the write time.
struct AccessRecord {
    seq: u64,
    outcome: Outcome,
    model: Option<u64>,
    queue_ns: u64,
    predict_ns: u64,
    virtual_ns: u64,
}

/// A pending access-log line: the response is sealed before it is
/// written back, so the handle rides the [`Reply`] to the writer, which
/// calls [`RecordHandle::finish`] with the measured write time after
/// the flush. A handle dropped unfinished (client vanished, writer
/// error) still logs its line with `write_ns: 0` — every counted
/// request gets exactly one access-log line.
pub struct RecordHandle {
    telemetry: Arc<ServeTelemetry>,
    rec: Option<AccessRecord>,
}

impl RecordHandle {
    /// Logs the access line with the measured reply write time.
    pub fn finish(mut self, write_ns: u64) {
        if let Some(rec) = self.rec.take() {
            self.telemetry.log_access(&rec, write_ns);
        }
    }
}

impl Drop for RecordHandle {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            self.telemetry.log_access(&rec, 0);
        }
    }
}

/// A sealed response on its way back to the client: the rendered text,
/// whether it acks a shutdown, and the pending access-log record.
pub struct Reply {
    /// The response line (no trailing newline).
    pub text: String,
    /// `true` when this reply acks a shutdown request.
    pub shutdown: bool,
    /// The pending access-log line, if the log is configured.
    pub record: Option<RecordHandle>,
}

/// An answered line before sealing: the rendered response plus what
/// the telemetry plane needs to attribute it.
struct Answered {
    text: String,
    outcome: Outcome,
    model: Option<u64>,
    virtual_ns: u64,
    panicked: bool,
}

/// The latency breakdown and identity of one answered request, as
/// sealed into the telemetry plane.
pub struct RequestTrace {
    /// Global arrival sequence (the request id in the access log).
    pub seq: u64,
    /// How the request was answered.
    pub outcome: Outcome,
    /// The model key the request named, when it got far enough to
    /// parse one.
    pub model: Option<u64>,
    /// Admission-to-pickup wait.
    pub queue_ns: u64,
    /// Worker time spent answering (parse + predict + render).
    pub predict_ns: u64,
    /// Injected virtual delay counted against the deadline but not
    /// actually slept (see [`SLOW_FAULT_REAL_CAP`]).
    pub virtual_ns: u64,
    /// Whether the worker panicked and the response is the typed
    /// panic error.
    pub panicked: bool,
}

/// The serving telemetry plane: always-on exact totals plus rolling
/// 10s/1m/5m windows for every outcome and latency stage, the SLO
/// error budget, the per-request access log, and the flight recorder.
///
/// Totals here are *independent* of `pv-obs` — plain atomics bumped on
/// exactly the same code paths as the `pv.serve.*` counters — so
/// `{"op":"stats"}` reconciles with the final metrics snapshot by
/// construction, and works even when no obs collector is installed.
pub struct ServeTelemetry {
    clock: WindowClock,
    requests: RollingCounter,
    outcomes: Vec<RollingCounter>,
    latency: RollingHisto,
    queue_wait: RollingHisto,
    predict: RollingHisto,
    slo: Option<SloState>,
    access: Option<Mutex<File>>,
    recorder: Option<FlightRecorder>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        // Default opts configure no file outputs, so this cannot fail.
        ServeTelemetry::new(TelemetryOpts::default()).unwrap_or_else(|_| unreachable!())
    }
}

impl ServeTelemetry {
    /// Builds the telemetry plane, opening (appending to) the access
    /// log when one is configured.
    ///
    /// # Errors
    /// Fails when the access-log file cannot be opened.
    pub fn new(opts: TelemetryOpts) -> io::Result<Self> {
        let clock = opts.clock;
        let access = match &opts.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        Ok(ServeTelemetry {
            requests: RollingCounter::new(clock.clone()),
            outcomes: Outcome::ALL
                .iter()
                .map(|_| RollingCounter::new(clock.clone()))
                .collect(),
            latency: RollingHisto::new(clock.clone()),
            queue_wait: RollingHisto::new(clock.clone()),
            predict: RollingHisto::new(clock.clone()),
            slo: opts.slo.map(|target| SloState {
                target,
                eligible: RollingCounter::new(clock.clone()),
                violations: RollingCounter::new(clock.clone()),
            }),
            access,
            recorder: opts.recorder.map(|path| FlightRecorder {
                capacity: opts.recorder_capacity,
                path,
                threshold: opts.anomaly_threshold,
                events: Mutex::new(VecDeque::new()),
                tripped: AtomicBool::new(false),
            }),
            clock,
        })
    }

    /// The clock windowed metrics run on (tests advance a manual one).
    pub fn clock(&self) -> &WindowClock {
        &self.clock
    }

    /// Exact total requests sealed since startup.
    pub fn total_requests(&self) -> u64 {
        self.requests.total()
    }

    /// Exact total for one outcome since startup.
    pub fn total_outcome(&self, outcome: Outcome) -> u64 {
        self.outcomes[outcome.index()].total()
    }

    /// The SLO error-budget block rendered into health/stats responses,
    /// when an SLO is configured: target, eligible/violation totals,
    /// and the burn fraction overall and per rolling window.
    fn slo_content(&self) -> Option<Content> {
        let slo = self.slo.as_ref()?;
        let frac = |violations: u64, eligible: u64| {
            Content::F64(if eligible == 0 {
                0.0
            } else {
                violations as f64 / eligible as f64
            })
        };
        let mut burn = vec![(
            "total".to_string(),
            frac(slo.violations.total(), slo.eligible.total()),
        )];
        for &(label, secs) in &WINDOWS {
            burn.push((
                label.to_string(),
                frac(slo.violations.windowed(secs), slo.eligible.windowed(secs)),
            ));
        }
        Some(Content::Map(vec![
            (
                "target_ms".to_string(),
                Content::U64(slo.target.as_millis() as u64),
            ),
            ("eligible".to_string(), Content::U64(slo.eligible.total())),
            (
                "violations".to_string(),
                Content::U64(slo.violations.total()),
            ),
            ("burn".to_string(), Content::Map(burn)),
        ]))
    }

    /// Seals one answered request into the telemetry plane: windowed
    /// counters, latency histograms, SLO budget, flight-recorder ring
    /// and anomaly triggers. Returns the [`Reply`] carrying the pending
    /// access-log record to the writer.
    fn seal(self: &Arc<Self>, text: String, t: RequestTrace) -> Reply {
        self.requests.inc();
        self.outcomes[t.outcome.index()].inc();
        self.queue_wait.record_ns(t.queue_ns);
        self.predict.record_ns(t.predict_ns);
        self.latency.record_ns(t.queue_ns + t.predict_ns);
        if let Some(slo) = &self.slo {
            if t.outcome.slo_eligible() {
                slo.eligible.inc();
                let served_ns = t.queue_ns + t.predict_ns + t.virtual_ns;
                if t.outcome != Outcome::Ok || served_ns > slo.target.as_nanos() as u64 {
                    slo.violations.inc();
                }
            }
        }
        if let Some(rec) = &self.recorder {
            rec.push(FlightEvent {
                seq: t.seq,
                outcome: t.outcome,
                model: t.model,
            });
            if t.panicked {
                rec.trip("worker-panic", t.seq);
            } else if rec.threshold > 0 {
                let burst = |o: Outcome| self.outcomes[o.index()].windowed(10) >= rec.threshold;
                match t.outcome {
                    Outcome::Overloaded if burst(Outcome::Overloaded) => {
                        rec.trip("shed-burst", t.seq);
                    }
                    Outcome::Timeout if burst(Outcome::Timeout) => {
                        rec.trip("timeout-burst", t.seq);
                    }
                    _ => {}
                }
            }
        }
        let record = self.access.as_ref().map(|_| RecordHandle {
            telemetry: Arc::clone(self),
            rec: Some(AccessRecord {
                seq: t.seq,
                outcome: t.outcome,
                model: t.model,
                queue_ns: t.queue_ns,
                predict_ns: t.predict_ns,
                virtual_ns: t.virtual_ns,
            }),
        });
        Reply {
            text,
            shutdown: t.outcome == Outcome::Shutdown,
            record,
        }
    }

    /// Trips the flight recorder for a non-request anomaly (a failed
    /// reload). No-op without a recorder or after the first trip.
    pub fn trip_recorder(&self, trigger: &str, seq: u64) {
        if let Some(rec) = &self.recorder {
            rec.trip(trigger, seq);
        }
    }

    fn log_access(&self, rec: &AccessRecord, write_ns: u64) {
        let Some(file) = &self.access else { return };
        let model = rec
            .model
            .map_or_else(|| "null".to_string(), |m| format!("\"{m:016x}\""));
        let total_ns = rec.queue_ns + rec.predict_ns + write_ns;
        let line = format!(
            "{{\"req\":{},\"outcome\":\"{}\",\"model\":{},\"queue_ns\":{},\"predict_ns\":{},\"write_ns\":{},\"virtual_ns\":{},\"total_ns\":{}}}\n",
            rec.seq,
            rec.outcome.key(),
            model,
            rec.queue_ns,
            rec.predict_ns,
            write_ns,
            rec.virtual_ns,
            total_ns
        );
        let mut f = lock_mutex(file);
        let _ = f.write_all(line.as_bytes());
    }

    /// A synthesized metrics snapshot from the telemetry plane's own
    /// totals (counters are exact; the latency histogram covers the
    /// trailing 5m window). This is what the periodic Prometheus flush
    /// renders, so it works with or without an obs collector.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut counters = vec![pv_obs::metrics::CounterValue {
            name: "pv.serve.request".into(),
            value: self.requests.total(),
        }];
        for o in Outcome::ALL {
            counters.push(pv_obs::metrics::CounterValue {
                name: o.counter().into(),
                value: self.total_outcome(o),
            });
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let histo = |name: &str, h: &RollingHisto| {
            let (edges, counts, count, sum_ns) = h.windowed_buckets(300);
            pv_obs::metrics::HistogramValue {
                name: name.into(),
                scale: "log10".into(),
                edges,
                counts,
                count,
                sum: sum_ns as f64,
            }
        };
        MetricsSnapshot {
            counters,
            gauges: Vec::new(),
            histograms: vec![
                histo("pv.serve.window.latency_ns", &self.latency),
                histo("pv.serve.window.queue_wait_ns", &self.queue_wait),
                histo("pv.serve.window.predict_ns", &self.predict),
            ],
        }
    }
}

// ---------------------------------------------------------------------
// Engine

/// A predictor reconstructed from a registry artifact.
pub enum ServedModel {
    /// Use case 1: profile → same-system distribution.
    FewRuns(FewRunsPredictor),
    /// Use case 2: profile ⊕ measured distribution → other-system
    /// distribution.
    CrossSystem(CrossSystemPredictor),
}

impl ServedModel {
    /// Rebuilds the servable predictor from its registry artifact.
    ///
    /// # Errors
    /// Propagates artifact reconstruction failures.
    pub fn from_artifact(artifact: Artifact) -> Result<Self, PvError> {
        Ok(match artifact {
            Artifact::FewRuns(a) => ServedModel::FewRuns(FewRunsPredictor::from_artifact(a)?),
            Artifact::CrossSystem(a) => {
                ServedModel::CrossSystem(CrossSystemPredictor::from_artifact(a)?)
            }
        })
    }
}

/// One model in the serving table, with its provenance.
#[derive(Clone)]
struct ModelSlot {
    model: Arc<ServedModel>,
    /// `true` when a reload failed to verify this key and the previous
    /// snapshot's model was kept serving.
    held_over: bool,
    /// When this model version entered the table (staleness anchor).
    loaded: Instant,
}

/// Engine health, as reported by the `{"op":"health"}` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeState {
    /// Every model current and verified.
    Ok,
    /// Serving, but at least one model is held over from a previous
    /// snapshot or the last reload failed outright.
    Degraded,
    /// A shutdown was acked; queued requests finish, new ones are
    /// rejected.
    Draining,
}

impl ServeState {
    /// The probe's status string.
    pub fn name(&self) -> &'static str {
        match self {
            ServeState::Ok => "ok",
            ServeState::Degraded => "degraded",
            ServeState::Draining => "draining",
        }
    }

    fn from_u8(v: u8) -> ServeState {
        match v {
            2 => ServeState::Draining,
            1 => ServeState::Degraded,
            _ => ServeState::Ok,
        }
    }
}

/// What a reload attempt did.
#[derive(Debug)]
pub struct ReloadReport {
    /// Keys freshly loaded and verified.
    pub loaded: usize,
    /// Keys whose fresh artifact failed verification, with the error.
    /// Each keeps its old model serving when one was loaded before.
    pub held_over: Vec<(u64, PvError)>,
    /// Keys dropped because their entry vanished from disk.
    pub dropped: usize,
    /// A whole-reload failure (registry unreachable); the previous
    /// snapshot stays live.
    pub error: Option<PvError>,
}

impl ReloadReport {
    /// Whether the snapshot swap happened (possibly with held-over
    /// models).
    pub fn swapped(&self) -> bool {
        self.error.is_none()
    }

    /// One-line operator summary (SIGHUP reloads log this to stderr).
    pub fn summary_line(&self) -> String {
        match &self.error {
            Some(e) => format!("reload failed, old snapshot stays live: {e}"),
            None => format!(
                "reload: {} loaded, {} held over, {} dropped",
                self.loaded,
                self.held_over.len(),
                self.dropped
            ),
        }
    }
}

fn lock_read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|p| p.into_inner())
}

fn lock_write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|p| p.into_inner())
}

fn lock_mutex<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|p| p.into_inner())
}

/// The query engine: a verified model table behind an atomically
/// swappable snapshot, ready to answer protocol lines from any number
/// of threads, plus the daemon's health state machine and (when backed
/// by a registry) hot reload.
pub struct ServeEngine {
    table: RwLock<Arc<HashMap<u64, ModelSlot>>>,
    registry: Option<ModelRegistry>,
    state: AtomicU8,
    degraded_note: Mutex<Option<String>>,
    reload_attempts: AtomicU64,
    reload_lock: Mutex<()>,
    plan: ServeFaultPlan,
    deadline: Option<Duration>,
    telemetry: Arc<ServeTelemetry>,
    started: Instant,
}

impl ServeEngine {
    fn with_table(table: HashMap<u64, ModelSlot>, registry: Option<ModelRegistry>) -> Self {
        ServeEngine {
            table: RwLock::new(Arc::new(table)),
            registry,
            state: AtomicU8::new(0),
            degraded_note: Mutex::new(None),
            reload_attempts: AtomicU64::new(0),
            reload_lock: Mutex::new(()),
            plan: ServeFaultPlan::none(),
            deadline: None,
            telemetry: Arc::new(ServeTelemetry::default()),
            started: Instant::now(),
        }
    }

    /// Loads and verifies every model in `registry`, keeping a handle
    /// for hot reloads.
    ///
    /// # Errors
    /// Propagates the first registry verification failure — the
    /// *initial* load is strict, a serving directory must start wholly
    /// trustworthy. (Reloads are lenient: see [`Self::reload`].)
    pub fn from_registry(registry: &ModelRegistry) -> Result<Self, PvError> {
        let mut table = HashMap::new();
        for entry in registry.load_all()? {
            table.insert(
                entry.key,
                ModelSlot {
                    model: Arc::new(ServedModel::from_artifact(entry.artifact)?),
                    held_over: false,
                    loaded: Instant::now(),
                },
            );
        }
        Ok(Self::with_table(table, Some(registry.clone())))
    }

    /// An engine over an explicit model table (for tests/benches); not
    /// reloadable.
    pub fn from_models(models: HashMap<u64, ServedModel>) -> Self {
        let table = models
            .into_iter()
            .map(|(k, m)| {
                (
                    k,
                    ModelSlot {
                        model: Arc::new(m),
                        held_over: false,
                        loaded: Instant::now(),
                    },
                )
            })
            .collect();
        Self::with_table(table, None)
    }

    /// Sets the per-request prediction deadline (`None` disables).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Installs a serving chaos plan.
    pub fn with_fault_plan(mut self, plan: ServeFaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Installs a configured telemetry plane (a default one is always
    /// present — this swaps in one with an access log, SLO, recorder,
    /// or injected clock).
    pub fn with_telemetry(mut self, telemetry: ServeTelemetry) -> Self {
        self.telemetry = Arc::new(telemetry);
        self
    }

    /// The serving telemetry plane.
    pub fn telemetry(&self) -> &Arc<ServeTelemetry> {
        &self.telemetry
    }

    /// The installed chaos plan.
    pub fn plan(&self) -> &ServeFaultPlan {
        &self.plan
    }

    /// The per-request deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    fn snapshot(&self) -> Arc<HashMap<u64, ModelSlot>> {
        Arc::clone(&lock_read(&self.table))
    }

    /// Number of models loaded.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether no models are loaded.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// The loaded registry keys, ascending.
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.snapshot().keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Current health state.
    pub fn state(&self) -> ServeState {
        ServeState::from_u8(self.state.load(Ordering::SeqCst))
    }

    /// Whether the daemon is draining for shutdown.
    pub fn is_draining(&self) -> bool {
        self.state() == ServeState::Draining
    }

    /// Enters the draining state (terminal — reloads cannot leave it).
    pub fn begin_drain(&self) {
        self.state.store(2, Ordering::SeqCst);
    }

    /// Flips between `ok` and `degraded`, never out of `draining`.
    fn set_health(&self, degraded: bool, note: Option<String>) {
        *lock_mutex(&self.degraded_note) = note;
        let target = if degraded { 1 } else { 0 };
        let mut current = self.state.load(Ordering::SeqCst);
        while current != 2 {
            match self
                .state
                .compare_exchange(current, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }

    /// Re-verifies every registry entry and atomically swaps in the new
    /// model table. In-flight requests finish on the snapshot they
    /// already hold. Verification failures are *lenient* here, unlike
    /// startup: a bad entry keeps its previously loaded model serving
    /// (marked `held_over`) and the daemon goes `degraded`; entries
    /// missing from disk are dropped; a registry that cannot be
    /// enumerated at all (or an injected `reload-io` fault) fails the
    /// whole reload and keeps the old snapshot live. Never panics,
    /// never leaves the daemon without a table.
    pub fn reload(&self) -> ReloadReport {
        let _serialized = lock_mutex(&self.reload_lock);
        let attempt = self.reload_attempts.fetch_add(1, Ordering::SeqCst);
        pv_obs::counter_inc!("pv.serve.reload");
        let whole_failure = |error: PvError, this: &Self| {
            pv_obs::counter_inc!("pv.serve.reload.fail");
            this.telemetry.trip_recorder("reload-failed", attempt);
            this.set_health(true, Some(error.to_string()));
            ReloadReport {
                loaded: 0,
                held_over: Vec::new(),
                dropped: 0,
                error: Some(error),
            }
        };
        let Some(registry) = &self.registry else {
            return whole_failure(
                PvError::Invalid {
                    what: "ServeEngine::reload".into(),
                    detail: "no registry backs this engine".into(),
                },
                self,
            );
        };
        if self.plan.reload_io_at(attempt) {
            return whole_failure(
                PvError::CacheIo {
                    what: "ServeEngine::reload".into(),
                    detail: format!(
                        "injected fault: registry I/O error at reload attempt {attempt}"
                    ),
                },
                self,
            );
        }
        let old = self.snapshot();
        let mut next: HashMap<u64, ModelSlot> = HashMap::new();
        let mut held_over: Vec<(u64, PvError)> = Vec::new();
        let mut loaded = 0usize;
        for key in registry.keys() {
            match registry
                .load_key(key)
                .and_then(|entry| ServedModel::from_artifact(entry.artifact))
            {
                Ok(model) => {
                    next.insert(
                        key,
                        ModelSlot {
                            model: Arc::new(model),
                            held_over: false,
                            loaded: Instant::now(),
                        },
                    );
                    loaded += 1;
                }
                Err(e) => {
                    if let Some(slot) = old.get(&key) {
                        let mut kept = slot.clone();
                        kept.held_over = true;
                        next.insert(key, kept);
                    }
                    held_over.push((key, e));
                }
            }
        }
        let dropped = old.keys().filter(|k| !next.contains_key(k)).count();
        let degraded = !held_over.is_empty();
        let note = degraded.then(|| {
            let keys: Vec<String> = held_over
                .iter()
                .map(|(k, e)| format!("{k:016x} ({})", e.kind()))
                .collect();
            format!("reload kept old versions for: {}", keys.join(", "))
        });
        *lock_write(&self.table) = Arc::new(next);
        self.set_health(degraded, note);
        ReloadReport {
            loaded,
            held_over,
            dropped,
            error: None,
        }
    }

    /// Answers one protocol line: returns the response (without the
    /// trailing newline) and its outcome, and updates the `pv.serve.*`
    /// counters. No deadline or chaos applies on this path (see
    /// [`Self::handle_timed`]).
    pub fn handle_line(&self, line: &str) -> (String, Outcome) {
        let a = self.answer_full(line, false, false);
        (a.text, a.outcome)
    }

    /// Answers one protocol line on the daemon path: applies the chaos
    /// plan's fault for arrival sequence `seq` and the per-request
    /// deadline measured from `arrival`. An injected slow fault adds
    /// its delay *virtually* to the elapsed time for the deadline check
    /// (real sleep capped at [`SLOW_FAULT_REAL_CAP`]), so timeout
    /// behavior is deterministic at any thread count.
    pub fn handle_timed(&self, line: &str, seq: u64, arrival: Instant) -> (String, Outcome) {
        let a = self.timed_full(line, seq, arrival);
        (a.text, a.outcome)
    }

    /// [`Self::handle_timed`] plus telemetry sealing: the full daemon
    /// path. `arrival` doubles as the queue-wait anchor — the elapsed
    /// time when a worker picks the job up is the queue wait, the rest
    /// is worker time.
    pub fn handle_timed_sealed(&self, line: &str, seq: u64, arrival: Instant) -> Reply {
        let queue_ns = arrival.elapsed().as_nanos() as u64;
        let start = Instant::now();
        let a = self.timed_full(line, seq, arrival);
        self.telemetry.seal(
            a.text,
            RequestTrace {
                seq,
                outcome: a.outcome,
                model: a.model,
                queue_ns,
                predict_ns: start.elapsed().as_nanos() as u64,
                virtual_ns: a.virtual_ns,
                panicked: a.panicked,
            },
        )
    }

    fn timed_full(&self, line: &str, seq: u64, arrival: Instant) -> Answered {
        let mut penalty = Duration::ZERO;
        if let Some(delay_ms) = self.plan.slow_at(seq) {
            penalty = Duration::from_millis(delay_ms);
            std::thread::sleep(penalty.min(SLOW_FAULT_REAL_CAP));
        }
        let expired = self
            .deadline
            .is_some_and(|d| arrival.elapsed() + penalty > d);
        let mut a = self.answer_full(line, expired, self.plan.panics_at(seq));
        a.virtual_ns = penalty.as_nanos() as u64;
        a
    }

    /// Answers a line with the worker hardened against panics: a panic
    /// inside prediction (or an injected one) is caught, counted
    /// (`pv.serve.panic`), and answered as a typed `panic` error — one
    /// poisoned request never takes the daemon down.
    fn answer_full(&self, line: &str, expired: bool, inject_panic: bool) -> Answered {
        pv_obs::counter_inc!("pv.serve.request");
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: worker panic");
            }
            self.respond(line, expired)
        }));
        let (text, outcome, model, panicked) = match result {
            Ok((text, outcome, model)) => (text, outcome, model, false),
            Err(_) => {
                pv_obs::counter_inc!("pv.serve.panic");
                (
                    error_response(
                        None,
                        "panic",
                        "worker panicked while answering; request aborted".into(),
                    ),
                    Outcome::Error,
                    None,
                    true,
                )
            }
        };
        pv_obs::observe!(
            "pv.serve.latency_ns",
            pv_obs::metrics::BucketSpec::latency(),
            start.elapsed().as_nanos() as f64
        );
        pv_obs::counter_inc!(outcome.counter());
        Answered {
            text,
            outcome,
            model,
            virtual_ns: 0,
            panicked,
        }
    }

    /// The typed response to a line that exceeded the daemon's length
    /// cap (counted like any other answered request).
    pub fn handle_oversized(&self, max_line: usize) -> (String, Outcome) {
        pv_obs::counter_inc!("pv.serve.request");
        pv_obs::counter_inc!(Outcome::BadRequest.counter());
        (
            error_response(
                None,
                "bad-request",
                format!("request line exceeds {max_line} bytes"),
            ),
            Outcome::BadRequest,
        )
    }

    /// [`Self::handle_oversized`] plus telemetry sealing.
    pub fn handle_oversized_sealed(&self, seq: u64, max_line: usize) -> Reply {
        let (text, outcome) = self.handle_oversized(max_line);
        self.seal_immediate(text, outcome, seq)
    }

    /// Seals a reader-path response (shed, draining, oversized) that
    /// never waited in the queue or reached a worker.
    pub fn seal_immediate(&self, text: String, outcome: Outcome, seq: u64) -> Reply {
        self.telemetry.seal(
            text,
            RequestTrace {
                seq,
                outcome,
                model: None,
                queue_ns: 0,
                predict_ns: 0,
                virtual_ns: 0,
                panicked: false,
            },
        )
    }

    /// The typed response to a request shed at admission — queue full
    /// or an injected shed fault. Sheds are answered by the *reader*,
    /// before the line is ever parsed, so no `id` is echoed.
    pub fn handle_shed(&self, detail: String) -> (String, Outcome) {
        pv_obs::counter_inc!("pv.serve.request");
        pv_obs::counter_inc!("pv.serve.shed");
        pv_obs::counter_inc!(Outcome::Overloaded.counter());
        (
            error_response(None, "overloaded", detail),
            Outcome::Overloaded,
        )
    }

    /// The typed response to a line arriving while the daemon drains.
    pub fn handle_draining(&self) -> (String, Outcome) {
        pv_obs::counter_inc!("pv.serve.request");
        pv_obs::counter_inc!(Outcome::Draining.counter());
        (
            error_response(
                None,
                "draining",
                "daemon is draining for shutdown; request rejected".into(),
            ),
            Outcome::Draining,
        )
    }

    /// Answers a micro-batch across the rayon pool, preserving order.
    pub fn handle_batch(&self, lines: &[&str]) -> Vec<(String, Outcome)> {
        pv_obs::counter_inc!("pv.serve.batch");
        lines
            .to_vec()
            .into_par_iter()
            .map(|l| self.handle_line(l))
            .collect()
    }

    fn health_response(&self, id: Option<Content>) -> (String, Outcome) {
        let snapshot = self.snapshot();
        let mut keys: Vec<u64> = snapshot.keys().copied().collect();
        keys.sort_unstable();
        let models = Content::Seq(
            keys.into_iter()
                .map(|key| {
                    let slot = &snapshot[&key];
                    Content::Map(vec![
                        ("model".to_string(), Content::Str(format!("{key:016x}"))),
                        (
                            "staleness_s".to_string(),
                            Content::F64(slot.loaded.elapsed().as_secs_f64()),
                        ),
                        ("held_over".to_string(), Content::Bool(slot.held_over)),
                    ])
                })
                .collect(),
        );
        let mut map = Vec::with_capacity(5);
        if let Some(id) = id {
            map.push(("id".to_string(), id));
        }
        map.push(("ok".to_string(), Content::Bool(true)));
        map.push(("op".to_string(), Content::Str("health".into())));
        map.push((
            "status".to_string(),
            Content::Str(self.state().name().into()),
        ));
        map.push(("models".to_string(), models));
        if let Some(note) = lock_mutex(&self.degraded_note).clone() {
            map.push(("note".to_string(), Content::Str(note)));
        }
        if let Some(slo) = self.telemetry.slo_content() {
            map.push(("slo".to_string(), slo));
        }
        (render(Content::Map(map)), Outcome::Health)
    }

    /// The `{"op":"stats"}` response: exact per-outcome totals plus
    /// rolling 10s/1m/5m windows (rates, latency quantiles) and the
    /// SLO budget. When an obs collector is live, the raw `pv.serve.*`
    /// counters ride along so clients can reconcile the two planes.
    fn stats_response(&self, id: Option<Content>) -> (String, Outcome) {
        let t = &self.telemetry;
        let mut totals = vec![("requests".to_string(), Content::U64(t.total_requests()))];
        for o in Outcome::ALL {
            totals.push((o.key().to_string(), Content::U64(t.total_outcome(o))));
        }
        let windows = Content::Seq(
            WINDOWS
                .iter()
                .map(|&(label, secs)| {
                    let view = t.latency.view(label, secs);
                    let opt_ns = |v: Option<f64>| {
                        v.map_or(Content::Null, |ns| Content::U64(ns.round() as u64))
                    };
                    let opt_human = |v: Option<f64>| {
                        v.map_or(Content::Null, |ns| Content::Str(humanize_ns(ns)))
                    };
                    Content::Map(vec![
                        ("window".to_string(), Content::Str(label.to_string())),
                        ("secs".to_string(), Content::U64(secs)),
                        (
                            "requests".to_string(),
                            Content::U64(t.requests.windowed(secs)),
                        ),
                        ("rate".to_string(), Content::F64(t.requests.rate(secs))),
                        (
                            "ok".to_string(),
                            Content::U64(t.outcomes[Outcome::Ok.index()].windowed(secs)),
                        ),
                        (
                            "shed".to_string(),
                            Content::U64(t.outcomes[Outcome::Overloaded.index()].windowed(secs)),
                        ),
                        (
                            "timeout".to_string(),
                            Content::U64(t.outcomes[Outcome::Timeout.index()].windowed(secs)),
                        ),
                        (
                            "latency".to_string(),
                            Content::Map(vec![
                                ("count".to_string(), Content::U64(view.count)),
                                ("mean_ns".to_string(), opt_ns(view.mean_ns)),
                                ("mean".to_string(), opt_human(view.mean_ns)),
                                ("p50_ns".to_string(), opt_ns(view.p50_ns)),
                                ("p50".to_string(), opt_human(view.p50_ns)),
                                ("p95_ns".to_string(), opt_ns(view.p95_ns)),
                                ("p95".to_string(), opt_human(view.p95_ns)),
                                ("p99_ns".to_string(), opt_ns(view.p99_ns)),
                                ("p99".to_string(), opt_human(view.p99_ns)),
                            ]),
                        ),
                    ])
                })
                .collect(),
        );
        let mut map = Vec::with_capacity(8);
        if let Some(id) = id {
            map.push(("id".to_string(), id));
        }
        map.push(("ok".to_string(), Content::Bool(true)));
        map.push(("op".to_string(), Content::Str("stats".into())));
        map.push((
            "status".to_string(),
            Content::Str(self.state().name().into()),
        ));
        map.push((
            "uptime_s".to_string(),
            Content::F64(self.started.elapsed().as_secs_f64()),
        ));
        map.push(("totals".to_string(), Content::Map(totals)));
        map.push(("windows".to_string(), windows));
        if let Some(slo) = t.slo_content() {
            map.push(("slo".to_string(), slo));
        }
        if let Some(snapshot) = pv_obs::live_metrics_snapshot() {
            let counters = snapshot
                .counters
                .iter()
                .filter(|c| c.name.starts_with("pv.serve."))
                .map(|c| (c.name.clone(), Content::U64(c.value)))
                .collect();
            map.push(("counters".to_string(), Content::Map(counters)));
        }
        (render(Content::Map(map)), Outcome::Stats)
    }

    /// The stats document as a JSON line — what `--telemetry-out`
    /// flushes periodically.
    pub fn stats_json(&self) -> String {
        self.stats_response(None).0
    }

    /// The Prometheus exposition of the telemetry plane's own snapshot
    /// — what `--telemetry-prom` flushes periodically. Works without an
    /// obs collector.
    pub fn telemetry_prometheus(&self) -> String {
        pv_obs::telemetry::render_prometheus(&self.telemetry.metrics_snapshot())
    }

    fn reload_response(&self, id: Option<Content>) -> (String, Outcome) {
        let report = self.reload();
        let response = match &report.error {
            Some(e) => {
                let mut map = Vec::with_capacity(4);
                if let Some(id) = id {
                    map.push(("id".to_string(), id));
                }
                map.push(("ok".to_string(), Content::Bool(false)));
                map.push(("op".to_string(), Content::Str("reload".into())));
                map.push((
                    "error".to_string(),
                    Content::Map(vec![
                        ("kind".to_string(), Content::Str("reload-failed".into())),
                        ("detail".to_string(), Content::Str(e.to_string())),
                    ]),
                ));
                map.push((
                    "status".to_string(),
                    Content::Str(self.state().name().into()),
                ));
                render(Content::Map(map))
            }
            None => {
                let mut map = Vec::with_capacity(6);
                if let Some(id) = id {
                    map.push(("id".to_string(), id));
                }
                map.push(("ok".to_string(), Content::Bool(true)));
                map.push(("op".to_string(), Content::Str("reload".into())));
                map.push(("loaded".to_string(), Content::U64(report.loaded as u64)));
                map.push((
                    "held_over".to_string(),
                    Content::U64(report.held_over.len() as u64),
                ));
                map.push(("dropped".to_string(), Content::U64(report.dropped as u64)));
                map.push((
                    "status".to_string(),
                    Content::Str(self.state().name().into()),
                ));
                render(Content::Map(map))
            }
        };
        (response, Outcome::Reload)
    }

    fn respond(&self, line: &str, expired: bool) -> (String, Outcome, Option<u64>) {
        let req = match parse_request(line) {
            Ok(Parsed::Shutdown { id }) => {
                let mut map = Vec::with_capacity(3);
                if let Some(id) = id {
                    map.push(("id".to_string(), id));
                }
                map.push(("ok".to_string(), Content::Bool(true)));
                map.push(("shutdown".to_string(), Content::Bool(true)));
                return (render(Content::Map(map)), Outcome::Shutdown, None);
            }
            Ok(Parsed::Health { id }) => {
                let (r, o) = self.health_response(id);
                return (r, o, None);
            }
            Ok(Parsed::Reload { id }) => {
                let (r, o) = self.reload_response(id);
                return (r, o, None);
            }
            Ok(Parsed::Stats { id }) => {
                let (r, o) = self.stats_response(id);
                return (r, o, None);
            }
            Ok(Parsed::Predict(req)) => req,
            Err(detail) => {
                return (
                    error_response(None, "bad-request", detail),
                    Outcome::BadRequest,
                    None,
                )
            }
        };
        if expired {
            let budget = self.deadline.unwrap_or_default();
            return (
                error_response(
                    req.id,
                    "timeout",
                    format!(
                        "deadline of {} ms exceeded before prediction started",
                        budget.as_millis()
                    ),
                ),
                Outcome::Timeout,
                Some(req.model),
            );
        }
        let snapshot = self.snapshot();
        let Some(slot) = snapshot.get(&req.model) else {
            return (
                error_response(
                    req.id,
                    "not-found",
                    format!(
                        "unknown model {:016x} ({} models loaded)",
                        req.model,
                        snapshot.len()
                    ),
                ),
                Outcome::NotFound,
                Some(req.model),
            );
        };
        // Hold the Arc, drop the snapshot reference: a reload swapping
        // the table mid-prediction never invalidates this request.
        let model = Arc::clone(&slot.model);
        drop(snapshot);
        let predicted = match &*model {
            ServedModel::FewRuns(p) => p.predict_features_profile(&req.profile).and_then(|f| {
                let samples = p.decode_features(&f, req.n_samples, req.sample_seed)?;
                Ok((f, samples))
            }),
            ServedModel::CrossSystem(p) => match &req.rel_times {
                Some(rel) => p.predict_features_profile(&req.profile, rel).and_then(|f| {
                    let samples = p.decode_features(&f, req.n_samples, req.sample_seed)?;
                    Ok((f, samples))
                }),
                None => return (
                    error_response(
                        req.id,
                        "bad-request",
                        "cross-system model needs \"rel_times\" (the measured source distribution)"
                            .into(),
                    ),
                    Outcome::BadRequest,
                    Some(req.model),
                ),
            },
        };
        match predicted {
            Ok((features, samples)) => {
                let ks_confidence = req
                    .rel_times
                    .as_deref()
                    .filter(|_| !samples.is_empty())
                    .and_then(|rel| ks2_test(&samples, rel).ok())
                    .map(|k| k.p_value);
                (
                    ok_response(req.id, req.model, features, samples, ks_confidence),
                    Outcome::Ok,
                    Some(req.model),
                )
            }
            Err(e) => (
                error_response(req.id, "invalid", e.to_string()),
                Outcome::Error,
                Some(req.model),
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Daemon plumbing

/// One line read from a client, or the marker that it blew the length
/// cap (the payload is discarded, the event still gets a response).
pub enum LineItem {
    /// A complete line within the cap.
    Line(String),
    /// A line that exceeded the cap and was discarded to the newline.
    Oversized,
}

/// A queued request: the line, its global arrival sequence and arrival
/// time (the deadline/chaos keys), and the reply slot its sealed
/// [`Reply`] goes back on.
pub struct Job {
    item: LineItem,
    seq: u64,
    arrival: Instant,
    reply: Sender<Reply>,
}

/// The bounded admission queue: a depth counter the readers enter
/// before enqueueing and the dispatcher leaves on dequeue. When the
/// queue is full, admission fails and the reader sheds the request with
/// a typed `overloaded` response instead of buffering it. Maintains the
/// `pv.serve.queue_depth` and `pv.serve.queue_high_watermark` gauges.
pub struct Admission {
    capacity: usize,
    depth: AtomicUsize,
    high_watermark: AtomicUsize,
}

impl Admission {
    /// A queue admitting up to `capacity` unanswered requests
    /// (`0` = unbounded, never sheds).
    pub fn new(capacity: usize) -> Self {
        Admission {
            capacity,
            depth: AtomicUsize::new(0),
            high_watermark: AtomicUsize::new(0),
        }
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queued-but-unanswered request count.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// The deepest the queue has ever been.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark.load(Ordering::SeqCst)
    }

    /// Tries to admit one request; `false` means the queue is full and
    /// the caller must shed.
    pub fn try_enter(&self) -> bool {
        let mut current = self.depth.load(Ordering::SeqCst);
        loop {
            if self.capacity != 0 && current >= self.capacity {
                return false;
            }
            match self.depth.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    let now = current + 1;
                    let mut hwm = self.high_watermark.load(Ordering::SeqCst);
                    while now > hwm {
                        match self.high_watermark.compare_exchange(
                            hwm,
                            now,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        ) {
                            Ok(_) => break,
                            Err(observed) => hwm = observed,
                        }
                    }
                    pv_obs::gauge_set!("pv.serve.queue_depth", now as f64);
                    pv_obs::gauge_set!(
                        "pv.serve.queue_high_watermark",
                        self.high_watermark.load(Ordering::SeqCst) as f64
                    );
                    return true;
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Marks one admitted request as picked up by the dispatcher.
    pub fn leave(&self) {
        let before = self.depth.fetch_sub(1, Ordering::SeqCst);
        pv_obs::gauge_set!("pv.serve.queue_depth", before.saturating_sub(1) as f64);
    }
}

/// Daemon configuration threaded through the serve loops.
#[derive(Clone)]
pub struct ServeOpts {
    /// Micro-batch cap (requests drained per rayon dispatch).
    pub batch: usize,
    /// Per-request line length cap in bytes.
    pub max_line: usize,
    /// Admission queue capacity (`0` = unbounded).
    pub queue: usize,
    /// When set, the dispatcher polls this flag between batches and
    /// runs a registry reload when it is raised (the SIGHUP hook).
    pub reload_signal: Option<Arc<AtomicBool>>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            batch: DEFAULT_BATCH,
            max_line: DEFAULT_MAX_LINE,
            queue: DEFAULT_QUEUE,
            reload_signal: None,
        }
    }
}

/// The per-daemon serving state every connection shares.
#[derive(Clone)]
pub struct ServeShared {
    engine: Arc<ServeEngine>,
    admission: Arc<Admission>,
    seq: Arc<AtomicU64>,
    jobs: Sender<Job>,
    max_line: usize,
}

impl ServeShared {
    /// Bundles the shared serving state for [`serve_connection`].
    pub fn new(
        engine: Arc<ServeEngine>,
        admission: Arc<Admission>,
        jobs: Sender<Job>,
        max_line: usize,
    ) -> Self {
        ServeShared {
            engine,
            admission,
            seq: Arc::new(AtomicU64::new(0)),
            jobs,
            max_line,
        }
    }
}

/// Reads newline-delimited items from `reader` with a hard per-line
/// byte cap — an oversized line is discarded to its newline and
/// surfaced as [`LineItem::Oversized`], so a hostile client cannot make
/// the daemon buffer unboundedly. Blank lines are skipped. `sink`
/// returns `false` to stop early.
///
/// # Errors
/// Propagates reader I/O failures.
pub fn read_lines_bounded<R: Read>(
    reader: R,
    max_line: usize,
    mut sink: impl FnMut(LineItem) -> bool,
) -> io::Result<()> {
    let mut r = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a trailing unterminated line still gets answered.
            if overflowed {
                let _ = sink(LineItem::Oversized);
            } else if !buf.iter().all(u8::is_ascii_whitespace) {
                let _ = sink(LineItem::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                r.consume(pos + 1);
                let item = if overflowed || buf.len() > max_line {
                    Some(LineItem::Oversized)
                } else if buf.iter().all(u8::is_ascii_whitespace) {
                    None
                } else {
                    Some(LineItem::Line(String::from_utf8_lossy(&buf).into_owned()))
                };
                buf.clear();
                overflowed = false;
                if let Some(item) = item {
                    if !sink(item) {
                        return Ok(());
                    }
                }
            }
            None => {
                if !overflowed {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max_line {
                        overflowed = true;
                        buf = Vec::new();
                    }
                }
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

fn process_job(
    engine: &ServeEngine,
    item: &LineItem,
    seq: u64,
    arrival: Instant,
    max_line: usize,
) -> Reply {
    match item {
        LineItem::Line(l) => engine.handle_timed_sealed(l, seq, arrival),
        LineItem::Oversized => engine.handle_oversized_sealed(seq, max_line),
    }
}

/// After the shutdown ack: answer every job already admitted (plus a
/// short grace window for readers that raced the drain flag), then
/// abandon the queue. Every drained job still gets its typed response —
/// a clean drain never silently drops an admitted request.
fn drain_remaining(
    engine: &ServeEngine,
    jobs: &Receiver<Job>,
    admission: &Admission,
    max_line: usize,
) {
    loop {
        match jobs.recv_timeout(DRAIN_GRACE) {
            Ok(job) => {
                admission.leave();
                let reply = process_job(engine, &job.item, job.seq, job.arrival, max_line);
                let _ = job.reply.send(reply);
            }
            Err(_) => return,
        }
    }
}

/// The micro-batching dispatcher: drains whatever is admitted (up to
/// `opts.batch` jobs), answers the batch across the rayon pool, and
/// routes each response back to its connection's reply slot. Polls the
/// reload signal (SIGHUP) between batches. On a shutdown ack it flips
/// the engine to `draining`, answers everything still queued, and
/// exits; otherwise it runs until the job channel closes.
pub fn run_batcher(
    engine: &ServeEngine,
    jobs: &Receiver<Job>,
    admission: &Admission,
    opts: &ServeOpts,
) {
    let batch = opts.batch.max(1);
    loop {
        if let Some(signal) = &opts.reload_signal {
            if signal.swap(false, Ordering::SeqCst) {
                let report = engine.reload();
                eprintln!("pv-serve: SIGHUP {}", report.summary_line());
            }
        }
        let first = match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut pending = vec![first];
        while pending.len() < batch {
            match jobs.try_recv() {
                Ok(job) => pending.push(job),
                Err(_) => break,
            }
        }
        for _ in &pending {
            admission.leave();
        }
        pv_obs::counter_inc!("pv.serve.batch");
        let work: Vec<(&LineItem, u64, Instant)> = pending
            .iter()
            .map(|j| (&j.item, j.seq, j.arrival))
            .collect();
        let results: Vec<Reply> = work
            .into_par_iter()
            .map(|(item, seq, arrival)| process_job(engine, item, seq, arrival, opts.max_line))
            .collect();
        let mut saw_shutdown = false;
        for (job, reply) in pending.iter().zip(results) {
            saw_shutdown |= reply.shutdown;
            // A vanished client already closed its reply channel; fine.
            let _ = job.reply.send(reply);
        }
        if saw_shutdown {
            engine.begin_drain();
            drain_remaining(engine, jobs, admission, opts.max_line);
            return;
        }
    }
}

/// Pumps one client: a reader thread feeds the shared job queue
/// (shedding at admission when the queue is full and rejecting lines
/// once the daemon drains), this thread writes responses back in
/// request order through per-request reply slots. Returns `Ok(true)`
/// when the client's shutdown request was acked (after the ack is
/// flushed, so the flag flip in the caller cannot race the write).
///
/// # Errors
/// Propagates writer I/O failures (a vanished client).
pub fn serve_connection<R, W>(reader: R, mut writer: W, shared: ServeShared) -> io::Result<bool>
where
    R: Read + Send + 'static,
    W: Write,
{
    // A channel of per-request reply slots: the reader creates one slot
    // per line *in arrival order*; shed/draining responses are answered
    // into their slot immediately while admitted jobs are answered by
    // the dispatcher — the writer consumes slots in order either way,
    // so pipelined clients always see responses in request order.
    let (slots_tx, slots_rx) = mpsc::channel::<Receiver<Reply>>();
    let ServeShared {
        engine,
        admission,
        seq,
        jobs,
        max_line,
    } = shared;
    std::thread::spawn(move || {
        let _ = read_lines_bounded(reader, max_line, |item| {
            let seq = seq.fetch_add(1, Ordering::SeqCst);
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            if slots_tx.send(reply_rx).is_err() {
                return false; // Writer is gone; stop reading.
            }
            let immediate = if engine.is_draining() {
                Some(engine.handle_draining())
            } else if engine.plan().sheds_at(seq) {
                Some(engine.handle_shed(format!("injected shed at arrival sequence {seq}")))
            } else if !admission.try_enter() {
                Some(engine.handle_shed(format!(
                    "admission queue full ({} queued)",
                    admission.capacity()
                )))
            } else {
                None
            };
            match immediate {
                Some((response, outcome)) => {
                    let _ = reply_tx.send(engine.seal_immediate(response, outcome, seq));
                    true
                }
                None => jobs
                    .send(Job {
                        item,
                        seq,
                        arrival: Instant::now(),
                        reply: reply_tx,
                    })
                    .is_ok(),
            }
        });
    });
    for slot in slots_rx {
        let Ok(reply) = slot.recv() else {
            // The job's reply sender was dropped unanswered — the
            // daemon is coming down; stop writing.
            return Ok(false);
        };
        let write_start = Instant::now();
        if reply.shutdown {
            // Best-effort ack: the client may legitimately hang up the
            // moment it has read the ack bytes, racing our trailing
            // newline/flush into an EPIPE. The daemon is coming down
            // either way, so a failed ack write must not eat the
            // shutdown signal.
            let _ = writer.write_all(reply.text.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            if let Some(record) = reply.record {
                record.finish(write_start.elapsed().as_nanos() as u64);
            }
            return Ok(true);
        }
        writer.write_all(reply.text.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if let Some(record) = reply.record {
            record.finish(write_start.elapsed().as_nanos() as u64);
        }
    }
    Ok(false)
}

/// Serves stdin/stdout until EOF or a shutdown request.
///
/// # Errors
/// Propagates stdout failures.
pub fn run_stdio(engine: Arc<ServeEngine>, opts: ServeOpts) -> io::Result<()> {
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let admission = Arc::new(Admission::new(opts.queue));
    let batcher = {
        let engine = Arc::clone(&engine);
        let admission = Arc::clone(&admission);
        let opts = opts.clone();
        std::thread::spawn(move || run_batcher(&engine, &jobs_rx, &admission, &opts))
    };
    let shared = ServeShared::new(engine, admission, jobs_tx, opts.max_line);
    let result = serve_connection(io::stdin(), io::stdout(), shared);
    // EOF: the job senders are dropped, the batcher drains and exits.
    // Shutdown: the batcher finishes its drain within the grace window.
    let _ = batcher.join();
    result.map(|_| ())
}

/// Serves a unix socket until a shutdown request, accepting any number
/// of concurrent clients.
///
/// # Errors
/// Fails when the socket cannot be bound.
pub fn run_socket(engine: Arc<ServeEngine>, path: &Path, opts: ServeOpts) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let admission = Arc::new(Admission::new(opts.queue));
    let batcher = {
        let engine = Arc::clone(&engine);
        let admission = Arc::clone(&admission);
        let opts = opts.clone();
        std::thread::spawn(move || run_batcher(&engine, &jobs_rx, &admission, &opts))
    };
    let shared = ServeShared::new(engine, admission, jobs_tx, opts.max_line);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    if let Ok(true) = serve_connection(read_half, &stream, shared) {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    if shutdown.load(Ordering::SeqCst) {
        // The dispatcher finished (or is finishing) its drain; wait so
        // the final metrics snapshot sees every counted response.
        let _ = batcher.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{uc1_config, CAMPAIGN_SEED};
    use pv_core::registry::{artifact_key, Artifact as RegistryArtifact, ModelRegistry};
    use pv_core::sweep::CellConfig;
    use pv_core::{ModelKind, ReprKind};
    use pv_sysmodel::{Corpus, SystemModel};

    fn tiny_engine() -> (ServeEngine, u64, Corpus) {
        let corpus = Corpus::collect(&SystemModel::intel(), 30, 3);
        let mut cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
        cfg.seed = CAMPAIGN_SEED;
        let include: Vec<usize> = (0..corpus.len()).collect();
        let p = FewRunsPredictor::train(&corpus, &include, cfg).expect("train");
        let key = artifact_key(1, &CellConfig::FewRuns(cfg)).expect("key");
        let mut models = HashMap::new();
        models.insert(key, ServedModel::FewRuns(p));
        (ServeEngine::from_models(models), key, corpus)
    }

    fn request_line(key: u64, profile: &Profile) -> String {
        format!(
            "{{\"model\": \"{key:016x}\", \"profile\": {}, \"n_samples\": 50, \"sample_seed\": 1}}",
            serde_json::to_string(profile).expect("profile json")
        )
    }

    #[test]
    fn well_formed_request_gets_ok_with_samples() {
        let (engine, key, corpus) = tiny_engine();
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let (resp, outcome) = engine.handle_line(&request_line(key, &profile));
        assert_eq!(outcome, Outcome::Ok, "{resp}");
        assert!(
            resp.contains("\"ok\": true") || resp.contains("\"ok\":true"),
            "{resp}"
        );
        assert!(resp.contains("samples"), "{resp}");
    }

    #[test]
    fn malformed_and_unknown_requests_get_typed_errors() {
        let (engine, key, corpus) = tiny_engine();
        let (resp, outcome) = engine.handle_line("this is not json");
        assert_eq!(outcome, Outcome::BadRequest);
        assert!(resp.contains("bad-request"), "{resp}");
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let (resp, outcome) = engine.handle_line(&request_line(key ^ 1, &profile));
        assert_eq!(outcome, Outcome::NotFound);
        assert!(resp.contains("not-found"), "{resp}");
    }

    #[test]
    fn bounded_reader_flags_oversized_lines_and_recovers() {
        let input = format!("{}\nshort\n", "x".repeat(100));
        let mut items = Vec::new();
        read_lines_bounded(input.as_bytes(), 10, |item| {
            items.push(matches!(item, LineItem::Oversized));
            true
        })
        .expect("read");
        assert_eq!(items, vec![true, false]);
    }

    #[test]
    fn shutdown_request_is_acked() {
        let (engine, _, _) = tiny_engine();
        let (resp, outcome) = engine.handle_line("{\"shutdown\": true, \"id\": 7}");
        assert_eq!(outcome, Outcome::Shutdown);
        assert!(resp.contains("shutdown"), "{resp}");
        assert!(resp.contains('7'), "{resp}");
        let (resp, outcome) = engine.handle_line("{\"op\": \"shutdown\", \"id\": 9}");
        assert_eq!(outcome, Outcome::Shutdown);
        assert!(resp.contains('9'), "{resp}");
    }

    #[test]
    fn expired_deadline_yields_typed_timeout_with_id_echo() {
        let (engine, key, corpus) = tiny_engine();
        let engine = engine.with_deadline(Some(Duration::ZERO));
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = format!(
            "{{\"id\": 42, \"model\": \"{key:016x}\", \"profile\": {}}}",
            serde_json::to_string(&profile).expect("json")
        );
        let (resp, outcome) = engine.handle_timed(&line, 0, Instant::now());
        assert_eq!(outcome, Outcome::Timeout, "{resp}");
        assert!(resp.contains("timeout"), "{resp}");
        assert!(resp.contains("42"), "{resp}");
        // Ops are exempt from the deadline.
        let (resp, outcome) = engine.handle_timed("{\"op\": \"health\"}", 1, Instant::now());
        assert_eq!(outcome, Outcome::Health, "{resp}");
    }

    #[test]
    fn virtual_slow_fault_blows_the_deadline_without_the_real_sleep() {
        let (engine, key, corpus) = tiny_engine();
        let engine = engine
            .with_deadline(Some(Duration::from_secs(3600)))
            .with_fault_plan(ServeFaultPlan::none().inject_slow(5, 86_400_000));
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        // Un-faulted sequence: well within the deadline.
        let started = Instant::now();
        let (_, outcome) = engine.handle_timed(&line, 4, Instant::now());
        assert_eq!(outcome, Outcome::Ok);
        // Faulted sequence: a day of virtual delay versus an hour of
        // deadline — times out, but only ~SLOW_FAULT_REAL_CAP of real
        // time passes.
        let (resp, outcome) = engine.handle_timed(&line, 5, Instant::now());
        assert_eq!(outcome, Outcome::Timeout, "{resp}");
        assert!(started.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn admission_queue_sheds_at_capacity_and_tracks_watermark() {
        let q = Admission::new(2);
        assert!(q.try_enter());
        assert!(q.try_enter());
        assert!(!q.try_enter(), "third admit must shed");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.high_watermark(), 2);
        q.leave();
        assert!(q.try_enter(), "a freed slot re-admits");
        q.leave();
        q.leave();
        assert_eq!(q.depth(), 0);
        assert_eq!(q.high_watermark(), 2, "watermark never recedes");
        // Capacity 0 is unbounded.
        let unbounded = Admission::new(0);
        for _ in 0..10_000 {
            assert!(unbounded.try_enter());
        }
    }

    #[test]
    fn shed_and_draining_responses_are_typed() {
        let (engine, _, _) = tiny_engine();
        let (resp, outcome) = engine.handle_shed("queue full".into());
        assert_eq!(outcome, Outcome::Overloaded);
        assert!(resp.contains("overloaded"), "{resp}");
        assert!(!engine.is_draining());
        engine.begin_drain();
        assert!(engine.is_draining());
        let (resp, outcome) = engine.handle_draining();
        assert_eq!(outcome, Outcome::Draining);
        assert!(resp.contains("draining"), "{resp}");
    }

    #[test]
    fn health_probe_reports_state_and_models() {
        let (engine, key, _) = tiny_engine();
        let (resp, outcome) = engine.handle_line("{\"op\": \"health\", \"id\": 3}");
        assert_eq!(outcome, Outcome::Health, "{resp}");
        assert!(resp.contains("\"status\": \"ok\"") || resp.contains("\"status\":\"ok\""));
        assert!(resp.contains(&format!("{key:016x}")), "{resp}");
        assert!(resp.contains("staleness_s"), "{resp}");
        engine.begin_drain();
        let (resp, _) = engine.handle_line("{\"op\": \"health\"}");
        assert!(resp.contains("draining"), "{resp}");
    }

    #[test]
    fn reload_without_a_registry_is_a_typed_failure() {
        let (engine, _, _) = tiny_engine();
        let (resp, outcome) = engine.handle_line("{\"op\": \"reload\"}");
        assert_eq!(outcome, Outcome::Reload, "{resp}");
        assert!(resp.contains("reload-failed"), "{resp}");
        assert_eq!(engine.state(), ServeState::Degraded);
    }

    fn registry_with_model(tag: &str) -> (ModelRegistry, std::path::PathBuf, u64, Corpus) {
        let dir = std::env::temp_dir().join(format!("pv-serve-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::new(&dir);
        let corpus = Corpus::collect(&SystemModel::intel(), 30, 3);
        let mut cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
        cfg.seed = CAMPAIGN_SEED;
        let include: Vec<usize> = (0..corpus.len()).collect();
        let p = FewRunsPredictor::train(&corpus, &include, cfg).expect("train");
        let fp = pv_core::corpus_fingerprint(&corpus);
        let key = registry
            .store(fp, &RegistryArtifact::FewRuns(p.to_artifact()))
            .expect("store");
        (registry, dir, key, corpus)
    }

    #[test]
    fn reload_swaps_in_new_entries_and_keeps_old_on_corruption() {
        let (registry, dir, key, corpus) = registry_with_model("reload");
        let engine = ServeEngine::from_registry(&registry).expect("load");
        assert_eq!(engine.keys(), vec![key]);
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        let (before, outcome) = engine.handle_line(&line);
        assert_eq!(outcome, Outcome::Ok);

        // A clean reload keeps serving bit-identically.
        let report = engine.reload();
        assert!(report.swapped());
        assert_eq!(report.loaded, 1);
        assert_eq!(engine.state(), ServeState::Ok);
        let (after, _) = engine.handle_line(&line);
        assert_eq!(before, after);

        // Corrupt the entry on disk: the reload keeps the old model
        // serving, marks it held over, and degrades the daemon.
        let entry_path = dir.join(format!("model-{key:016x}.json"));
        std::fs::write(&entry_path, "{\"vandalized\": true}").expect("corrupt");
        let report = engine.reload();
        assert!(report.swapped());
        assert_eq!(report.loaded, 0);
        assert_eq!(report.held_over.len(), 1);
        assert_eq!(engine.state(), ServeState::Degraded);
        let (after_corrupt, outcome) = engine.handle_line(&line);
        assert_eq!(outcome, Outcome::Ok, "old model must keep serving");
        assert_eq!(before, after_corrupt);
        let (health, _) = engine.handle_line("{\"op\": \"health\"}");
        assert!(health.contains("degraded"), "{health}");
        assert!(health.contains("\"held_over\": true") || health.contains("\"held_over\":true"));

        // Delete the entry: the model is dropped on the next reload.
        std::fs::remove_file(&entry_path).expect("rm");
        let report = engine.reload();
        assert!(report.swapped());
        assert_eq!(report.dropped, 1);
        assert!(engine.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_reload_io_fault_keeps_old_snapshot_until_retry() {
        let (registry, dir, key, corpus) = registry_with_model("reload-io");
        let engine = ServeEngine::from_registry(&registry)
            .expect("load")
            .with_fault_plan(ServeFaultPlan::none().inject_reload_io(0));
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        let (before, _) = engine.handle_line(&line);

        let report = engine.reload();
        assert!(!report.swapped());
        assert_eq!(engine.state(), ServeState::Degraded);
        let (during, outcome) = engine.handle_line(&line);
        assert_eq!(outcome, Outcome::Ok, "old snapshot must keep serving");
        assert_eq!(before, during);

        // The fault was keyed to attempt 0; attempt 1 recovers.
        let report = engine.reload();
        assert!(report.swapped());
        assert_eq!(engine.state(), ServeState::Ok);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn parse(text: &str) -> Content {
        let Json(content) =
            serde_json::from_str(text).unwrap_or_else(|e| panic!("bad json {e}: {text}"));
        content
    }

    /// Walks a dotted path through nested [`Content`] maps.
    fn get<'a>(doc: &'a Content, path: &str) -> &'a Content {
        let mut cur = doc;
        for key in path.split('.') {
            let Content::Map(map) = cur else {
                panic!("{path}: {key} is not inside a map: {cur:?}")
            };
            cur = &map
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{path}: missing key {key} in {map:?}"))
                .1;
        }
        cur
    }

    fn get_u64(doc: &Content, path: &str) -> u64 {
        match get(doc, path) {
            Content::U64(v) => *v,
            Content::I64(v) => *v as u64,
            other => panic!("{path}: not an integer: {other:?}"),
        }
    }

    fn get_f64(doc: &Content, path: &str) -> f64 {
        match get(doc, path) {
            Content::F64(v) => *v,
            Content::U64(v) => *v as f64,
            Content::I64(v) => *v as f64,
            other => panic!("{path}: not a number: {other:?}"),
        }
    }

    fn get_str<'a>(doc: &'a Content, path: &str) -> &'a str {
        match get(doc, path) {
            Content::Str(s) => s.as_str(),
            other => panic!("{path}: not a string: {other:?}"),
        }
    }

    #[test]
    fn stats_op_reports_totals_windows_and_counts_itself() {
        let (engine, key, corpus) = tiny_engine();
        let engine = Arc::new(engine);
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        for seq in 0..3 {
            let reply = engine.handle_timed_sealed(&line, seq, Instant::now());
            assert!(reply.text.contains("\"ok\":true"), "{}", reply.text);
        }
        let reply = engine.handle_timed_sealed("{\"op\": \"stats\", \"id\": 8}", 3, Instant::now());
        let doc = parse(&reply.text);
        assert_eq!(get(&doc, "ok"), &Content::Bool(true), "{doc:?}");
        assert_eq!(get_str(&doc, "op"), "stats");
        assert_eq!(get_u64(&doc, "id"), 8);
        assert_eq!(get_str(&doc, "status"), "ok");
        // The stats reply is rendered before its own seal: 3 sealed.
        assert_eq!(get_u64(&doc, "totals.requests"), 3);
        assert_eq!(get_u64(&doc, "totals.ok"), 3);
        assert_eq!(get_u64(&doc, "totals.timeout"), 0);
        let Content::Seq(windows) = get(&doc, "windows") else {
            panic!("windows is not a list: {doc:?}")
        };
        assert_eq!(windows.len(), WINDOWS.len());
        for w in windows {
            assert_eq!(get_u64(w, "requests"), 3, "{w:?}");
            assert_eq!(get_u64(w, "ok"), 3, "{w:?}");
            assert_eq!(get_u64(w, "latency.count"), 3, "{w:?}");
            assert!(get_u64(w, "latency.p50_ns") > 0, "{w:?}");
            assert!(get_f64(w, "rate") > 0.0, "{w:?}");
        }
        // Afterwards the stats request itself is sealed too.
        assert_eq!(engine.telemetry().total_requests(), 4);
        assert_eq!(engine.telemetry().total_outcome(Outcome::Stats), 1);
        // The deadline never applies to stats.
        let engine2 = ServeEngine::from_models(HashMap::new()).with_deadline(Some(Duration::ZERO));
        let (resp, outcome) = engine2.handle_timed("{\"op\": \"stats\"}", 0, Instant::now());
        assert_eq!(outcome, Outcome::Stats, "{resp}");
    }

    #[test]
    fn injected_worker_panic_is_caught_typed_and_isolated() {
        pv_core::resilience::silence_injected_panics();
        let (engine, key, corpus) = tiny_engine();
        let engine = Arc::new(engine.with_fault_plan(ServeFaultPlan::none().inject_panic(1)));
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        let before = engine.handle_timed_sealed(&line, 0, Instant::now());
        assert!(before.text.contains("\"ok\":true"), "{}", before.text);
        let panicked = engine.handle_timed_sealed(&line, 1, Instant::now());
        let doc = parse(&panicked.text);
        assert_eq!(get(&doc, "ok"), &Content::Bool(false), "{doc:?}");
        assert_eq!(get_str(&doc, "error.kind"), "panic", "{doc:?}");
        // The engine keeps serving bit-identically after the panic.
        let after = engine.handle_timed_sealed(&line, 2, Instant::now());
        assert_eq!(before.text, after.text);
        assert_eq!(engine.telemetry().total_requests(), 3);
        assert_eq!(engine.telemetry().total_outcome(Outcome::Error), 1);
        assert_eq!(engine.telemetry().total_outcome(Outcome::Ok), 2);
    }

    #[test]
    fn slo_budget_burns_on_failures_and_skips_ops() {
        let (engine, key, corpus) = tiny_engine();
        let telemetry = ServeTelemetry::new(TelemetryOpts {
            slo: Some(Duration::from_secs(3600)),
            ..TelemetryOpts::default()
        })
        .expect("telemetry");
        let engine = Arc::new(engine.with_telemetry(telemetry));
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        for seq in 0..4 {
            engine.handle_timed_sealed(&line, seq, Instant::now());
        }
        // A bad request burns budget; ops never enter the budget.
        engine.handle_timed_sealed("this is not json", 4, Instant::now());
        engine.handle_timed_sealed("{\"op\": \"health\"}", 5, Instant::now());
        let (health, _) = engine.handle_line("{\"op\": \"health\"}");
        let doc = parse(&health);
        assert_eq!(get_u64(&doc, "slo.target_ms"), 3_600_000, "{doc:?}");
        assert_eq!(get_u64(&doc, "slo.eligible"), 5, "{doc:?}");
        assert_eq!(get_u64(&doc, "slo.violations"), 1, "{doc:?}");
        let burn = get_f64(&doc, "slo.burn.total");
        assert!((burn - 0.2).abs() < 1e-12, "{doc:?}");
        // The stats document carries the same block.
        let stats = parse(&engine.stats_json());
        assert_eq!(get_u64(&stats, "slo.eligible"), 5, "{stats:?}");
    }

    #[test]
    fn slo_violation_when_latency_exceeds_target() {
        let (engine, key, corpus) = tiny_engine();
        let telemetry = ServeTelemetry::new(TelemetryOpts {
            slo: Some(Duration::from_millis(1)),
            ..TelemetryOpts::default()
        })
        .expect("telemetry");
        // A 10-minute virtual delay with a generous deadline: the
        // request still answers `ok`, but far over the 1ms target.
        let engine = Arc::new(
            engine
                .with_deadline(Some(Duration::from_secs(3600)))
                .with_fault_plan(ServeFaultPlan::none().inject_slow(0, 600_000))
                .with_telemetry(telemetry),
        );
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let reply = engine.handle_timed_sealed(&request_line(key, &profile), 0, Instant::now());
        assert!(reply.text.contains("\"ok\":true"), "{}", reply.text);
        let doc = parse(&engine.stats_json());
        assert_eq!(get_u64(&doc, "slo.eligible"), 1, "{doc:?}");
        assert_eq!(get_u64(&doc, "slo.violations"), 1, "{doc:?}");
    }

    #[test]
    fn flight_recorder_trips_once_on_shed_burst() {
        let dump = std::env::temp_dir().join(format!(
            "pv-serve-unit-recorder-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&dump);
        let (engine, _, _) = tiny_engine();
        let telemetry = ServeTelemetry::new(TelemetryOpts {
            recorder: Some(dump.clone()),
            recorder_capacity: 4,
            anomaly_threshold: 2,
            ..TelemetryOpts::default()
        })
        .expect("telemetry");
        let engine = Arc::new(engine.with_telemetry(telemetry));
        assert!(!dump.exists(), "recorder must not dump before an anomaly");
        for seq in 0..2 {
            let (text, outcome) = engine.handle_shed("queue full".into());
            engine.seal_immediate(text, outcome, seq);
        }
        assert!(dump.exists(), "two sheds in 10s must trip the recorder");
        let first = std::fs::read_to_string(&dump).expect("dump");
        let mut lines = first.lines();
        let header = parse(lines.next().expect("header"));
        assert_eq!(get_str(&header, "trigger"), "shed-burst", "{header:?}");
        assert_eq!(get_u64(&header, "seq"), 1, "{header:?}");
        assert_eq!(get_u64(&header, "events"), 2, "{header:?}");
        let ring: Vec<Content> = lines.map(parse).collect();
        assert_eq!(ring.len(), 2, "{first}");
        assert_eq!(get_u64(&ring[0], "seq"), 0);
        assert_eq!(get_str(&ring[0], "outcome"), "overloaded");
        assert_eq!(get_u64(&ring[1], "seq"), 1);
        // The latch is one-shot: later anomalies never overwrite the
        // first post-mortem.
        let (text, outcome) = engine.handle_shed("queue full".into());
        engine.seal_immediate(text, outcome, 2);
        engine.telemetry().trip_recorder("reload-failed", 9);
        assert_eq!(std::fs::read_to_string(&dump).expect("dump"), first);
        let _ = std::fs::remove_file(&dump);
    }

    #[test]
    fn access_log_writes_exactly_one_reconciling_line_per_request() {
        let log =
            std::env::temp_dir().join(format!("pv-serve-unit-access-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&log);
        let (engine, key, corpus) = tiny_engine();
        let telemetry = ServeTelemetry::new(TelemetryOpts {
            access_log: Some(log.clone()),
            ..TelemetryOpts::default()
        })
        .expect("telemetry");
        let engine = Arc::new(engine.with_telemetry(telemetry));
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let line = request_line(key, &profile);
        // finish() logs the measured write time; a dropped handle (the
        // client vanished) still logs its line with write_ns 0.
        let finished = engine.handle_timed_sealed(&line, 0, Instant::now());
        finished.record.expect("record").finish(77);
        let dropped = engine.handle_timed_sealed("not json", 1, Instant::now());
        drop(dropped);
        let text = std::fs::read_to_string(&log).expect("access log");
        let entries: Vec<Content> = text.lines().map(parse).collect();
        assert_eq!(entries.len(), 2, "{text}");
        assert_eq!(get_u64(&entries[0], "req"), 0);
        assert_eq!(get_str(&entries[0], "outcome"), "ok");
        assert_eq!(get_str(&entries[0], "model"), format!("{key:016x}"));
        assert_eq!(get_u64(&entries[0], "write_ns"), 77);
        assert_eq!(get_u64(&entries[1], "req"), 1);
        assert_eq!(get_str(&entries[1], "outcome"), "bad");
        assert_eq!(get(&entries[1], "model"), &Content::Null);
        assert_eq!(get_u64(&entries[1], "write_ns"), 0);
        for e in &entries {
            let total = get_u64(e, "queue_ns") + get_u64(e, "predict_ns") + get_u64(e, "write_ns");
            assert_eq!(get_u64(e, "total_ns"), total, "{e:?}");
        }
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn telemetry_prometheus_renders_without_a_collector() {
        let (engine, key, corpus) = tiny_engine();
        let engine = Arc::new(engine);
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        engine.handle_timed_sealed(&request_line(key, &profile), 0, Instant::now());
        let prom = engine.telemetry_prometheus();
        assert!(
            prom.contains("pv_serve_request 1"),
            "exact totals must render without an obs collector:\n{prom}"
        );
        assert!(prom.contains("pv_serve_request_ok 1"), "{prom}");
        assert!(
            prom.contains("pv_serve_window_latency_ns_count 1"),
            "{prom}"
        );
        assert!(prom.contains("pv_serve_window_latency_ns_bucket"), "{prom}");
    }
}
