//! The `pv-serve` query protocol and daemon engine.
//!
//! A registry directory (see [`pv_core::registry`]) is the deployable
//! unit; this module turns one into a long-lived query service. The
//! protocol is line-delimited JSON on stdin/stdout or a unix socket:
//!
//! ```text
//! → {"model": "b3e1…", "profile": {"n_runs": 10, "n_metrics": 68, "features": […]}}
//! ← {"ok": true, "model": "b3e1…", "prediction": {"features": […], "samples": […]},
//!    "ks_confidence": null}
//! ```
//!
//! Request fields: `model` (registry key, 16-hex-digit string or
//! integer; required), `profile` (a [`Profile`]; required), `rel_times`
//! (measured relative times; required for cross-system models, and when
//! present also scores `ks_confidence`), `n_samples` (default 1000),
//! `sample_seed` (default 0), `id` (any JSON value, echoed back
//! verbatim), `shutdown` (`true` asks the daemon to ack and exit 0).
//!
//! Every failure is a *typed response*, never a crash: unparsable or
//! oversized lines get `{"ok": false, "error": {"kind": "bad-request",
//! …}}`, an unknown model key `"not-found"`, and a prediction-time
//! failure `"invalid"`. The daemon micro-batches concurrent queries —
//! whatever is queued when a worker looks, up to a batch cap — across
//! the rayon pool, and exports `pv.serve.*` metrics through `pv-obs`:
//! by construction `pv.serve.request` equals the total response count
//! and the per-kind counters partition it (pinned by
//! `tests/serve_protocol.rs`).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rayon::prelude::*;
use serde::Content;

use pv_core::registry::{ModelRegistry, REGISTRY_OBS_COUNTERS};
use pv_core::resilience::PvError;
use pv_core::usecase1::FewRunsPredictor;
use pv_core::usecase2::CrossSystemPredictor;
use pv_core::{Artifact, Profile};
use pv_stats::ks::ks2_test;

/// Default reconstruction sample count per prediction.
pub const DEFAULT_N_SAMPLES: usize = 1000;

/// Hard cap on `n_samples` — a typed refusal beats an allocation stall.
pub const MAX_N_SAMPLES: usize = 100_000;

/// Default micro-batch cap (requests drained per rayon dispatch).
pub const DEFAULT_BATCH: usize = 64;

/// Default maximum request line length in bytes.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// The observability counters the serving layer emits. `pv.serve.request`
/// counts every line answered; `ok`/`bad`/`not_found`/`error`/`shutdown`
/// partition it by response kind; `batch` counts rayon dispatches.
pub const SERVE_OBS_COUNTERS: &[&str] = &[
    "pv.serve.batch",
    "pv.serve.request",
    "pv.serve.request.bad",
    "pv.serve.request.error",
    "pv.serve.request.not_found",
    "pv.serve.request.ok",
    "pv.serve.shutdown",
];

/// Every counter a daemon process can emit (serve + registry loads),
/// preregistered at startup so metrics snapshots list zeros explicitly.
pub fn preregister_serve_counters() {
    pv_obs::metrics::preregister_counters(SERVE_OBS_COUNTERS);
    pv_obs::metrics::preregister_counters(REGISTRY_OBS_COUNTERS);
}

/// A raw JSON value — bridges `serde_json` text to a [`Content`] tree so
/// requests can be picked apart *leniently*: a malformed field yields a
/// typed error response instead of a whole-struct parse failure.
#[derive(Debug, Clone)]
pub struct Json(pub Content);

impl serde::Serialize for Json {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.0.clone())
    }
}

impl<'de> serde::Deserialize<'de> for Json {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_content().map(Json)
    }
}

/// How a request was answered — the response taxonomy the `pv.serve.*`
/// counters mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A successful prediction.
    Ok,
    /// The request line was unparsable, oversized, or semantically
    /// malformed.
    BadRequest,
    /// The model key is not in the registry.
    NotFound,
    /// The request was well-formed but prediction failed.
    Error,
    /// A shutdown request, acked.
    Shutdown,
}

impl Outcome {
    /// The counter this outcome increments.
    pub fn counter(&self) -> &'static str {
        match self {
            Outcome::Ok => "pv.serve.request.ok",
            Outcome::BadRequest => "pv.serve.request.bad",
            Outcome::NotFound => "pv.serve.request.not_found",
            Outcome::Error => "pv.serve.request.error",
            Outcome::Shutdown => "pv.serve.shutdown",
        }
    }
}

// ---------------------------------------------------------------------
// Request parsing

struct Request {
    id: Option<Content>,
    model: u64,
    profile: Profile,
    rel_times: Option<Vec<f64>>,
    n_samples: usize,
    sample_seed: u64,
}

enum Parsed {
    Predict(Box<Request>),
    Shutdown { id: Option<Content> },
}

fn field<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(c: &Content) -> Option<u64> {
    match *c {
        Content::I64(v) if v >= 0 => Some(v as u64),
        Content::U64(v) => Some(v),
        _ => None,
    }
}

fn as_f64(c: &Content) -> Option<f64> {
    match *c {
        Content::I64(v) => Some(v as f64),
        Content::U64(v) => Some(v as f64),
        Content::F64(v) => Some(v),
        _ => None,
    }
}

/// Parses the `model` field: a 1–16-digit hex string (the registry
/// filename form) or a plain unsigned integer.
fn parse_model_key(c: &Content) -> Option<u64> {
    match c {
        Content::Str(s) if !s.is_empty() && s.len() <= 16 => u64::from_str_radix(s, 16).ok(),
        other => as_u64(other),
    }
}

fn parse_request(line: &str) -> Result<Parsed, String> {
    let Json(content) =
        serde_json::from_str::<Json>(line).map_err(|e| format!("unparsable JSON: {e}"))?;
    let Content::Map(map) = content else {
        return Err("request must be a JSON object".into());
    };
    let id = field(&map, "id").cloned();
    if matches!(field(&map, "shutdown"), Some(Content::Bool(true))) {
        return Ok(Parsed::Shutdown { id });
    }
    let model = field(&map, "model")
        .and_then(parse_model_key)
        .ok_or("missing or malformed \"model\" (expected a 16-hex-digit registry key)")?;
    let profile: Profile = match field(&map, "profile") {
        Some(c) => serde::from_content(c.clone()).map_err(|e| format!("bad \"profile\": {e}"))?,
        None => return Err("missing \"profile\"".into()),
    };
    if profile.features.iter().any(|v| !v.is_finite()) {
        return Err("\"profile\" features must be finite".into());
    }
    let rel_times = match field(&map, "rel_times") {
        None | Some(Content::Null) => None,
        Some(Content::Seq(xs)) => {
            let vals: Option<Vec<f64>> = xs.iter().map(as_f64).collect();
            match vals {
                Some(v) if !v.is_empty() && v.iter().all(|x| x.is_finite()) => Some(v),
                _ => {
                    return Err(
                        "bad \"rel_times\": expected a non-empty array of finite numbers".into(),
                    )
                }
            }
        }
        Some(_) => return Err("bad \"rel_times\": expected an array".into()),
    };
    let n_samples = match field(&map, "n_samples") {
        None | Some(Content::Null) => DEFAULT_N_SAMPLES,
        Some(c) => match as_u64(c) {
            Some(n) if n as usize <= MAX_N_SAMPLES => n as usize,
            Some(n) => return Err(format!("n_samples {n} exceeds the cap {MAX_N_SAMPLES}")),
            None => return Err("bad \"n_samples\": expected an unsigned integer".into()),
        },
    };
    let sample_seed = match field(&map, "sample_seed") {
        None | Some(Content::Null) => 0,
        Some(c) => as_u64(c).ok_or("bad \"sample_seed\": expected an unsigned integer")?,
    };
    Ok(Parsed::Predict(Box::new(Request {
        id,
        model,
        profile,
        rel_times,
        n_samples,
        sample_seed,
    })))
}

// ---------------------------------------------------------------------
// Response building

fn render(content: Content) -> String {
    serde_json::to_string(&Json(content)).unwrap_or_else(|_| {
        // A Content tree always serializes; keep the daemon alive anyway.
        "{\"ok\":false,\"error\":{\"kind\":\"invalid\",\"detail\":\"render failure\"}}".into()
    })
}

fn error_response(id: Option<Content>, kind: &str, detail: String) -> String {
    let mut map = Vec::with_capacity(3);
    if let Some(id) = id {
        map.push(("id".to_string(), id));
    }
    map.push(("ok".to_string(), Content::Bool(false)));
    map.push((
        "error".to_string(),
        Content::Map(vec![
            ("kind".to_string(), Content::Str(kind.to_string())),
            ("detail".to_string(), Content::Str(detail)),
        ]),
    ));
    render(Content::Map(map))
}

fn ok_response(
    id: Option<Content>,
    model: u64,
    features: Vec<f64>,
    samples: Vec<f64>,
    ks_confidence: Option<f64>,
) -> String {
    let floats = |xs: Vec<f64>| Content::Seq(xs.into_iter().map(Content::F64).collect());
    let mut map = Vec::with_capacity(5);
    if let Some(id) = id {
        map.push(("id".to_string(), id));
    }
    map.push(("ok".to_string(), Content::Bool(true)));
    map.push(("model".to_string(), Content::Str(format!("{model:016x}"))));
    map.push((
        "prediction".to_string(),
        Content::Map(vec![
            ("features".to_string(), floats(features)),
            ("samples".to_string(), floats(samples)),
        ]),
    ));
    map.push((
        "ks_confidence".to_string(),
        ks_confidence.map_or(Content::Null, Content::F64),
    ));
    render(Content::Map(map))
}

// ---------------------------------------------------------------------
// Engine

/// A predictor reconstructed from a registry artifact.
pub enum ServedModel {
    /// Use case 1: profile → same-system distribution.
    FewRuns(FewRunsPredictor),
    /// Use case 2: profile ⊕ measured distribution → other-system
    /// distribution.
    CrossSystem(CrossSystemPredictor),
}

/// The query engine: every registry model loaded once, ready to answer
/// protocol lines from any number of threads.
pub struct ServeEngine {
    models: HashMap<u64, ServedModel>,
}

impl ServeEngine {
    /// Loads and verifies every model in `registry`.
    ///
    /// # Errors
    /// Propagates the first registry verification failure — a serving
    /// directory must be wholly trustworthy.
    pub fn from_registry(registry: &ModelRegistry) -> Result<Self, PvError> {
        let mut models = HashMap::new();
        for entry in registry.load_all()? {
            let model = match entry.artifact {
                Artifact::FewRuns(a) => ServedModel::FewRuns(FewRunsPredictor::from_artifact(a)?),
                Artifact::CrossSystem(a) => {
                    ServedModel::CrossSystem(CrossSystemPredictor::from_artifact(a)?)
                }
            };
            models.insert(entry.key, model);
        }
        Ok(ServeEngine { models })
    }

    /// An engine over an explicit model table (for tests/benches).
    pub fn from_models(models: HashMap<u64, ServedModel>) -> Self {
        ServeEngine { models }
    }

    /// Number of models loaded.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no models are loaded.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The loaded registry keys, ascending.
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.models.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Answers one protocol line: returns the response (without the
    /// trailing newline) and its outcome, and updates the `pv.serve.*`
    /// counters.
    pub fn handle_line(&self, line: &str) -> (String, Outcome) {
        pv_obs::counter_inc!("pv.serve.request");
        let start = Instant::now();
        let (response, outcome) = self.respond(line);
        pv_obs::observe!(
            "pv.serve.latency_ns",
            pv_obs::metrics::BucketSpec::latency(),
            start.elapsed().as_nanos() as f64
        );
        pv_obs::counter_inc!(outcome.counter());
        (response, outcome)
    }

    /// The typed response to a line that exceeded the daemon's length
    /// cap (counted like any other answered request).
    pub fn handle_oversized(&self, max_line: usize) -> (String, Outcome) {
        pv_obs::counter_inc!("pv.serve.request");
        pv_obs::counter_inc!(Outcome::BadRequest.counter());
        (
            error_response(
                None,
                "bad-request",
                format!("request line exceeds {max_line} bytes"),
            ),
            Outcome::BadRequest,
        )
    }

    /// Answers a micro-batch across the rayon pool, preserving order.
    pub fn handle_batch(&self, lines: &[&str]) -> Vec<(String, Outcome)> {
        pv_obs::counter_inc!("pv.serve.batch");
        lines
            .to_vec()
            .into_par_iter()
            .map(|l| self.handle_line(l))
            .collect()
    }

    fn respond(&self, line: &str) -> (String, Outcome) {
        let req = match parse_request(line) {
            Ok(Parsed::Shutdown { id }) => {
                let mut map = Vec::with_capacity(3);
                if let Some(id) = id {
                    map.push(("id".to_string(), id));
                }
                map.push(("ok".to_string(), Content::Bool(true)));
                map.push(("shutdown".to_string(), Content::Bool(true)));
                return (render(Content::Map(map)), Outcome::Shutdown);
            }
            Ok(Parsed::Predict(req)) => req,
            Err(detail) => {
                return (
                    error_response(None, "bad-request", detail),
                    Outcome::BadRequest,
                )
            }
        };
        let Some(model) = self.models.get(&req.model) else {
            return (
                error_response(
                    req.id,
                    "not-found",
                    format!(
                        "unknown model {:016x} ({} models loaded)",
                        req.model,
                        self.models.len()
                    ),
                ),
                Outcome::NotFound,
            );
        };
        let predicted = match model {
            ServedModel::FewRuns(p) => p.predict_features_profile(&req.profile).and_then(|f| {
                let samples = p.decode_features(&f, req.n_samples, req.sample_seed)?;
                Ok((f, samples))
            }),
            ServedModel::CrossSystem(p) => match &req.rel_times {
                Some(rel) => p.predict_features_profile(&req.profile, rel).and_then(|f| {
                    let samples = p.decode_features(&f, req.n_samples, req.sample_seed)?;
                    Ok((f, samples))
                }),
                None => return (
                    error_response(
                        req.id,
                        "bad-request",
                        "cross-system model needs \"rel_times\" (the measured source distribution)"
                            .into(),
                    ),
                    Outcome::BadRequest,
                ),
            },
        };
        match predicted {
            Ok((features, samples)) => {
                let ks_confidence = req
                    .rel_times
                    .as_deref()
                    .filter(|_| !samples.is_empty())
                    .and_then(|rel| ks2_test(&samples, rel).ok())
                    .map(|k| k.p_value);
                (
                    ok_response(req.id, req.model, features, samples, ks_confidence),
                    Outcome::Ok,
                )
            }
            Err(e) => (
                error_response(req.id, "invalid", e.to_string()),
                Outcome::Error,
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Daemon plumbing

/// One line read from a client, or the marker that it blew the length
/// cap (the payload is discarded, the event still gets a response).
pub enum LineItem {
    /// A complete line within the cap.
    Line(String),
    /// A line that exceeded the cap and was discarded to the newline.
    Oversized,
}

/// A queued request: the line plus the channel its response goes back
/// on (`true` marks the shutdown ack).
pub struct Job {
    item: LineItem,
    reply: Sender<(String, bool)>,
}

/// Reads newline-delimited items from `reader` with a hard per-line
/// byte cap — an oversized line is discarded to its newline and
/// surfaced as [`LineItem::Oversized`], so a hostile client cannot make
/// the daemon buffer unboundedly. Blank lines are skipped. `sink`
/// returns `false` to stop early.
///
/// # Errors
/// Propagates reader I/O failures.
pub fn read_lines_bounded<R: Read>(
    reader: R,
    max_line: usize,
    mut sink: impl FnMut(LineItem) -> bool,
) -> io::Result<()> {
    let mut r = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a trailing unterminated line still gets answered.
            if overflowed {
                let _ = sink(LineItem::Oversized);
            } else if !buf.iter().all(u8::is_ascii_whitespace) {
                let _ = sink(LineItem::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                r.consume(pos + 1);
                let item = if overflowed || buf.len() > max_line {
                    Some(LineItem::Oversized)
                } else if buf.iter().all(u8::is_ascii_whitespace) {
                    None
                } else {
                    Some(LineItem::Line(String::from_utf8_lossy(&buf).into_owned()))
                };
                buf.clear();
                overflowed = false;
                if let Some(item) = item {
                    if !sink(item) {
                        return Ok(());
                    }
                }
            }
            None => {
                if !overflowed {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max_line {
                        overflowed = true;
                        buf = Vec::new();
                    }
                }
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

/// The micro-batching dispatcher: drains whatever is queued (up to
/// `batch` jobs), answers the batch across the rayon pool, and routes
/// each response back to its connection in order. Runs until the job
/// channel closes or a shutdown ack is dispatched.
pub fn run_batcher(engine: &ServeEngine, jobs: &Receiver<Job>, batch: usize, max_line: usize) {
    let batch = batch.max(1);
    while let Ok(first) = jobs.recv() {
        let mut pending = vec![first];
        while pending.len() < batch {
            match jobs.try_recv() {
                Ok(job) => pending.push(job),
                Err(_) => break,
            }
        }
        pv_obs::counter_inc!("pv.serve.batch");
        let items: Vec<&LineItem> = pending.iter().map(|j| &j.item).collect();
        let results: Vec<(String, Outcome)> = items
            .into_par_iter()
            .map(|item| match item {
                LineItem::Line(l) => engine.handle_line(l),
                LineItem::Oversized => engine.handle_oversized(max_line),
            })
            .collect();
        let mut saw_shutdown = false;
        for (job, (response, outcome)) in pending.iter().zip(results) {
            let is_shutdown = outcome == Outcome::Shutdown;
            saw_shutdown |= is_shutdown;
            // A vanished client already closed its reply channel; fine.
            let _ = job.reply.send((response, is_shutdown));
        }
        if saw_shutdown {
            return;
        }
    }
}

/// Pumps one client: a reader thread feeds the shared job queue, this
/// thread writes responses back in request order. Returns `Ok(true)`
/// when the client's shutdown request was acked (after the ack is
/// flushed, so the flag flip in the caller cannot race the write).
///
/// # Errors
/// Propagates writer I/O failures (a vanished client).
pub fn serve_connection<R, W>(
    reader: R,
    mut writer: W,
    jobs: Sender<Job>,
    max_line: usize,
) -> io::Result<bool>
where
    R: Read + Send + 'static,
    W: Write,
{
    let (reply_tx, reply_rx) = mpsc::channel::<(String, bool)>();
    std::thread::spawn(move || {
        let _ = read_lines_bounded(reader, max_line, |item| {
            jobs.send(Job {
                item,
                reply: reply_tx.clone(),
            })
            .is_ok()
        });
    });
    for (response, is_shutdown) in reply_rx {
        if is_shutdown {
            // Best-effort ack: the client may legitimately hang up the
            // moment it has read the ack bytes, racing our trailing
            // newline/flush into an EPIPE. The daemon is coming down
            // either way, so a failed ack write must not eat the
            // shutdown signal.
            let _ = writer.write_all(response.as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
            return Ok(true);
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(false)
}

/// Serves stdin/stdout until EOF or a shutdown request.
///
/// # Errors
/// Propagates stdout failures.
pub fn run_stdio(engine: Arc<ServeEngine>, batch: usize, max_line: usize) -> io::Result<()> {
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let batcher = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || run_batcher(&engine, &jobs_rx, batch, max_line))
    };
    let saw_shutdown = serve_connection(io::stdin(), io::stdout(), jobs_tx, max_line)?;
    if !saw_shutdown {
        // EOF: the job sender is dropped, the batcher drains and exits.
        let _ = batcher.join();
    }
    Ok(())
}

/// Serves a unix socket until a shutdown request, accepting any number
/// of concurrent clients.
///
/// # Errors
/// Fails when the socket cannot be bound.
pub fn run_socket(
    engine: Arc<ServeEngine>,
    path: &Path,
    batch: usize,
    max_line: usize,
) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || run_batcher(&engine, &jobs_rx, batch, max_line));
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let jobs = jobs_tx.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    if let Ok(true) = serve_connection(read_half, &stream, jobs, max_line) {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{uc1_config, CAMPAIGN_SEED};
    use pv_core::registry::artifact_key;
    use pv_core::sweep::CellConfig;
    use pv_core::{ModelKind, ReprKind};
    use pv_sysmodel::{Corpus, SystemModel};

    fn tiny_engine() -> (ServeEngine, u64, Corpus) {
        let corpus = Corpus::collect(&SystemModel::intel(), 30, 3);
        let mut cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
        cfg.seed = CAMPAIGN_SEED;
        let include: Vec<usize> = (0..corpus.len()).collect();
        let p = FewRunsPredictor::train(&corpus, &include, cfg).expect("train");
        let key = artifact_key(1, &CellConfig::FewRuns(cfg)).expect("key");
        let mut models = HashMap::new();
        models.insert(key, ServedModel::FewRuns(p));
        (ServeEngine::from_models(models), key, corpus)
    }

    fn request_line(key: u64, profile: &Profile) -> String {
        format!(
            "{{\"model\": \"{key:016x}\", \"profile\": {}, \"n_samples\": 50, \"sample_seed\": 1}}",
            serde_json::to_string(profile).expect("profile json")
        )
    }

    #[test]
    fn well_formed_request_gets_ok_with_samples() {
        let (engine, key, corpus) = tiny_engine();
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let (resp, outcome) = engine.handle_line(&request_line(key, &profile));
        assert_eq!(outcome, Outcome::Ok, "{resp}");
        assert!(
            resp.contains("\"ok\": true") || resp.contains("\"ok\":true"),
            "{resp}"
        );
        assert!(resp.contains("samples"), "{resp}");
    }

    #[test]
    fn malformed_and_unknown_requests_get_typed_errors() {
        let (engine, key, corpus) = tiny_engine();
        let (resp, outcome) = engine.handle_line("this is not json");
        assert_eq!(outcome, Outcome::BadRequest);
        assert!(resp.contains("bad-request"), "{resp}");
        let profile = Profile::from_runs(&corpus.benchmarks[0].runs, 10).expect("profile");
        let (resp, outcome) = engine.handle_line(&request_line(key ^ 1, &profile));
        assert_eq!(outcome, Outcome::NotFound);
        assert!(resp.contains("not-found"), "{resp}");
    }

    #[test]
    fn bounded_reader_flags_oversized_lines_and_recovers() {
        let input = format!("{}\nshort\n", "x".repeat(100));
        let mut items = Vec::new();
        read_lines_bounded(input.as_bytes(), 10, |item| {
            items.push(matches!(item, LineItem::Oversized));
            true
        })
        .expect("read");
        assert_eq!(items, vec![true, false]);
    }

    #[test]
    fn shutdown_request_is_acked() {
        let (engine, _, _) = tiny_engine();
        let (resp, outcome) = engine.handle_line("{\"shutdown\": true, \"id\": 7}");
        assert_eq!(outcome, Outcome::Shutdown);
        assert!(resp.contains("shutdown"), "{resp}");
        assert!(resp.contains('7'), "{resp}");
    }
}
