//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p pv-bench --release --bin repro -- all
//! cargo run -p pv-bench --release --bin repro -- fig4 fig6
//! cargo run -p pv-bench --release --bin repro -- sweep --samples 5,10,25
//! ```
//!
//! Each exhibit prints a text rendition to stdout and writes CSV series
//! under `target/repro/` so the data can be re-plotted with any tool.
//! The `sweep` subcommand runs a declarative config grid through the
//! `pv_core::sweep` service with an on-disk cell cache (default
//! `target/repro/sweep-cache`), so re-running with a widened grid only
//! computes the new cells; see `sweep --help`.
//!
//! All exhibits share two process-wide caches per system: the collected
//! campaign corpus ([`intel_campaign`]/[`amd_campaign`]) and its
//! [`EncodedCorpus`] built from [`campaign_spec`] — profiles for every
//! swept sample count, target encodings for all three representations,
//! and use-case-2 joined rows. Grids then run their cells in parallel
//! over the shared cache; all outputs are bit-identical to the former
//! train-per-fold harness.

#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use pv_bench::{
    amd_campaign, campaign_spec, intel_campaign, uc1_config, uc2_config, ObsFlags, CAMPAIGN_SEED,
};
use pv_core::eval::{evaluate_cross_system_encoded, evaluate_few_runs_encoded, EvalSummary};
use pv_core::pipeline::{EncodedCorpus, EncodingSpec};
use pv_core::report::{kde_curve, overlay, sparkline, summary_table, violin_row, write_csv};
use pv_core::resilience::{silence_injected_panics, FaultPlan, PvError, DEFAULT_MAX_RETRIES};
use pv_core::shard::{CampaignSource, ShardSource, ShardedCorpus};
use pv_core::sweep::{CellCache, CellOutcome, GridSpec, Sweep, SweepReport};
use pv_core::usecase1::FewRunsPredictor;
use pv_core::usecase2::CrossSystemPredictor;
use pv_core::{ModelKind, ReprKind};
use pv_stats::ks::ks2_statistic;
use pv_stats::rng::Xoshiro256pp;
use pv_sysmodel::{Corpus, AMD_METRICS, INTEL_METRICS};
use rand::SeedableRng;
use rayon::prelude::*;

fn out_dir() -> PathBuf {
    PathBuf::from("target/repro")
}

/// The Intel campaign, with a one-time setup-timing line.
fn intel() -> &'static Corpus {
    static TIMED: OnceLock<()> = OnceLock::new();
    TIMED.get_or_init(|| {
        let t = Instant::now();
        intel_campaign();
        println!("[setup] Intel campaign collected in {:.1?}", t.elapsed());
    });
    intel_campaign()
}

/// The AMD campaign, with a one-time setup-timing line.
fn amd() -> &'static Corpus {
    static TIMED: OnceLock<()> = OnceLock::new();
    TIMED.get_or_init(|| {
        let t = Instant::now();
        amd_campaign();
        println!("[setup] AMD campaign collected in {:.1?}", t.elapsed());
    });
    amd_campaign()
}

/// The Intel campaign encoded once for every exhibit.
fn intel_enc() -> &'static EncodedCorpus<'static> {
    static ENC: OnceLock<EncodedCorpus<'static>> = OnceLock::new();
    ENC.get_or_init(|| {
        let t = Instant::now();
        let enc = EncodedCorpus::build(intel(), &campaign_spec()).expect("encode");
        println!("[setup] Intel campaign encoded in {:.1?}", t.elapsed());
        enc
    })
}

/// The AMD campaign encoded once for every exhibit.
fn amd_enc() -> &'static EncodedCorpus<'static> {
    static ENC: OnceLock<EncodedCorpus<'static>> = OnceLock::new();
    ENC.get_or_init(|| {
        let t = Instant::now();
        let enc = EncodedCorpus::build(amd(), &campaign_spec()).expect("encode");
        println!("[setup] AMD campaign encoded in {:.1?}", t.elapsed());
        enc
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsFlags::extract(&mut args);
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_cmd(&args[1..], &obs);
        return;
    }
    if args.first().map(String::as_str) == Some("obs-check") {
        obs_check_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("train") {
        train_cmd(&args[1..], &obs);
        return;
    }
    if args.first().map(String::as_str) == Some("load-gen") {
        load_gen_cmd(&args[1..]);
        return;
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    let started = Instant::now();
    let collector = obs.install();
    println!("perfvar reproduction harness — seed {CAMPAIGN_SEED:#x}");
    println!("outputs: {}", out_dir().display());
    println!();

    if want("table1") {
        table1();
    }
    if want("table2") {
        table_metrics(
            "Table II (Intel, 68 metrics)",
            &INTEL_METRICS.map(|m| m.name),
        );
    }
    if want("table3") {
        table_metrics("Table III (AMD, 75 metrics)", &AMD_METRICS.map(|m| m.name));
    }
    if want("fig1") {
        fig1();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("ablations") {
        ablations();
    }
    if want("baselines") {
        baselines();
    }

    println!("\ntotal: {:.1?}", started.elapsed());
    obs.finalize(collector, pv_core::sweep::SWEEP_OBS_COUNTERS);
}

/// Table I: the benchmark roster.
fn table1() {
    println!("== Table I: benchmarks used in the evaluation ==");
    for suite in pv_sysmodel::Suite::ALL {
        println!("{:<12} {}", suite.name(), suite.benchmarks().join(", "));
    }
    println!("total: {} benchmarks\n", pv_sysmodel::roster().len());
}

/// Tables II/III: the metric catalogs.
fn table_metrics(title: &str, names: &[&str]) {
    println!("== {title} ==");
    for (i, name) in names.iter().enumerate() {
        print!("{i:>3} {name:<42}");
        if i % 2 == 1 {
            println!();
        }
    }
    if names.len() % 2 == 1 {
        println!();
    }
    println!();
}

/// Fig. 1: SPEC OMP 376 measured at 1000/2/3/5/10 samples + prediction
/// from 10 samples.
fn fig1() {
    println!("== Fig. 1: measured and predicted distributions of SPEC OMP 376 ==");
    let intel = intel();
    let idx = intel
        .benchmarks
        .iter()
        .position(|b| b.id.qualified() == "specomp/376")
        .expect("roster");
    let bench = &intel.benchmarks[idx];
    let rel = bench.runs.rel_times();
    let (lo, hi) = axis(&rel);
    let width = 64;

    let mut csv_rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut show = |label: &str, xs: &[f64]| {
        let curve = kde_curve(xs, lo, hi, width).expect("kde");
        println!("  {:<24} {}", label, sparkline(&curve));
        labels.push(label.replace(' ', "_"));
        csv_rows.push(curve);
    };

    show("(a) measured, 1000 runs", &rel);
    for (panel, s) in [("(b)", 2usize), ("(c)", 3), ("(d)", 5), ("(e)", 10)] {
        show(&format!("{panel} measured, {s} runs"), &rel[..s]);
    }

    // (f): LOGO prediction from 10 runs, PearsonRnd + kNN.
    let include: Vec<usize> = (0..intel.len()).filter(|&i| i != idx).collect();
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
    let predictor = FewRunsPredictor::train_encoded(intel_enc(), &include, cfg).expect("train");
    let predicted = predictor
        .predict_distribution(&bench.runs, 1000, 376)
        .expect("predict");
    let ks = ks2_statistic(&predicted, &rel).expect("ks");
    show(&format!("(f) predicted (KS={ks:.3})"), &predicted);

    write_csv(
        &out_dir().join("fig1.csv"),
        &["panel", "density_curve_over_axis"],
        &csv_rows,
        Some(&labels),
    )
    .expect("csv");
    println!("  axis: relative time in [{lo:.3}, {hi:.3}]\n");
}

/// Fig. 3: relative-time KDE of every benchmark on the Intel system.
fn fig3() {
    println!("== Fig. 3: relative execution time densities, all benchmarks (Intel) ==");
    let intel = intel();
    let width = 64;
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for b in &intel.benchmarks {
        let rel = b.runs.rel_times();
        let (lo, hi) = axis(&rel);
        let curve = kde_curve(&rel, lo, hi, width).expect("kde");
        println!("  {:<24} {}", b.id.qualified(), sparkline(&curve));
        labels.push(b.id.qualified());
        rows.push(curve);
    }
    write_csv(
        &out_dir().join("fig3.csv"),
        &["benchmark", "density_curve"],
        &rows,
        Some(&labels),
    )
    .expect("csv");
    println!();
}

/// Fig. 4: KS violins per (representation × model) for use case 1 at ten
/// runs, on the Intel system.
fn fig4() {
    println!("== Fig. 4: use case 1, representation × model (Intel, 10 runs) ==");
    let summaries = grid_uc1(intel_enc(), 10);
    render_grid(&summaries, "fig4");
    headline_uc(&summaries);
}

/// Fig. 5: measured-vs-predicted overlays across the KS spectrum (UC1).
fn fig5() {
    println!(
        "== Fig. 5: prediction overlays across the KS spectrum (UC1, PearsonRnd+kNN, 10 runs) =="
    );
    let intel = intel();
    let enc = intel_enc();
    let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, 10);
    // Score every benchmark under LOGO, then show overlays at quantiles.
    let summary = evaluate_few_runs_encoded(enc, cfg).expect("eval");
    let mut order: Vec<usize> = (0..summary.scores.len()).collect();
    order.sort_by(|&a, &b| {
        summary.scores[a]
            .ks
            .partial_cmp(&summary.scores[b].ks)
            .expect("finite")
    });
    let picks: Vec<usize> = (0..8).map(|i| order[i * (order.len() - 1) / 7]).collect();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for &bi in &picks {
        let bench = &intel.benchmarks[bi];
        let include: Vec<usize> = (0..intel.len()).filter(|&i| i != bi).collect();
        let p = FewRunsPredictor::train_encoded(enc, &include, cfg).expect("train");
        let predicted = p
            .predict_distribution(&bench.runs, 1000, bi as u64)
            .expect("predict");
        let rel = bench.runs.rel_times();
        let (lo, hi) = axis_pair(&rel, &predicted);
        println!(
            "  {} (KS = {:.3})",
            bench.id.qualified(),
            summary.scores[bi].ks
        );
        print!(
            "{}",
            overlay(&rel, &predicted, lo, hi, 64).expect("overlay")
        );
        for (tag, xs) in [("measured", &rel), ("predicted", &predicted)] {
            labels.push(format!("{}:{tag}", bench.id.qualified()));
            let mut row = vec![summary.scores[bi].ks, lo, hi];
            row.extend(kde_curve(xs, lo, hi, 64).expect("kde"));
            rows.push(row);
        }
    }
    write_csv(
        &out_dir().join("fig5.csv"),
        &["series", "ks", "axis_lo", "axis_hi", "density_curve"],
        &rows,
        Some(&labels),
    )
    .expect("csv");
    println!();
}

/// Fig. 6: KS score vs. number of profile runs (UC1, best repr+model).
fn fig6() {
    println!("== Fig. 6: KS vs number of samples (UC1, PearsonRnd+kNN, Intel) ==");
    let enc = intel_enc();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for &s in &pv_bench::UC1_SAMPLE_COUNTS {
        let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, s);
        let summary = evaluate_few_runs_encoded(enc, cfg).expect("eval");
        println!(
            "{}",
            violin_row(&format!("{s} samples"), &summary.ks_values(), 44).expect("violin")
        );
        labels.push(format!("{s}"));
        let mut row = vec![summary.mean, summary.spread.median];
        row.extend(summary.ks_values());
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["samples", "mean", "median"];
    let bench_names: Vec<String> = intel()
        .benchmarks
        .iter()
        .map(|b| b.id.qualified())
        .collect();
    let name_refs: Vec<&str> = bench_names.iter().map(|s| s.as_str()).collect();
    header.extend(name_refs);
    write_csv(&out_dir().join("fig6.csv"), &header, &rows, Some(&labels)).expect("csv");
    println!();
}

/// Fig. 7: KS violins per (representation × model) for use case 2,
/// AMD → Intel.
fn fig7() {
    println!("== Fig. 7: use case 2, representation × model (AMD → Intel) ==");
    let summaries = grid_uc2(amd_enc(), intel_enc());
    render_grid(&summaries, "fig7");
    headline_uc(&summaries);
}

/// Fig. 8: prediction direction comparison (AMD→Intel vs Intel→AMD).
fn fig8() {
    println!("== Fig. 8: direction of prediction (PearsonRnd + kNN) ==");
    let cfg = uc2_config(ReprKind::PearsonRnd, ModelKind::Knn);
    let a2i = evaluate_cross_system_encoded(amd_enc(), intel_enc(), cfg).expect("eval");
    let i2a = evaluate_cross_system_encoded(intel_enc(), amd_enc(), cfg).expect("eval");
    println!(
        "{}",
        violin_row("AMD -> Intel", &a2i.ks_values(), 44).expect("violin")
    );
    println!(
        "{}",
        violin_row("Intel -> AMD", &i2a.ks_values(), 44).expect("violin")
    );
    let rows = vec![
        {
            let mut r = vec![a2i.mean];
            r.extend(a2i.ks_values());
            r
        },
        {
            let mut r = vec![i2a.mean];
            r.extend(i2a.ks_values());
            r
        },
    ];
    write_csv(
        &out_dir().join("fig8.csv"),
        &["direction", "mean_ks", "per_benchmark_ks"],
        &rows,
        Some(&["amd_to_intel".into(), "intel_to_amd".into()]),
    )
    .expect("csv");
    println!(
        "  direction gap: AMD→Intel mean {:.3} vs Intel→AMD mean {:.3}\n",
        a2i.mean, i2a.mean
    );
}

/// Fig. 9: overlays for use case 2 (AMD → Intel).
fn fig9() {
    println!("== Fig. 9: prediction overlays across the KS spectrum (UC2, AMD → Intel) ==");
    let amd = amd();
    let intel = intel();
    let cfg = uc2_config(ReprKind::PearsonRnd, ModelKind::Knn);
    let summary = evaluate_cross_system_encoded(amd_enc(), intel_enc(), cfg).expect("eval");
    let mut order: Vec<usize> = (0..summary.scores.len()).collect();
    order.sort_by(|&a, &b| {
        summary.scores[a]
            .ks
            .partial_cmp(&summary.scores[b].ks)
            .expect("finite")
    });
    let picks: Vec<usize> = (0..8).map(|i| order[i * (order.len() - 1) / 7]).collect();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for &bi in &picks {
        let include: Vec<usize> = (0..amd.len()).filter(|&i| i != bi).collect();
        let p = CrossSystemPredictor::train_encoded(amd_enc(), intel_enc(), &include, cfg)
            .expect("train");
        let predicted = p
            .predict_distribution(&amd.benchmarks[bi], 1000, bi as u64)
            .expect("predict");
        let truth = intel.benchmarks[bi].runs.rel_times();
        let (lo, hi) = axis_pair(&truth, &predicted);
        println!(
            "  {} (KS = {:.3})",
            intel.benchmarks[bi].id.qualified(),
            summary.scores[bi].ks
        );
        print!(
            "{}",
            overlay(&truth, &predicted, lo, hi, 64).expect("overlay")
        );
        for (tag, xs) in [("actual", &truth), ("predicted", &predicted)] {
            labels.push(format!("{}:{tag}", intel.benchmarks[bi].id.qualified()));
            let mut row = vec![summary.scores[bi].ks, lo, hi];
            row.extend(kde_curve(xs, lo, hi, 64).expect("kde"));
            rows.push(row);
        }
    }
    write_csv(
        &out_dir().join("fig9.csv"),
        &["series", "ks", "axis_lo", "axis_hi", "density_curve"],
        &rows,
        Some(&labels),
    )
    .expect("csv");
    println!();
}

/// Ablations of the paper's inline design claims: distance metric, k,
/// histogram bin count, and per-representation reconstruction floors.
fn ablations() {
    use pv_core::ablation::{evaluate_knn_variant_encoded, histogram_floor, reconstruction_floor};
    use pv_ml::Distance;

    let intel = intel();
    let enc = intel_enc();
    println!("== Ablation: kNN distance metric (PearsonRnd, k=15, 10 runs) ==");
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for dist in [
        Distance::Cosine,
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Chebyshev,
    ] {
        let s = evaluate_knn_variant_encoded(enc, dist, 15, 10, CAMPAIGN_SEED).expect("eval");
        println!(
            "  {dist:<12?} mean KS {:.3}  median {:.3}",
            s.mean, s.spread.median
        );
        labels.push(format!("{dist:?}"));
        rows.push(vec![s.mean, s.spread.median]);
    }
    write_csv(
        &out_dir().join("ablation_distance.csv"),
        &["distance", "mean_ks", "median_ks"],
        &rows,
        Some(&labels),
    )
    .expect("csv");

    println!("\n== Ablation: k (PearsonRnd, cosine, 10 runs) ==");
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for k in [1usize, 3, 5, 10, 15, 25, 40, 59] {
        let s = evaluate_knn_variant_encoded(enc, Distance::Cosine, k, 10, CAMPAIGN_SEED)
            .expect("eval");
        println!("  k = {k:<3} mean KS {:.3}", s.mean);
        labels.push(format!("{k}"));
        rows.push(vec![s.mean, s.spread.median]);
    }
    write_csv(
        &out_dir().join("ablation_k.csv"),
        &["k", "mean_ks", "median_ks"],
        &rows,
        Some(&labels),
    )
    .expect("csv");

    println!("\n== Ablation: reconstruction floors (oracle encodings, no model) ==");
    for repr in ReprKind::ALL {
        let built = repr.build();
        let s = reconstruction_floor(intel, built.as_ref(), CAMPAIGN_SEED).expect("eval");
        println!("  {:<12} floor mean KS {:.3}", repr.name(), s.mean);
    }

    println!("\n== Ablation: histogram bin count (oracle floor) ==");
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for bins in [5usize, 10, 15, 20, 40, 80] {
        let s = histogram_floor(intel, bins, CAMPAIGN_SEED).expect("eval");
        println!("  {bins:>3} bins: floor mean KS {:.3}", s.mean);
        labels.push(format!("{bins}"));
        rows.push(vec![s.mean]);
    }
    write_csv(
        &out_dir().join("ablation_bins.csv"),
        &["bins", "floor_mean_ks"],
        &rows,
        Some(&labels),
    )
    .expect("csv");
    println!();
}

/// Baselines: what does learning buy over (a) just using the s measured
/// runs, (b) predicting the population distribution?
fn baselines() {
    use pv_core::baseline::{empirical_baseline_encoded, population_baseline_encoded};
    let enc = intel_enc();
    println!("== Baselines vs the learned predictor (UC1, PearsonRnd + kNN) ==");
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for s in [2usize, 5, 10, 25, 100] {
        let raw = empirical_baseline_encoded(enc, s).expect("baseline");
        let cfg = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, s);
        let learned = evaluate_few_runs_encoded(enc, cfg).expect("eval");
        println!(
            "  s = {s:<4} raw-empirical {:.3}   learned {:.3}   gain {:+.3}",
            raw.mean,
            learned.mean,
            raw.mean - learned.mean
        );
        labels.push(format!("{s}"));
        rows.push(vec![raw.mean, learned.mean]);
    }
    let pop = population_baseline_encoded(enc, 5000).expect("baseline");
    println!("  population-pool baseline: {:.3}", pop.mean);
    write_csv(
        &out_dir().join("baselines.csv"),
        &["samples", "empirical_mean_ks", "learned_mean_ks"],
        &rows,
        Some(&labels),
    )
    .expect("csv");
    println!();
}

// ---------------------------------------------------------------------
// observability output (shared by `repro all` and `repro sweep`)

// `--trace-out` / `--metrics-out` / `--obs-summary` are valid on any
// subcommand, extracted before dispatch so exhibit selection and the
// sweep parser never see them. The obs flag handling lives in `pv_bench::obs_cli` so `repro` and
// `pv-serve` share one implementation.

const OBS_CHECK_HELP: &str = "\
repro obs-check — validate observability artifacts (CI gate)

USAGE:
    repro -- obs-check TRACE.jsonl METRICS.json [--require COUNTER]...
                       [--access-log FILE] [--telemetry FILE]

Parses the JSONL trace line by line and the metrics snapshot, checks the
span tree is well-formed (every exit carries a duration and a matching
enter), and asserts every --require'd counter is present with a value
greater than zero.

--access-log cross-checks a pv-serve access log: every line must be
parseable with total_ns == queue_ns + predict_ns + write_ns, and the
per-outcome tally must equal the pv.serve.request.* counters in the
metrics snapshot. --telemetry cross-checks a flushed stats document:
its exact totals must also equal those counters. Exits 1 on the first
violation.";

/// The `obs-check` subcommand: parse the two artifact files and assert
/// required counters are non-zero.
fn obs_check_cmd(args: &[String]) {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut required: Vec<String> = Vec::new();
    let mut access_log: Option<PathBuf> = None;
    let mut telemetry: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{OBS_CHECK_HELP}");
                std::process::exit(0);
            }
            "--require" => {
                i += 1;
                match args.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => {
                        eprintln!("obs-check: --require needs a counter name\n\n{OBS_CHECK_HELP}");
                        std::process::exit(2);
                    }
                }
            }
            "--access-log" => {
                i += 1;
                match args.get(i) {
                    Some(path) => access_log = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("obs-check: --access-log needs a path\n\n{OBS_CHECK_HELP}");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => {
                i += 1;
                match args.get(i) {
                    Some(path) => telemetry = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("obs-check: --telemetry needs a path\n\n{OBS_CHECK_HELP}");
                        std::process::exit(2);
                    }
                }
            }
            other => paths.push(PathBuf::from(other)),
        }
        i += 1;
    }
    let [trace_path, metrics_path] = paths.as_slice() else {
        eprintln!("obs-check: expected exactly TRACE.jsonl METRICS.json\n\n{OBS_CHECK_HELP}");
        std::process::exit(2);
    };

    let events = pv_obs::read_trace(trace_path).unwrap_or_else(|e| {
        eprintln!("obs-check: trace: {e}");
        std::process::exit(1);
    });
    let mut enters = 0usize;
    let mut exits = 0usize;
    for ev in &events {
        match ev.kind.as_str() {
            "enter" => enters += 1,
            "exit" => {
                exits += 1;
                if ev.dur_ns.is_none() {
                    eprintln!(
                        "obs-check: exit event {} ({}) has no duration",
                        ev.id, ev.name
                    );
                    std::process::exit(1);
                }
            }
            other => {
                eprintln!("obs-check: unknown event kind {other:?}");
                std::process::exit(1);
            }
        }
    }
    if enters != exits {
        eprintln!("obs-check: unbalanced span tree: {enters} enters, {exits} exits");
        std::process::exit(1);
    }
    println!(
        "obs-check: trace ok — {} events ({enters} spans) in {}",
        events.len(),
        trace_path.display()
    );

    let metrics = pv_obs::read_metrics(metrics_path).unwrap_or_else(|e| {
        eprintln!("obs-check: metrics: {e}");
        std::process::exit(1);
    });
    println!(
        "obs-check: metrics ok — {} counters, {} gauges, {} histograms in {}",
        metrics.counters.len(),
        metrics.gauges.len(),
        metrics.histograms.len(),
        metrics_path.display()
    );
    for name in &required {
        match metrics.counter(name) {
            Some(v) if v > 0 => println!("obs-check: {name} = {v}"),
            Some(_) => {
                eprintln!("obs-check: required counter {name} is zero");
                std::process::exit(1);
            }
            None => {
                eprintln!("obs-check: required counter {name} is missing");
                std::process::exit(1);
            }
        }
    }

    // The three planes a serving run records — pv.serve.* counters,
    // the per-request access log, and the flushed stats document —
    // count the same requests on the same code paths, so any pair that
    // is present must agree exactly.
    let tally = access_log.as_deref().map(|path| {
        let tally = check_access_log(path);
        reconcile("access log", &tally, &metrics);
        tally
    });
    if let Some(path) = telemetry.as_deref() {
        let totals = read_telemetry_totals(path);
        reconcile("telemetry totals", &totals, &metrics);
        if let Some(tally) = &tally {
            for (name, n) in &totals {
                let logged = tally.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v);
                if logged != *n {
                    eprintln!(
                        "obs-check: telemetry says {name} = {n} but the access log holds {logged}"
                    );
                    std::process::exit(1);
                }
            }
            println!("obs-check: telemetry totals match the access log");
        }
    }
}

/// Parses a pv-serve JSONL access log: every line must decode with
/// consistent latency arithmetic. Returns the per-counter tally, keyed
/// by the `pv.serve.*` counter each outcome increments.
fn check_access_log(path: &std::path::Path) -> Vec<(String, u64)> {
    use serde::Content;
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs-check: access log {}: {e}", path.display());
        std::process::exit(1);
    });
    let outcome_counter = |key: &str| -> Option<&'static str> {
        pv_bench::serve::Outcome::ALL
            .iter()
            .find(|o| o.key() == key)
            .map(|o| o.counter())
    };
    let mut tally: Vec<(String, u64)> = vec![("pv.serve.request".to_string(), 0)];
    for (lineno, line) in body.lines().enumerate() {
        let fields = parse_json_object(line).unwrap_or_else(|| {
            eprintln!(
                "obs-check: access log line {} is not a JSON object: {line}",
                lineno + 1
            );
            std::process::exit(1);
        });
        let num = |key: &str| -> u64 {
            match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(Content::U64(v)) => *v,
                Some(Content::I64(v)) if *v >= 0 => *v as u64,
                _ => {
                    eprintln!(
                        "obs-check: access log line {} lacks numeric {key:?}",
                        lineno + 1
                    );
                    std::process::exit(1);
                }
            }
        };
        let outcome = match fields.iter().find(|(k, _)| k == "outcome").map(|(_, v)| v) {
            Some(Content::Str(s)) => s.clone(),
            _ => {
                eprintln!("obs-check: access log line {} lacks an outcome", lineno + 1);
                std::process::exit(1);
            }
        };
        let (queue, predict, write, total) = (
            num("queue_ns"),
            num("predict_ns"),
            num("write_ns"),
            num("total_ns"),
        );
        if queue + predict + write != total {
            eprintln!(
                "obs-check: access log line {}: total_ns {total} != queue {queue} + \
                 predict {predict} + write {write}",
                lineno + 1
            );
            std::process::exit(1);
        }
        let Some(counter) = outcome_counter(&outcome) else {
            eprintln!(
                "obs-check: access log line {}: unknown outcome {outcome:?}",
                lineno + 1
            );
            std::process::exit(1);
        };
        tally[0].1 += 1;
        match tally.iter_mut().find(|(k, _)| k == counter) {
            Some((_, n)) => *n += 1,
            None => tally.push((counter.to_string(), 1)),
        }
    }
    println!(
        "obs-check: access log ok — {} request(s) in {}, latency arithmetic consistent",
        tally[0].1,
        path.display()
    );
    tally
}

/// Reads the `totals` block of a flushed stats document, keyed by the
/// `pv.serve.*` counter each total mirrors.
fn read_telemetry_totals(path: &std::path::Path) -> Vec<(String, u64)> {
    use serde::Content;
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs-check: telemetry {}: {e}", path.display());
        std::process::exit(1);
    });
    let doc = parse_json_object(body.trim()).unwrap_or_else(|| {
        eprintln!(
            "obs-check: telemetry {} is not a JSON object",
            path.display()
        );
        std::process::exit(1);
    });
    let Some(Content::Map(totals)) = doc.iter().find(|(k, _)| k == "totals").map(|(_, v)| v) else {
        eprintln!(
            "obs-check: telemetry {} lacks a totals block",
            path.display()
        );
        std::process::exit(1);
    };
    let mut out = Vec::new();
    for (key, value) in totals {
        let n = match value {
            Content::U64(v) => *v,
            Content::I64(v) if *v >= 0 => *v as u64,
            _ => continue,
        };
        let counter = if key == "requests" {
            "pv.serve.request".to_string()
        } else {
            match pv_bench::serve::Outcome::ALL
                .iter()
                .find(|o| o.key() == key)
            {
                Some(o) => o.counter().to_string(),
                None => continue,
            }
        };
        out.push((counter, n));
    }
    println!(
        "obs-check: telemetry ok — {} total(s) in {}",
        out.len(),
        path.display()
    );
    out
}

/// Asserts the tally and the metrics snapshot agree exactly on the
/// request-partition counters — in both directions, so a response
/// counted but never tallied (or vice versa) fails too. `source` names
/// the artifact in errors.
fn reconcile(source: &str, tally: &[(String, u64)], metrics: &pv_obs::MetricsSnapshot) {
    for (name, n) in tally {
        let counted = metrics.counter(name).unwrap_or(0);
        if counted != *n {
            eprintln!(
                "obs-check: {source} holds {n} × {name} but the metrics snapshot says {counted}"
            );
            std::process::exit(1);
        }
    }
    for c in &metrics.counters {
        if !(c.name.starts_with("pv.serve.request") || c.name == "pv.serve.shutdown") {
            continue;
        }
        let tallied = tally
            .iter()
            .find(|(k, _)| *k == c.name)
            .map_or(0, |(_, v)| *v);
        if tallied != c.value {
            eprintln!(
                "obs-check: metrics snapshot says {} = {} but {source} holds {tallied}",
                c.name, c.value
            );
            std::process::exit(1);
        }
    }
    println!("obs-check: {source} reconciles with the metrics snapshot");
}

/// Decodes one JSON object into its key/value fields via the lenient
/// Content tree (the same bridge the serve protocol uses).
fn parse_json_object(text: &str) -> Option<Vec<(String, serde::Content)>> {
    let pv_bench::serve::Json(content) = serde_json::from_str(text).ok()?;
    match content {
        serde::Content::Map(map) => Some(map),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// the train / load-gen subcommands (model registry + pv-serve)

const TRAIN_HELP: &str = "\
repro train — fit predictors and seal them into a model registry

USAGE:
    repro -- train --registry DIR [OPTIONS]

OPTIONS:
    --registry DIR    registry directory (required)
    --uc N            use case: 1 (few-runs, default) or 2 (cross-system)
    --reverse         use case 2 direction Intel->AMD (default AMD->Intel)
    --reprs LIST      comma list of pearsonrnd,pymaxent,histogram (default pearsonrnd)
    --models LIST     comma list of knn,randomforest,xgboost (default knn)
    --samples LIST    use-case-1 profile-run counts (default 10)
    --runs N          runs per benchmark in the training corpus (default 1000)
    --from-sweep DIR  also seal a model for every completed, non-degraded
                      cell a sweep cache holds for the same corpus
    --force           re-fit even when a verified entry already exists

A verified existing entry is reused (printed as 'verified'); a missing,
stale, or corrupt entry is healed by re-fitting (printed as 'trained').
Also accepts --trace-out/--metrics-out/--obs-summary.";

fn train_usage_error(msg: &str) -> ! {
    eprintln!("train: {msg}\n\n{TRAIN_HELP}");
    std::process::exit(2);
}

struct TrainArgs {
    registry: PathBuf,
    uc: usize,
    reverse: bool,
    reprs: Vec<ReprKind>,
    models: Vec<ModelKind>,
    samples: Vec<usize>,
    runs: usize,
    from_sweep: Option<PathBuf>,
    force: bool,
}

fn parse_train_args(args: &[String]) -> TrainArgs {
    let mut parsed = TrainArgs {
        registry: PathBuf::new(),
        uc: 1,
        reverse: false,
        reprs: vec![ReprKind::PearsonRnd],
        models: vec![ModelKind::Knn],
        samples: vec![10],
        runs: pv_bench::CAMPAIGN_RUNS,
        from_sweep: None,
        force: false,
    };
    let mut registry = None;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| train_usage_error(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{TRAIN_HELP}");
                std::process::exit(0);
            }
            "--registry" => registry = Some(PathBuf::from(value(&mut i, "--registry"))),
            "--uc" => {
                parsed.uc = value(&mut i, "--uc")
                    .parse()
                    .unwrap_or_else(|_| train_usage_error("--uc must be 1 or 2"));
                if !(1..=2).contains(&parsed.uc) {
                    train_usage_error("--uc must be 1 or 2");
                }
            }
            "--reverse" => parsed.reverse = true,
            "--reprs" => {
                parsed.reprs = value(&mut i, "--reprs")
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .unwrap_or_else(|e| train_usage_error(&format!("{e}")))
                    })
                    .collect();
            }
            "--models" => {
                parsed.models = value(&mut i, "--models")
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .unwrap_or_else(|e| train_usage_error(&format!("{e}")))
                    })
                    .collect();
            }
            "--samples" => {
                parsed.samples = value(&mut i, "--samples")
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .unwrap_or_else(|_| train_usage_error("--samples wants integers"))
                    })
                    .collect();
            }
            "--runs" => {
                parsed.runs = value(&mut i, "--runs")
                    .parse()
                    .unwrap_or_else(|_| train_usage_error("--runs wants an integer"));
            }
            "--from-sweep" => {
                parsed.from_sweep = Some(PathBuf::from(value(&mut i, "--from-sweep")))
            }
            "--force" => parsed.force = true,
            other => train_usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    parsed.registry = registry.unwrap_or_else(|| train_usage_error("--registry DIR is required"));
    parsed
}

/// The `train` subcommand: explicit model fitting into the registry,
/// with verified-entry reuse, corruption healing, and sweep scavenging.
fn train_cmd(args: &[String], obs: &ObsFlags) {
    use pv_core::registry::{artifact_key, ModelRegistry, REGISTRY_OBS_COUNTERS};
    use pv_core::sweep::{cross_fingerprint, CellConfig};

    let p = parse_train_args(args);
    let collector = obs.install();
    pv_obs::metrics::preregister_counters(REGISTRY_OBS_COUNTERS);
    let registry = ModelRegistry::new(&p.registry);
    let fail = |what: &str, e: PvError| -> ! {
        eprintln!("train: {what}: [{}] {e}", e.kind());
        std::process::exit(1);
    };

    let collect = |sys: pv_sysmodel::SystemModel| Corpus::collect(&sys, p.runs, CAMPAIGN_SEED);
    let started = Instant::now();
    // The pair is collected for both use cases so --from-sweep can seal
    // whatever cell kinds the cache holds; uc 1 only touches `primary`.
    let (primary, secondary) = if p.reverse {
        (
            collect(pv_sysmodel::SystemModel::intel()),
            collect(pv_sysmodel::SystemModel::amd()),
        )
    } else {
        (
            collect(pv_sysmodel::SystemModel::amd()),
            collect(pv_sysmodel::SystemModel::intel()),
        )
    };
    let uc1_corpus = if p.reverse { &primary } else { &secondary };
    let uc1_fp = pv_core::corpus_fingerprint(uc1_corpus);
    let cross_fp = cross_fingerprint(
        pv_core::corpus_fingerprint(&primary),
        pv_core::corpus_fingerprint(&secondary),
    );
    println!(
        "registry: {} ({} entries before)",
        p.registry.display(),
        registry.keys().len()
    );

    let mut cells: Vec<CellConfig> = Vec::new();
    for &repr in &p.reprs {
        for &model in &p.models {
            match p.uc {
                1 => {
                    for &s in &p.samples {
                        let mut cfg = uc1_config(repr, model, s);
                        cfg.profiles_per_benchmark =
                            cfg.profiles_per_benchmark.min(p.runs / s.max(1)).max(1);
                        cells.push(CellConfig::FewRuns(cfg));
                    }
                }
                _ => cells.push(CellConfig::CrossSystem(uc2_config(repr, model))),
            }
        }
    }
    if let Some(dir) = &p.from_sweep {
        let cache = CellCache::new(dir);
        let scavenged: Vec<CellConfig> = cache
            .configs(uc1_fp)
            .into_iter()
            .chain(cache.configs(cross_fp))
            .collect();
        println!(
            "from-sweep: {} completed cell(s) scavenged from {}",
            scavenged.len(),
            dir.display()
        );
        cells.extend(scavenged);
    }
    cells.sort_by_key(|c| format!("{c:?}"));
    cells.dedup();

    for cell in &cells {
        let fp = match cell {
            CellConfig::FewRuns(_) => uc1_fp,
            CellConfig::CrossSystem(_) => cross_fp,
        };
        if p.force {
            if let Ok(path) = registry.entry_path(fp, cell) {
                let _ = std::fs::remove_file(path);
            }
        }
        let (key, trained) = match *cell {
            CellConfig::FewRuns(cfg) => {
                let (_, trained) = registry
                    .ensure_few_runs(uc1_corpus, cfg)
                    .unwrap_or_else(|e| fail(&cell.label(), e));
                (artifact_key(fp, cell).expect("key"), trained)
            }
            CellConfig::CrossSystem(cfg) => {
                let (_, trained) = registry
                    .ensure_cross_system(&primary, &secondary, cfg)
                    .unwrap_or_else(|e| fail(&cell.label(), e));
                (artifact_key(fp, cell).expect("key"), trained)
            }
        };
        println!(
            "  {}  model-{key:016x}  {}",
            if trained { "trained " } else { "verified" },
            cell.label()
        );
    }
    println!(
        "train: {} model(s) ready in {:.1?} ({} entries now)",
        cells.len(),
        started.elapsed(),
        registry.keys().len()
    );
    obs.finalize(collector, REGISTRY_OBS_COUNTERS);
}

const LOAD_GEN_HELP: &str = "\
repro load-gen — fire concurrent predictions at a running pv-serve

USAGE:
    repro -- load-gen --socket PATH [OPTIONS]

OPTIONS:
    --socket PATH     unix socket of a running pv-serve (required)
    --requests N      total requests to send (default 2000)
    --concurrency C   concurrent client connections (default 8)
    --expect-shed     treat overloaded/timeout/draining responses as
                      retryable backpressure (jittered exponential
                      backoff) instead of failures
    --retries N       retry budget per request under --expect-shed
                      (default 4; an exhausted budget is a failure)
    --repr R          model cell representation (default pearsonrnd)
    --model M         model cell regressor (default knn)
    --samples S       use-case-1 profile-run count (default 10)
    --runs N          runs per benchmark of the training corpus (default 1000)
    --uc N            use case: 1 (default) or 2
    --reverse         use case 2 direction Intel->AMD
    --n-samples N     reconstruction samples per request (default 1000)

Re-collects the training corpus (same seed) to derive the registry key
and build one profile per benchmark, then cycles benchmarks across the
connections. Prints the sustained rate plus shed/retry stats; exits 1 on
any failed response (the success line always ends in \"0 failed\").";

fn load_gen_usage_error(msg: &str) -> ! {
    eprintln!("load-gen: {msg}\n\n{LOAD_GEN_HELP}");
    std::process::exit(2);
}

/// The `load-gen` subcommand: a protocol client that doubles as the CI
/// smoke load for the serving path.
fn load_gen_cmd(args: &[String]) {
    use pv_core::registry::artifact_key;
    use pv_core::sweep::{cross_fingerprint, CellConfig};
    use pv_core::Profile;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let mut socket: Option<PathBuf> = None;
    let mut requests = 2000usize;
    let mut concurrency = 8usize;
    let mut expect_shed = false;
    let mut retries = 4u32;
    let mut repr = ReprKind::PearsonRnd;
    let mut model = ModelKind::Knn;
    let mut samples = 10usize;
    let mut runs = pv_bench::CAMPAIGN_RUNS;
    let mut uc = 1usize;
    let mut reverse = false;
    let mut n_samples = 1000usize;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| load_gen_usage_error(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{LOAD_GEN_HELP}");
                std::process::exit(0);
            }
            "--socket" => socket = Some(PathBuf::from(value(&mut i, "--socket"))),
            "--requests" => {
                requests = value(&mut i, "--requests")
                    .parse()
                    .unwrap_or_else(|_| load_gen_usage_error("--requests wants an integer"));
            }
            "--concurrency" => {
                concurrency = value(&mut i, "--concurrency")
                    .parse::<usize>()
                    .unwrap_or_else(|_| load_gen_usage_error("--concurrency wants an integer"))
                    .max(1);
            }
            "--expect-shed" => expect_shed = true,
            "--retries" => {
                retries = value(&mut i, "--retries")
                    .parse()
                    .unwrap_or_else(|_| load_gen_usage_error("--retries wants an integer"));
            }
            "--repr" => {
                repr = value(&mut i, "--repr")
                    .parse()
                    .unwrap_or_else(|e| load_gen_usage_error(&format!("{e}")));
            }
            "--model" => {
                model = value(&mut i, "--model")
                    .parse()
                    .unwrap_or_else(|e| load_gen_usage_error(&format!("{e}")));
            }
            "--samples" => {
                samples = value(&mut i, "--samples")
                    .parse()
                    .unwrap_or_else(|_| load_gen_usage_error("--samples wants an integer"));
            }
            "--runs" => {
                runs = value(&mut i, "--runs")
                    .parse()
                    .unwrap_or_else(|_| load_gen_usage_error("--runs wants an integer"));
            }
            "--uc" => {
                uc = value(&mut i, "--uc")
                    .parse()
                    .unwrap_or_else(|_| load_gen_usage_error("--uc must be 1 or 2"));
            }
            "--reverse" => reverse = true,
            "--n-samples" => {
                n_samples = value(&mut i, "--n-samples")
                    .parse()
                    .unwrap_or_else(|_| load_gen_usage_error("--n-samples wants an integer"));
            }
            other => load_gen_usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let socket = socket.unwrap_or_else(|| load_gen_usage_error("--socket PATH is required"));

    // Derive the registry key exactly as `repro train` sealed it.
    let collect = |sys: pv_sysmodel::SystemModel| Corpus::collect(&sys, runs, CAMPAIGN_SEED);
    let (src, key) = if uc == 1 {
        let corpus = if reverse {
            collect(pv_sysmodel::SystemModel::amd())
        } else {
            collect(pv_sysmodel::SystemModel::intel())
        };
        let mut cfg = uc1_config(repr, model, samples);
        cfg.profiles_per_benchmark = cfg.profiles_per_benchmark.min(runs / samples.max(1)).max(1);
        let fp = pv_core::corpus_fingerprint(&corpus);
        let key = artifact_key(fp, &CellConfig::FewRuns(cfg)).expect("key");
        (corpus, key)
    } else {
        let (src, dst) = if reverse {
            (
                collect(pv_sysmodel::SystemModel::intel()),
                collect(pv_sysmodel::SystemModel::amd()),
            )
        } else {
            (
                collect(pv_sysmodel::SystemModel::amd()),
                collect(pv_sysmodel::SystemModel::intel()),
            )
        };
        let fp = cross_fingerprint(
            pv_core::corpus_fingerprint(&src),
            pv_core::corpus_fingerprint(&dst),
        );
        let key = artifact_key(fp, &CellConfig::CrossSystem(uc2_config(repr, model))).expect("key");
        (src, key)
    };

    // One request line per benchmark, cycled.
    let profile_runs = if uc == 1 {
        samples
    } else {
        pv_bench::UC2_PROFILE_RUNS.min(runs).max(1)
    };
    let lines: Vec<String> = src
        .benchmarks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let s = profile_runs.min(b.runs.len()).max(1);
            let profile = Profile::from_runs(&b.runs, s).expect("profile");
            let profile_json = serde_json::to_string(&profile).expect("profile json");
            let rel = if uc == 2 {
                let rel_json = serde_json::to_string(&b.runs.rel_times()).expect("rel json");
                format!(", \"rel_times\": {rel_json}")
            } else {
                String::new()
            };
            format!(
                "{{\"id\": {bi}, \"model\": \"{key:016x}\", \"profile\": {profile_json}{rel}, \
                 \"n_samples\": {n_samples}, \"sample_seed\": {bi}}}"
            )
        })
        .collect();

    println!(
        "load-gen: {requests} requests over {concurrency} connection(s) -> {} (model {key:016x}){}",
        socket.display(),
        if expect_shed {
            format!(" [expect-shed, {retries} retries]")
        } else {
            String::new()
        }
    );
    let started = Instant::now();
    let failed = AtomicUsize::new(0);
    let sent = AtomicUsize::new(0);
    let ok_count = AtomicUsize::new(0);
    let shed_seen = AtomicUsize::new(0);
    let retried = AtomicUsize::new(0);
    // Client-side latency per response: burst flush to reply read
    // (pipelined, so later replies in a burst include queueing behind
    // earlier ones — the latency a pipelined client actually sees).
    let latencies: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
    let first_failure: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    // A response whose error kind marks backpressure, not breakage:
    // shed at admission, past its deadline, or refused during drain.
    let shed_class = |resp: &str| {
        ["\"overloaded\"", "\"timeout\"", "\"draining\""]
            .iter()
            .any(|kind| resp.contains(kind))
    };
    std::thread::scope(|scope| {
        for c in 0..concurrency {
            let lines = &lines;
            let failed = &failed;
            let sent = &sent;
            let ok_count = &ok_count;
            let shed_seen = &shed_seen;
            let retried = &retried;
            let first_failure = &first_failure;
            let socket = &socket;
            let shed_class = &shed_class;
            let latencies = &latencies;
            let share = requests / concurrency + usize::from(c < requests % concurrency);
            scope.spawn(move || {
                let record_failure = |resp: &str| {
                    failed.fetch_add(1, Ordering::Relaxed);
                    let mut slot = first_failure.lock().expect("lock");
                    slot.get_or_insert_with(|| resp.trim().to_string());
                };
                let Ok(stream) = UnixStream::connect(socket) else {
                    failed.fetch_add(share, Ordering::Relaxed);
                    let mut slot = first_failure.lock().expect("lock");
                    slot.get_or_insert_with(|| format!("cannot connect to {}", socket.display()));
                    return;
                };
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut writer = stream;
                let mut backoff_rng = Xoshiro256pp::from_seed_stream(load_gen_seed(), c as u64);
                // Each pending entry is (line index, attempts so far);
                // shed-class responses under --expect-shed re-queue
                // their request instead of failing it.
                let mut pending: std::collections::VecDeque<(usize, u32)> = (0..share)
                    .map(|j| ((c + j * concurrency) % lines.len(), 0))
                    .collect();
                while !pending.is_empty() {
                    // Pipeline in bursts so the daemon sees concurrent
                    // queued work worth batching. Responses come back
                    // in request order, so the k-th reply of the burst
                    // belongs to the k-th request sent.
                    let burst: Vec<(usize, u32)> = {
                        let n = pending.len().min(64);
                        pending.drain(..n).collect()
                    };
                    for (idx, _) in &burst {
                        if writer.write_all(lines[*idx].as_bytes()).is_err()
                            || writer.write_all(b"\n").is_err()
                        {
                            failed.fetch_add(burst.len() + pending.len(), Ordering::Relaxed);
                            return;
                        }
                    }
                    if writer.flush().is_err() {
                        failed.fetch_add(burst.len() + pending.len(), Ordering::Relaxed);
                        return;
                    }
                    let burst_start = Instant::now();
                    let mut max_requeued_attempt = None::<u32>;
                    for (idx, attempts) in &burst {
                        let mut resp = String::new();
                        match reader.read_line(&mut resp) {
                            Ok(n) if n > 0 => {
                                sent.fetch_add(1, Ordering::Relaxed);
                                latencies
                                    .lock()
                                    .expect("lock")
                                    .push(burst_start.elapsed().as_nanos() as u64);
                                if resp.contains("\"ok\":true") {
                                    ok_count.fetch_add(1, Ordering::Relaxed);
                                } else if shed_class(&resp) {
                                    shed_seen.fetch_add(1, Ordering::Relaxed);
                                    if expect_shed && *attempts < retries {
                                        retried.fetch_add(1, Ordering::Relaxed);
                                        pending.push_back((*idx, attempts + 1));
                                        let a = attempts + 1;
                                        max_requeued_attempt =
                                            Some(max_requeued_attempt.map_or(a, |m: u32| m.max(a)));
                                    } else {
                                        record_failure(&resp);
                                    }
                                } else {
                                    record_failure(&resp);
                                }
                            }
                            _ => {
                                failed.fetch_add(
                                    1 + burst.len().saturating_sub(1) + pending.len(),
                                    Ordering::Relaxed,
                                );
                                let mut slot = first_failure.lock().expect("lock");
                                slot.get_or_insert_with(|| "connection closed mid-burst".into());
                                return;
                            }
                        }
                    }
                    // Back off before retrying shed work: exponential
                    // in the deepest attempt, jittered so the
                    // connections don't re-flood in lockstep.
                    if let Some(attempt) = max_requeued_attempt {
                        let base_ms = 5u64 << attempt.min(6);
                        let jitter = (backoff_rng.next_f64() * base_ms as f64) as u64;
                        std::thread::sleep(Duration::from_millis(base_ms + jitter));
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let answered = sent.load(Ordering::Relaxed);
    let oks = ok_count.load(Ordering::Relaxed);
    let sheds = shed_seen.load(Ordering::Relaxed);
    let retry_count = retried.load(Ordering::Relaxed);
    let failures = failed.load(Ordering::Relaxed);
    let rate = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "load-gen: {answered} responses in {elapsed:.1?} ({rate:.0} req/s): \
         {oks} ok, {sheds} shed-class, {retry_count} retried, {failures} failed"
    );
    let mut lat = latencies.into_inner().expect("lock");
    if !lat.is_empty() {
        lat.sort_unstable();
        let q = |p: f64| {
            let idx = ((lat.len() - 1) as f64 * p).round() as usize;
            pv_obs::humanize_ns(lat[idx] as f64)
        };
        println!(
            "load-gen: latency min/p50/p95/p99/max = {}/{}/{}/{}/{} (client-side, pipelined)",
            q(0.0),
            q(0.50),
            q(0.95),
            q(0.99),
            q(1.0)
        );
        // Shape of the latency distribution via the chunked two-pass
        // moment kernel (a diagnostic summary, not a pinned encoding —
        // exactly the consumer `Moments::from_slice_chunked` is for).
        let ns: Vec<f64> = lat.iter().map(|&n| n as f64).collect();
        let m = pv_stats::Moments::from_slice_chunked(&ns);
        println!(
            "load-gen: latency mean/std = {}/{}, skew {:.2}, excess kurtosis {:.2}",
            pv_obs::humanize_ns(m.mean()),
            pv_obs::humanize_ns(m.sample_std()),
            m.skewness(),
            m.excess_kurtosis()
        );
    }
    if let Some(first) = first_failure.lock().expect("lock").as_ref() {
        eprintln!("load-gen: first failure: {first}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// The load generator's backoff jitter seed (arbitrary fixed constant).
fn load_gen_seed() -> u64 {
    0x1040_6e4a_11c3_7a2d
}

// ---------------------------------------------------------------------
// the sweep service subcommand

const SWEEP_HELP: &str = "\
repro sweep — run a config grid through the cached sweep service

USAGE:
    repro -- sweep [OPTIONS]

OPTIONS:
    --uc 1|2             use case (default 1: few-runs on Intel;
                         2: cross-system AMD -> Intel)
    --reverse            swap use-case-2 direction (Intel -> AMD)
    --reprs LIST         all | comma list of Histogram,PyMaxEnt,PearsonRnd
    --models LIST        all | comma list of kNN,RandomForest,XGBoost
    --samples LIST       profile sample counts, e.g. 5,10,25 (default 10)
    --seeds LIST         root seeds, decimal or 0x-hex (default campaign seed)
    --runs N             corpus runs per benchmark (default 1000)
    --append N           corpus-growth scenario: sweep the corpus minus its
                         last N benchmarks first, then sweep the full corpus
                         so unchanged folds replay from the fold cache
    --benchmarks N       scale scenario: sweep a synthetic campaign of N
                         benchmarks (Table I roster first, then generated
                         entries) through the sharded data plane, generating
                         and encoding one shard at a time so peak memory is
                         bounded by the resident-shard budget, not N. Unless
                         --reprs/--models are given, the grid defaults to
                         PearsonRnd x kNN
    --shard-size K       benchmarks per shard for the sharded data plane
                         (default 256; implies the sharded path even without
                         --benchmarks). Results are bit-identical to the
                         monolithic path at any K
    --cache DIR          cell cache directory (default target/repro/sweep-cache)
    --no-cache           run without a cell cache
    --keep-going         exit 0 even when cells fail; report them in the
                         failure summary instead
    --max-retries N      retry a failing cell up to N times with a fresh
                         deterministic sub-seed (default 2)
    --inject LIST        deterministic fault injection, comma list of
                         KIND@CELL[:ATTEMPTS] where KIND is one of
                         panic,nonconv,nan,corrupt — e.g. panic@3 or
                         nonconv@0:1 (transient: fails attempt 0 only)
    --progress           periodic progress line on stderr (completed/total,
                         hit rate, failed/degraded, ETA)
    --trace-out FILE     write a JSONL span trace of the run
    --metrics-out FILE   write the metrics snapshot as JSON
    --obs-summary        print the observability summary table at the end
    --help               print this help

A re-run with a widened grid loads finished cells from the cache and
computes only the delta; cached results are bit-identical to fresh ones.
Failing cells never abort the sweep: they are retried, recorded in the
failure summary, and quarantined next to the cache so later runs skip
them (delete quarantine.json to retry). MaxEnt cells whose solver does
not converge fall back to a histogram representation and are marked
degraded.";

/// Parsed `sweep` flags.
struct SweepArgs {
    uc: usize,
    reverse: bool,
    grid: GridSpec,
    runs: usize,
    append: usize,
    benchmarks: Option<usize>,
    shard_size: Option<usize>,
    cache_dir: Option<PathBuf>,
    keep_going: bool,
    max_retries: u32,
    faults: FaultPlan,
    progress: bool,
}

fn sweep_usage_error(msg: &str) -> ! {
    eprintln!("sweep: {msg}\n\n{SWEEP_HELP}");
    std::process::exit(2);
}

fn parse_sweep_args(args: &[String]) -> SweepArgs {
    let mut parsed = SweepArgs {
        uc: 1,
        reverse: false,
        grid: GridSpec {
            seeds: vec![CAMPAIGN_SEED],
            profiles_per_benchmark: pv_bench::PROFILES_PER_BENCHMARK,
            ..GridSpec::default()
        },
        runs: pv_bench::CAMPAIGN_RUNS,
        append: 0,
        benchmarks: None,
        shard_size: None,
        cache_dir: Some(out_dir().join("sweep-cache")),
        keep_going: false,
        max_retries: DEFAULT_MAX_RETRIES,
        faults: FaultPlan::none(),
        progress: false,
    };
    let mut i = 0;
    let mut reprs_given = false;
    let mut models_given = false;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| sweep_usage_error(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{SWEEP_HELP}");
                std::process::exit(0);
            }
            "--uc" => {
                parsed.uc = match value(&mut i, "--uc").as_str() {
                    "1" => 1,
                    "2" => 2,
                    other => sweep_usage_error(&format!("--uc must be 1 or 2, got {other:?}")),
                };
            }
            "--reverse" => parsed.reverse = true,
            "--keep-going" => parsed.keep_going = true,
            "--progress" => parsed.progress = true,
            "--max-retries" => {
                parsed.max_retries = value(&mut i, "--max-retries")
                    .parse()
                    .unwrap_or_else(|e| sweep_usage_error(&format!("--max-retries: {e}")));
            }
            "--inject" => {
                for spec in value(&mut i, "--inject").split(',') {
                    let (cell, kind, attempts) = parse_fault_spec(spec.trim());
                    parsed.faults = parsed.faults.inject_transient(cell, kind, attempts);
                }
            }
            "--no-cache" => parsed.cache_dir = None,
            "--cache" => parsed.cache_dir = Some(PathBuf::from(value(&mut i, "--cache"))),
            "--runs" => {
                parsed.runs = value(&mut i, "--runs")
                    .parse()
                    .unwrap_or_else(|e| sweep_usage_error(&format!("--runs: {e}")));
            }
            "--append" => {
                parsed.append = value(&mut i, "--append")
                    .parse()
                    .unwrap_or_else(|e| sweep_usage_error(&format!("--append: {e}")));
            }
            "--benchmarks" => {
                let n: usize = value(&mut i, "--benchmarks")
                    .parse()
                    .unwrap_or_else(|e| sweep_usage_error(&format!("--benchmarks: {e}")));
                if n == 0 {
                    sweep_usage_error("--benchmarks must be at least 1");
                }
                parsed.benchmarks = Some(n);
            }
            "--shard-size" => {
                let k: usize = value(&mut i, "--shard-size")
                    .parse()
                    .unwrap_or_else(|e| sweep_usage_error(&format!("--shard-size: {e}")));
                if k == 0 {
                    sweep_usage_error("--shard-size must be at least 1");
                }
                parsed.shard_size = Some(k);
            }
            "--samples" => {
                parsed.grid.sample_counts = value(&mut i, "--samples")
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|e| sweep_usage_error(&format!("--samples: {e}")))
                    })
                    .collect();
            }
            "--seeds" => {
                parsed.grid.seeds = value(&mut i, "--seeds")
                    .split(',')
                    .map(|t| parse_seed(t.trim()))
                    .collect();
            }
            "--reprs" => {
                reprs_given = true;
                let v = value(&mut i, "--reprs");
                if !v.eq_ignore_ascii_case("all") {
                    parsed.grid.reprs = v
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .unwrap_or_else(|e| sweep_usage_error(&format!("--reprs: {e}")))
                        })
                        .collect();
                }
            }
            "--models" => {
                models_given = true;
                let v = value(&mut i, "--models");
                if !v.eq_ignore_ascii_case("all") {
                    parsed.grid.models = v
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .unwrap_or_else(|e| sweep_usage_error(&format!("--models: {e}")))
                        })
                        .collect();
                }
            }
            other => sweep_usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    // A scale run over thousands of benchmarks defaults to the cheap
    // PearsonRnd × kNN cell so the grid doesn't multiply the campaign.
    if parsed.benchmarks.is_some() {
        if !reprs_given {
            parsed.grid.reprs = vec![ReprKind::PearsonRnd];
        }
        if !models_given {
            parsed.grid.models = vec![ModelKind::Knn];
        }
    }
    if parsed.grid.is_degenerate() {
        sweep_usage_error("the grid has an empty axis");
    }
    if parsed.append > 0 && parsed.cache_dir.is_none() {
        sweep_usage_error("--append needs the cell cache (drop --no-cache)");
    }
    if parsed.append > 0 && parsed.append >= parsed.benchmarks.unwrap_or(usize::MAX) {
        sweep_usage_error("--append must leave at least one base benchmark");
    }
    parsed
}

/// Parses one `--inject` spec: `KIND@CELL[:ATTEMPTS]`.
fn parse_fault_spec(spec: &str) -> (usize, pv_core::FaultKind, u32) {
    let (kind, rest) = spec
        .split_once('@')
        .unwrap_or_else(|| sweep_usage_error(&format!("--inject: {spec:?} is not KIND@CELL")));
    let kind = kind
        .parse()
        .unwrap_or_else(|e| sweep_usage_error(&format!("--inject: {e}")));
    let (cell, attempts) = match rest.split_once(':') {
        Some((c, a)) => (
            c,
            a.parse()
                .unwrap_or_else(|e| sweep_usage_error(&format!("--inject: attempts: {e}"))),
        ),
        None => (rest, u32::MAX),
    };
    let cell: usize = cell
        .parse()
        .unwrap_or_else(|e| sweep_usage_error(&format!("--inject: cell: {e}")));
    (cell, kind, attempts)
}

fn parse_seed(t: &str) -> u64 {
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.unwrap_or_else(|e| sweep_usage_error(&format!("--seeds: {t:?}: {e}")))
}

/// The `sweep` subcommand: expand the grid, run it over the cell cache,
/// stream per-cell lines as they finish, and render the summary table.
fn sweep_cmd(args: &[String], obs: &ObsFlags) {
    let SweepArgs {
        uc,
        reverse,
        grid,
        runs,
        append,
        benchmarks,
        shard_size,
        cache_dir,
        keep_going,
        max_retries,
        faults,
        progress,
    } = parse_sweep_args(args);
    let started = Instant::now();
    let collector = obs.install();
    println!("perfvar sweep service — use case {uc}, {runs} runs/benchmark");
    if !faults.is_empty() {
        silence_injected_panics();
        println!(
            "[inject] {} deterministic fault(s) armed: {}",
            faults.faults().len(),
            faults
                .faults()
                .iter()
                .map(|f| format!("{}@{}", f.kind.name(), f.cell))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }

    let cache = cache_dir.as_ref().map(CellCache::new);

    // The sharded data plane: generate and encode the campaign one
    // benchmark-range shard at a time, never materializing a whole
    // corpus, with an LRU-bounded resident set. Cells are bit-identical
    // to (and cache-compatible with) the monolithic path below.
    let report = if benchmarks.is_some() || shard_size.is_some() {
        let n_bench = benchmarks.unwrap_or_else(|| pv_sysmodel::roster().len());
        let shard_sz = shard_size.unwrap_or(256);
        if append >= n_bench && append > 0 {
            eprintln!("sweep: --append {append} leaves no base corpus ({n_bench} benchmarks)");
            std::process::exit(2);
        }
        let spill_dir = cache_dir.as_ref().map(|d| d.join("shard-spill"));
        let campaign = |system: pv_sysmodel::SystemModel, n: usize| CampaignSource {
            system,
            n_benchmarks: n,
            n_runs: runs,
            seed: CAMPAIGN_SEED,
        };
        let build_sharded = |what: &str, source: CampaignSource, spec: &EncodingSpec| {
            let t = Instant::now();
            let mut b =
                ShardedCorpus::builder(ShardSource::Campaign(source), spec).shard_size(shard_sz);
            if let Some(dir) = &spill_dir {
                b = b.spill_dir(dir);
            }
            let sh = b.build().unwrap_or_else(|e| {
                eprintln!("sweep: cannot build sharded {what} corpus: {e}");
                std::process::exit(1);
            });
            println!(
                "[setup] {what} campaign sharded in {:.1?} ({} benchmarks, {} shard(s) of ≤{shard_sz}, {} resident)",
                t.elapsed(),
                sh.len(),
                sh.layout().n_shards(),
                sh.resident_budget(),
            );
            sh
        };
        let run_pass = |n: usize, faults: FaultPlan| -> SweepReport {
            match uc {
                1 => {
                    let sh = build_sharded(
                        "primary",
                        campaign(pv_sysmodel::SystemModel::intel(), n),
                        &grid.few_runs_encoding(),
                    );
                    let mut sweep = Sweep::few_runs_sharded(&sh)
                        .with_max_retries(max_retries)
                        .with_faults(faults);
                    if let Some(c) = cache.clone() {
                        sweep = sweep.with_cache(c);
                    }
                    run_sweep_streaming(&sweep, &grid, progress)
                }
                _ => {
                    let (src_sys, dst_sys) = if reverse {
                        (
                            pv_sysmodel::SystemModel::intel(),
                            pv_sysmodel::SystemModel::amd(),
                        )
                    } else {
                        (
                            pv_sysmodel::SystemModel::amd(),
                            pv_sysmodel::SystemModel::intel(),
                        )
                    };
                    let (src_spec, dst_spec) = grid.cross_system_encoding_for_runs(runs);
                    let src = build_sharded("source", campaign(src_sys, n), &src_spec);
                    let dst = build_sharded("destination", campaign(dst_sys, n), &dst_spec);
                    let mut sweep = Sweep::cross_system_sharded(&src, &dst)
                        .with_max_retries(max_retries)
                        .with_faults(faults);
                    if let Some(c) = cache.clone() {
                        sweep = sweep.with_cache(c);
                    }
                    run_sweep_streaming(&sweep, &grid, progress)
                }
            }
        };
        if append > 0 {
            println!(
                "[append] phase 1/2: base campaign, {} of {n_bench} benchmarks",
                n_bench - append
            );
            let seeded = run_pass(n_bench - append, FaultPlan::none());
            println!(
                "[append] fold cache seeded: {} fold(s) scored across {} cell(s)",
                seeded.fold_stats.misses + seeded.fold_stats.deltas,
                seeded.misses,
            );
            println!("[append] phase 2/2: full campaign, +{append} benchmark(s)");
        }
        run_pass(n_bench, faults)
    } else {
        monolithic_sweep(MonolithicSweep {
            uc,
            reverse,
            grid: &grid,
            runs,
            append,
            cache: cache.clone(),
            max_retries,
            faults,
            progress,
        })
    };

    // Summary table in grid order (healthy + degraded cells) + CSV.
    println!();
    let rows: Vec<(String, &EvalSummary)> = report
        .cells
        .iter()
        .filter_map(|c| c.summary().map(|s| (c.config.label(), s)))
        .collect();
    if !rows.is_empty() {
        println!("{}", summary_table(&rows).expect("table"));
    }
    let scored: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.summary().is_some())
        .collect();
    let csv_rows: Vec<Vec<f64>> = scored
        .iter()
        .map(|c| {
            let s = c.summary().expect("scored cell");
            vec![
                c.config.sample_count() as f64,
                c.config.seed() as f64,
                s.mean,
                s.spread.median,
                s.spread.q1,
                s.spread.q3,
                if c.from_cache { 1.0 } else { 0.0 },
                if c.outcome.is_degraded() { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    let labels: Vec<String> = scored
        .iter()
        .map(|c| c.config.label().replace(' ', "_"))
        .collect();
    write_csv(
        &out_dir().join("sweep.csv"),
        &[
            "cell",
            "samples",
            "seed",
            "mean",
            "median",
            "q1",
            "q3",
            "from_cache",
            "degraded",
        ],
        &csv_rows,
        Some(&labels),
    )
    .expect("csv");
    match &cache {
        Some(c) => println!(
            "cache: {} hits, {} misses — {} ({} entries, fingerprint {:016x})",
            report.hits,
            report.misses,
            c.dir().display(),
            c.entries(),
            report.fingerprint,
        ),
        None => println!(
            "cache: disabled — {} cells computed (fingerprint {:016x})",
            report.misses, report.fingerprint,
        ),
    }
    let f = &report.fold_stats;
    if f.total() > 0 {
        println!(
            "fold cache: {} exact hit(s), {} delta-verified, {} recomputed",
            f.hits, f.deltas, f.misses,
        );
    }
    let ok = print_failure_summary(&report);
    println!("total: {:.1?}", started.elapsed());
    // Finalize obs before any failure exit so traces of the failing run
    // are exactly the ones worth inspecting.
    obs.finalize(collector, pv_core::sweep::SWEEP_OBS_COUNTERS);
    if !ok && !keep_going {
        eprintln!("sweep: failing cells present (re-run with --keep-going to tolerate them)");
        std::process::exit(1);
    }
}

/// Everything the monolithic (non-sharded) sweep path needs.
struct MonolithicSweep<'g> {
    uc: usize,
    reverse: bool,
    grid: &'g GridSpec,
    runs: usize,
    append: usize,
    cache: Option<CellCache>,
    max_retries: u32,
    faults: FaultPlan,
    progress: bool,
}

/// The classic sweep path: collect (or reuse) whole corpora, encode them
/// once, and run the grid over them. Bit-identical to the sharded path
/// on the same campaign.
fn monolithic_sweep(p: MonolithicSweep<'_>) -> SweepReport {
    let MonolithicSweep {
        uc,
        reverse,
        grid,
        runs,
        append,
        cache,
        max_retries,
        faults,
        progress,
    } = p;
    // Own the corpora only when the run count deviates from the shared
    // campaign; the common path reuses the process-wide caches.
    let full = runs == pv_bench::CAMPAIGN_RUNS;
    let collect = |sys: pv_sysmodel::SystemModel| Corpus::collect(&sys, runs, CAMPAIGN_SEED);

    let t = Instant::now();
    let (primary, secondary): (&Corpus, Option<Corpus>);
    let local: Corpus;
    match (uc, reverse) {
        (1, _) => {
            if full {
                primary = intel();
                secondary = None;
            } else {
                local = collect(pv_sysmodel::SystemModel::intel());
                primary = &local;
                secondary = None;
            }
        }
        (2, false) => {
            if full {
                primary = amd();
                secondary = Some(intel().clone());
            } else {
                local = collect(pv_sysmodel::SystemModel::amd());
                primary = &local;
                secondary = Some(collect(pv_sysmodel::SystemModel::intel()));
            }
        }
        (2, true) => {
            if full {
                primary = intel();
                secondary = Some(amd().clone());
            } else {
                local = collect(pv_sysmodel::SystemModel::intel());
                primary = &local;
                secondary = Some(collect(pv_sysmodel::SystemModel::amd()));
            }
        }
        _ => unreachable!("--uc validated"),
    }
    if !full || uc == 2 {
        println!("[setup] corpora ready in {:.1?}", t.elapsed());
    }

    // Encode once for the whole grid, then run the cells over the cache.
    fn encode_or_die<'c>(
        what: &str,
        r: Result<EncodedCorpus<'c>, pv_stats::StatsError>,
    ) -> EncodedCorpus<'c> {
        r.unwrap_or_else(|e| {
            eprintln!("sweep: cannot encode {what} corpus: {e}");
            std::process::exit(1);
        })
    }
    // One grid pass over a (primary, secondary) corpus pair. Reused by
    // the `--append` growth scenario, which sweeps a truncated base
    // corpus first so the full-corpus pass can replay unchanged folds.
    let run_grid = |primary: &Corpus, secondary: Option<&Corpus>, faults: FaultPlan| {
        let t = Instant::now();
        match uc {
            1 => {
                let enc = encode_or_die(
                    "primary",
                    EncodedCorpus::build(primary, &grid.few_runs_encoding()),
                );
                println!("[setup] corpus encoded in {:.1?}", t.elapsed());
                let mut sweep = Sweep::few_runs(&enc)
                    .with_max_retries(max_retries)
                    .with_faults(faults);
                if let Some(c) = cache.clone() {
                    sweep = sweep.with_cache(c);
                }
                run_sweep_streaming(&sweep, grid, progress)
            }
            _ => {
                let dst_corpus = secondary.expect("uc2 destination");
                let (src_spec, dst_spec) = grid.cross_system_encoding(primary);
                let src = encode_or_die("source", EncodedCorpus::build(primary, &src_spec));
                let dst = encode_or_die("destination", EncodedCorpus::build(dst_corpus, &dst_spec));
                println!("[setup] corpora encoded in {:.1?}", t.elapsed());
                let mut sweep = Sweep::cross_system(&src, &dst)
                    .with_max_retries(max_retries)
                    .with_faults(faults);
                if let Some(c) = cache.clone() {
                    sweep = sweep.with_cache(c);
                }
                run_sweep_streaming(&sweep, grid, progress)
            }
        }
    };
    if append > 0 {
        let n = primary.benchmarks.len();
        if append >= n {
            eprintln!("sweep: --append {append} leaves no base corpus ({n} benchmarks)");
            std::process::exit(2);
        }
        // Phase 1: the corpus as it stood before the last `append`
        // benchmarks arrived. Collection is per-benchmark seeded, so a
        // truncated clone is bit-identical to having measured the
        // smaller corpus directly. Faults are armed only for the full
        // pass — they address cells of the run under test.
        let mut base = primary.clone();
        base.benchmarks.truncate(n - append);
        let base_secondary = secondary.as_ref().map(|s| {
            let mut s = s.clone();
            s.benchmarks.truncate(n - append);
            s
        });
        println!(
            "[append] phase 1/2: base corpus, {} of {n} benchmarks",
            n - append
        );
        let seeded = run_grid(&base, base_secondary.as_ref(), FaultPlan::none());
        println!(
            "[append] fold cache seeded: {} fold(s) scored across {} cell(s)",
            seeded.fold_stats.misses + seeded.fold_stats.deltas,
            seeded.misses,
        );
        println!("[append] phase 2/2: full corpus, +{append} benchmark(s)");
    }
    run_grid(primary, secondary.as_ref(), faults)
}

/// Renders the failure summary table; returns true when the run is clean.
fn print_failure_summary(report: &SweepReport) -> bool {
    if report.store_failures > 0 {
        eprintln!(
            "warning: {} cache write(s) failed; those cells will recompute next run",
            report.store_failures
        );
    }
    if report.is_clean() {
        return true;
    }
    println!(
        "failure summary: {} failed, {} degraded, {} quarantined",
        report.failed, report.degraded, report.quarantined
    );
    println!("  {:<6} {:<42} DETAIL", "STATUS", "CELL");
    for cell in &report.cells {
        let (status, detail) = match &cell.outcome {
            CellOutcome::Ok { .. } => continue,
            CellOutcome::Degraded {
                fallback,
                error,
                attempts,
                ..
            } => (
                "DEGR",
                format!(
                    "fell back to {} after {attempts} attempt(s): {error}",
                    fallback.name()
                ),
            ),
            CellOutcome::Failed { error, attempts } => (
                "FAIL",
                format!("[{}] after {attempts} attempt(s): {error}", error.kind()),
            ),
            CellOutcome::Quarantined { error } => {
                ("QUAR", format!("skipped, previously failed: {error}"))
            }
        };
        println!("  {:<6} {:<42} {detail}", status, cell.config.label());
    }
    report.failed == 0 && report.quarantined == 0
}

/// Minimum spacing between `--progress` stderr lines.
const PROGRESS_EVERY: Duration = Duration::from_millis(250);

/// Runs the sweep, printing one line per cell the moment it completes.
/// With `progress` set, a rate-limited status line (completed/total, hit
/// rate, failures, ETA) also goes to stderr.
fn run_sweep_streaming(sweep: &Sweep<'_, '_>, grid: &GridSpec, progress: bool) -> SweepReport {
    let n_cells = sweep.cells(grid).len();
    let done = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let degraded = AtomicUsize::new(0);
    let started = Instant::now();
    let last_line = std::sync::Mutex::new(Instant::now());
    let result = sweep.run_streaming(grid, |cell| {
        let k = done.fetch_add(1, Ordering::Relaxed) + 1;
        if cell.from_cache {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        match &cell.outcome {
            CellOutcome::Failed { .. } | CellOutcome::Quarantined { .. } => {
                failed.fetch_add(1, Ordering::Relaxed);
            }
            CellOutcome::Degraded { .. } => {
                degraded.fetch_add(1, Ordering::Relaxed);
            }
            CellOutcome::Ok { .. } => {}
        }
        let provenance = if cell.from_cache {
            "cache hit"
        } else {
            "computed"
        };
        let line = match &cell.outcome {
            CellOutcome::Ok { summary, .. } => {
                format!("mean KS {:.3}  ({provenance})", summary.mean)
            }
            CellOutcome::Degraded {
                summary, fallback, ..
            } => format!(
                "mean KS {:.3}  ({provenance}, degraded -> {})",
                summary.mean,
                fallback.name()
            ),
            CellOutcome::Failed { error, attempts } => {
                format!("FAILED after {attempts} attempt(s): [{}]", error.kind())
            }
            CellOutcome::Quarantined { .. } => "quarantined (skipped)".to_string(),
        };
        println!("  [{k:>3}/{n_cells}] {:<42} {line}", cell.config.label());
        if progress {
            let mut last = last_line
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if last.elapsed() >= PROGRESS_EVERY || k == n_cells {
                *last = Instant::now();
                drop(last);
                let elapsed = started.elapsed();
                let eta = elapsed.mul_f64((n_cells - k) as f64 / k as f64);
                eprintln!(
                    "[progress] {k}/{n_cells} cells, {:.0}% hit, {} failed, {} degraded, ETA {:.1?}",
                    100.0 * hits.load(Ordering::Relaxed) as f64 / k as f64,
                    failed.load(Ordering::Relaxed),
                    degraded.load(Ordering::Relaxed),
                    eta,
                );
            }
        }
    });
    match result {
        Ok(report) => report,
        Err(PvError::CacheIo { what, detail }) => {
            eprintln!("sweep: cache unavailable ({what}: {detail})");
            eprintln!("sweep: another run may hold the lock; retry or use --no-cache");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------
// shared helpers

/// Natural axis for a relative-time sample: data range padded 10%.
fn axis(xs: &[f64]) -> (f64, f64) {
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let pad = 0.1 * (hi - lo).max(1e-3);
    (lo - pad, hi + pad)
}

fn axis_pair(a: &[f64], b: &[f64]) -> (f64, f64) {
    let (l1, h1) = axis(a);
    let (l2, h2) = axis(b);
    (l1.min(l2), h1.max(h2))
}

/// The 3×3 representation × model grid.
fn grid_cells() -> Vec<(ReprKind, ModelKind)> {
    ReprKind::ALL
        .iter()
        .flat_map(|&repr| ModelKind::ALL.iter().map(move |&model| (repr, model)))
        .collect()
}

/// Runs the full 3×3 grid for use case 1 at `s` profile runs.
///
/// Cells run in parallel over the shared cache; the order-preserving
/// collect keeps output order (and contents) identical to the serial
/// grid.
fn grid_uc1(enc: &EncodedCorpus<'_>, s: usize) -> Vec<(String, EvalSummary)> {
    let cells: Vec<(ReprKind, ModelKind, EvalSummary, Duration)> = grid_cells()
        .into_par_iter()
        .map(|(repr, model)| {
            let t = Instant::now();
            let summary = evaluate_few_runs_encoded(enc, uc1_config(repr, model, s)).expect("eval");
            (repr, model, summary, t.elapsed())
        })
        .collect();
    finish_grid(cells)
}

/// Runs the full 3×3 grid for use case 2 (src → dst), cells in parallel.
fn grid_uc2(src: &EncodedCorpus<'_>, dst: &EncodedCorpus<'_>) -> Vec<(String, EvalSummary)> {
    let cells: Vec<(ReprKind, ModelKind, EvalSummary, Duration)> = grid_cells()
        .into_par_iter()
        .map(|(repr, model)| {
            let t = Instant::now();
            let summary =
                evaluate_cross_system_encoded(src, dst, uc2_config(repr, model)).expect("eval");
            (repr, model, summary, t.elapsed())
        })
        .collect();
    finish_grid(cells)
}

fn finish_grid(
    cells: Vec<(ReprKind, ModelKind, EvalSummary, Duration)>,
) -> Vec<(String, EvalSummary)> {
    cells
        .into_iter()
        .map(|(repr, model, summary, elapsed)| {
            eprintln!(
                "  [{} × {}] mean KS {:.3} ({:.1?})",
                repr.name(),
                model.name(),
                summary.mean,
                elapsed
            );
            (format!("{} + {}", repr.name(), model.name()), summary)
        })
        .collect()
}

fn render_grid(summaries: &[(String, EvalSummary)], stem: &str) {
    let rows: Vec<(String, &EvalSummary)> = summaries.iter().map(|(l, s)| (l.clone(), s)).collect();
    println!("{}", summary_table(&rows).expect("table"));
    let csv_rows: Vec<Vec<f64>> = summaries
        .iter()
        .map(|(_, s)| {
            let mut r = vec![s.mean, s.spread.median, s.spread.q1, s.spread.q3];
            r.extend(s.ks_values());
            r
        })
        .collect();
    let labels: Vec<String> = summaries.iter().map(|(l, _)| l.replace(' ', "")).collect();
    write_csv(
        &out_dir().join(format!("{stem}.csv")),
        &["config", "mean", "median", "q1", "q3", "per_benchmark_ks"],
        &csv_rows,
        Some(&labels),
    )
    .expect("csv");
}

fn headline_uc(summaries: &[(String, EvalSummary)]) {
    let best = summaries
        .iter()
        .min_by(|a, b| a.1.mean.partial_cmp(&b.1.mean).expect("finite"))
        .expect("non-empty");
    println!("  best cell: {} (mean KS {:.3})\n", best.0, best.1.mean);
}

/// Used by fig5/fig9 smoke tests (keeps the RNG import warm even when
/// only tables are requested).
#[allow(dead_code)]
fn _rng() -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(CAMPAIGN_SEED)
}
