//! `pv-serve` — a long-lived query daemon over a trained-model registry.
//!
//! Loads every verified entry of a [`ModelRegistry`] once at startup and
//! answers line-delimited JSON prediction requests until EOF or a
//! `{"shutdown": true}` request. Speaks stdin/stdout by default or a
//! unix socket with `--socket`; concurrent queries are micro-batched
//! across the rayon pool. Diagnostics go to stderr — stdout is the
//! protocol channel.
//!
//! ```text
//! cargo run -p pv-bench --release --bin repro -- train --registry target/registry
//! cargo run -p pv-bench --release --bin pv-serve -- --registry target/registry \
//!     --socket /tmp/pv-serve.sock --metrics-out METRICS.json
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use pv_bench::serve::{
    preregister_serve_counters, run_socket, run_stdio, ServeEngine, DEFAULT_BATCH, DEFAULT_MAX_LINE,
};
use pv_bench::ObsFlags;
use pv_core::registry::ModelRegistry;

const HELP: &str = "\
pv-serve — answer prediction queries from a trained-model registry

USAGE:
    pv-serve --registry DIR [OPTIONS]

OPTIONS:
    --registry DIR     model registry directory (required; see `repro train`)
    --socket PATH      serve a unix socket instead of stdin/stdout
    --batch N          micro-batch size across the rayon pool (default 64)
    --max-line BYTES   per-request line cap (default 1048576)
    --trace-out FILE   write the JSONL span trace at exit
    --metrics-out FILE write the metrics snapshot at exit
    --obs-summary      print the observability summary at exit
    --help             show this help

PROTOCOL (one JSON object per line, one JSON reply per line):
    {\"profile\": {...}, \"model\": \"<16-hex-key>\", \"n_samples\": 1000,
     \"sample_seed\": 0, \"rel_times\": [...]}   -> {\"ok\": true, \"prediction\":
    {\"features\": [...], \"samples\": [...]}, \"ks_confidence\": ...}
    {\"shutdown\": true}                         -> ack, then exit 0

Malformed requests get a typed error reply, never a crash; an unknown
model key gets a not-found reply listing how many models are loaded.";

fn usage_error(msg: &str) -> ! {
    eprintln!("pv-serve: {msg}\n\n{HELP}");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsFlags::extract(&mut args);

    let mut registry_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut batch = DEFAULT_BATCH;
    let mut max_line = DEFAULT_MAX_LINE;
    let mut i = 0;
    let value = |i: &mut usize, args: &[String], flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{HELP}");
                return;
            }
            "--registry" => {
                registry_dir = Some(PathBuf::from(value(&mut i, &args, "--registry")));
            }
            "--socket" => socket = Some(PathBuf::from(value(&mut i, &args, "--socket"))),
            "--batch" => {
                batch = value(&mut i, &args, "--batch")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--batch wants an integer"))
                    .max(1);
            }
            "--max-line" => {
                max_line = value(&mut i, &args, "--max-line")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--max-line wants a byte count"))
                    .max(64);
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let registry_dir = registry_dir.unwrap_or_else(|| usage_error("--registry DIR is required"));

    let collector = obs.install();
    preregister_serve_counters();

    let registry = ModelRegistry::new(&registry_dir);
    let engine = match ServeEngine::from_registry(&registry) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!(
                "pv-serve: cannot load registry {}: [{}] {e}",
                registry_dir.display(),
                e.kind()
            );
            std::process::exit(1);
        }
    };
    if engine.is_empty() {
        eprintln!(
            "pv-serve: warning: registry {} holds no models; every query will 404",
            registry_dir.display()
        );
    } else {
        eprintln!(
            "pv-serve: {} model(s) loaded from {}",
            engine.len(),
            registry_dir.display()
        );
        for key in engine.keys() {
            eprintln!("pv-serve:   model-{key:016x}");
        }
    }

    let engine = Arc::new(engine);
    let served = match &socket {
        Some(path) => {
            eprintln!("pv-serve: listening on {}", path.display());
            run_socket(engine, path, batch, max_line)
        }
        None => run_stdio(engine, batch, max_line),
    };
    if let Err(e) = served {
        eprintln!("pv-serve: serve loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("pv-serve: shutting down");
    obs.finalize(collector, pv_bench::serve::SERVE_OBS_COUNTERS);
}
