//! `pv-serve` — a long-lived query daemon over a trained-model registry.
//!
//! Loads every verified entry of a [`ModelRegistry`] once at startup and
//! answers line-delimited JSON prediction requests until EOF or a
//! `{"shutdown": true}` request. Speaks stdin/stdout by default or a
//! unix socket with `--socket`; concurrent queries are micro-batched
//! across the rayon pool. Diagnostics go to stderr — stdout is the
//! protocol channel.
//!
//! Production resilience: `--deadline-ms` bounds every prediction with
//! a typed `timeout` response, `--queue` bounds admission with typed
//! `overloaded` shedding, `{"op": "reload"}` (or SIGHUP) hot-swaps a
//! freshly verified registry snapshot without dropping in-flight
//! requests, and `{"op": "health"}` reports `ok|degraded|draining`
//! readiness. `--inject-serve` installs a deterministic chaos plan for
//! testing.
//!
//! ```text
//! cargo run -p pv-bench --release --bin repro -- train --registry target/registry
//! cargo run -p pv-bench --release --bin pv-serve -- --registry target/registry \
//!     --socket /tmp/pv-serve.sock --deadline-ms 2000 --metrics-out METRICS.json
//! ```

#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pv_bench::serve::{
    preregister_serve_counters, run_socket, run_stdio, ServeEngine, ServeOpts, ServeTelemetry,
    TelemetryOpts, DEFAULT_BATCH, DEFAULT_MAX_LINE, DEFAULT_QUEUE,
};
use pv_bench::ObsFlags;
use pv_core::registry::ModelRegistry;
use pv_core::resilience::ServeFaultPlan;

const HELP: &str = "\
pv-serve — answer prediction queries from a trained-model registry

USAGE:
    pv-serve --registry DIR [OPTIONS]

OPTIONS:
    --registry DIR     model registry directory (required; see `repro train`)
    --socket PATH      serve a unix socket instead of stdin/stdout
    --batch N          micro-batch size across the rayon pool (default 64)
    --max-line BYTES   per-request line cap (default 1048576)
    --deadline-ms MS   per-request prediction deadline; expired requests
                       get a typed timeout response (0 = off, default)
    --queue N          admission queue capacity; a full queue sheds with
                       typed overloaded responses (default 1024, 0 = unbounded)
    --inject-serve SPEC  deterministic serving chaos plan, e.g.
                       \"slow@3:5000,shed@7,reload-io@0,panic@9\" (slow/shed/
                       panic key on request arrival sequence, reload-io on
                       reload attempt)
    --slo-ms MS        latency SLO: request-class answers slower than this
                       (or failed) burn error budget, reported by
                       {\"op\": \"health\"} and {\"op\": \"stats\"}
    --access-log FILE  append one JSONL line per answered request with the
                       outcome, model key, and queue/predict/write latency
                       breakdown
    --telemetry-out FILE        periodically flush the stats document
                       (same JSON as {\"op\": \"stats\"}) via temp+rename
    --telemetry-prom FILE       periodically flush a Prometheus exposition
                       of the serving counters and latency windows
    --telemetry-interval-ms MS  flush cadence (default 1000)
    --flight-recorder FILE      arm the post-mortem flight recorder: on the
                       first anomaly (shed/timeout burst, worker panic,
                       failed reload) dump the last N request events as JSONL
    --recorder-capacity N       flight-recorder ring size (default 256)
    --anomaly-threshold N       10s-windowed shed/timeout count that trips
                       the recorder (default 32, 0 = burst triggers off)
    --trace-out FILE   write the JSONL span trace at exit
    --metrics-out FILE write the metrics snapshot at exit
    --obs-summary      print the observability summary at exit
    --help             show this help

PROTOCOL (one JSON object per line, one JSON reply per line):
    {\"profile\": {...}, \"model\": \"<16-hex-key>\", \"n_samples\": 1000,
     \"sample_seed\": 0, \"rel_times\": [...]}   -> {\"ok\": true, \"prediction\":
    {\"features\": [...], \"samples\": [...]}, \"ks_confidence\": ...}
    {\"op\": \"health\"}                          -> readiness + model staleness
    {\"op\": \"stats\"}                           -> live totals, 10s/1m/5m windows,
                                                  latency quantiles, SLO budget
    {\"op\": \"reload\"}                          -> re-verify registry, atomic swap
    {\"shutdown\": true}                         -> ack, drain, then exit 0

SIGHUP triggers the same hot reload as {\"op\": \"reload\"}: entries that
fail verification keep their previously loaded version serving and mark
the daemon degraded — a bad deploy can never crash the serving path.
Malformed requests get a typed error reply, never a crash; an unknown
model key gets a not-found reply listing how many models are loaded.";

fn usage_error(msg: &str) -> ! {
    eprintln!("pv-serve: {msg}\n\n{HELP}");
    std::process::exit(2);
}

/// Raised by the SIGHUP handler, polled by the dispatcher between
/// batches (plain flag — all the reload work happens on the dispatcher
/// thread, the handler itself is async-signal-safe).
static RELOAD_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sighup() {
    // glibc is already linked; declare `signal` directly rather than
    // growing a libc dependency for one call.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_sighup(_signum: i32) {
        RELOAD_REQUESTED.store(true, Ordering::SeqCst);
    }
    const SIGHUP: i32 = 1;
    unsafe {
        signal(SIGHUP, on_sighup);
    }
}

#[cfg(not(unix))]
fn install_sighup() {}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsFlags::extract(&mut args);

    let mut registry_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut batch = DEFAULT_BATCH;
    let mut max_line = DEFAULT_MAX_LINE;
    let mut queue = DEFAULT_QUEUE;
    let mut deadline_ms = 0u64;
    let mut plan = ServeFaultPlan::none();
    let mut telemetry = TelemetryOpts::default();
    let mut slo_ms = 0u64;
    let mut telemetry_out: Option<PathBuf> = None;
    let mut telemetry_prom: Option<PathBuf> = None;
    let mut telemetry_interval = Duration::from_millis(1000);
    let mut i = 0;
    let value = |i: &mut usize, args: &[String], flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{HELP}");
                return;
            }
            "--registry" => {
                registry_dir = Some(PathBuf::from(value(&mut i, &args, "--registry")));
            }
            "--socket" => socket = Some(PathBuf::from(value(&mut i, &args, "--socket"))),
            "--batch" => {
                batch = value(&mut i, &args, "--batch")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--batch wants an integer"))
                    .max(1);
            }
            "--max-line" => {
                max_line = value(&mut i, &args, "--max-line")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--max-line wants a byte count"))
                    .max(64);
            }
            "--deadline-ms" => {
                deadline_ms = value(&mut i, &args, "--deadline-ms")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage_error("--deadline-ms wants milliseconds"));
            }
            "--queue" => {
                queue = value(&mut i, &args, "--queue")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--queue wants a capacity"));
            }
            "--inject-serve" => {
                plan = value(&mut i, &args, "--inject-serve")
                    .parse::<ServeFaultPlan>()
                    .unwrap_or_else(|e| usage_error(&format!("--inject-serve: {e}")));
            }
            "--slo-ms" => {
                slo_ms = value(&mut i, &args, "--slo-ms")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage_error("--slo-ms wants milliseconds"));
            }
            "--access-log" => {
                telemetry.access_log = Some(PathBuf::from(value(&mut i, &args, "--access-log")));
            }
            "--telemetry-out" => {
                telemetry_out = Some(PathBuf::from(value(&mut i, &args, "--telemetry-out")));
            }
            "--telemetry-prom" => {
                telemetry_prom = Some(PathBuf::from(value(&mut i, &args, "--telemetry-prom")));
            }
            "--telemetry-interval-ms" => {
                let ms = value(&mut i, &args, "--telemetry-interval-ms")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage_error("--telemetry-interval-ms wants milliseconds"));
                telemetry_interval = Duration::from_millis(ms.max(10));
            }
            "--flight-recorder" => {
                telemetry.recorder = Some(PathBuf::from(value(&mut i, &args, "--flight-recorder")));
            }
            "--recorder-capacity" => {
                telemetry.recorder_capacity = value(&mut i, &args, "--recorder-capacity")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage_error("--recorder-capacity wants an integer"))
                    .max(1);
            }
            "--anomaly-threshold" => {
                telemetry.anomaly_threshold = value(&mut i, &args, "--anomaly-threshold")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage_error("--anomaly-threshold wants an integer"));
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let registry_dir = registry_dir.unwrap_or_else(|| usage_error("--registry DIR is required"));

    let collector = obs.install();
    preregister_serve_counters();

    let registry = ModelRegistry::new(&registry_dir);
    let engine = match ServeEngine::from_registry(&registry) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!(
                "pv-serve: cannot load registry {}: [{}] {e}",
                registry_dir.display(),
                e.kind()
            );
            std::process::exit(1);
        }
    };
    telemetry.slo = (slo_ms > 0).then(|| Duration::from_millis(slo_ms));
    let telemetry = match ServeTelemetry::new(telemetry) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pv-serve: cannot open access log: {e}");
            std::process::exit(1);
        }
    };
    let engine = engine
        .with_deadline((deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)))
        .with_fault_plan(plan)
        .with_telemetry(telemetry);
    if engine.is_empty() {
        eprintln!(
            "pv-serve: warning: registry {} holds no models; every query will 404",
            registry_dir.display()
        );
    } else {
        eprintln!(
            "pv-serve: {} model(s) loaded from {}",
            engine.len(),
            registry_dir.display()
        );
        for key in engine.keys() {
            eprintln!("pv-serve:   model-{key:016x}");
        }
    }
    if !engine.plan().is_empty() {
        eprintln!(
            "pv-serve: chaos plan armed with {} fault(s)",
            engine.plan().faults().len()
        );
    }

    install_sighup();
    // A static can't hold the Arc the serve loop wants; bridge via a
    // forwarder that the dispatcher polls.
    let reload_flag = Arc::new(AtomicBool::new(false));
    {
        let reload_flag = Arc::clone(&reload_flag);
        std::thread::spawn(move || loop {
            if RELOAD_REQUESTED.swap(false, Ordering::SeqCst) {
                reload_flag.store(true, Ordering::SeqCst);
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    let opts = ServeOpts {
        batch,
        max_line,
        queue,
        reload_signal: Some(reload_flag),
    };

    let engine = Arc::new(engine);
    // Periodic telemetry flusher: writes the stats document and/or the
    // Prometheus exposition every interval via temp+rename, so scrapers
    // never read a torn file. A final flush lands after the serve loop.
    let flush = |engine: &ServeEngine| {
        if let Some(path) = &telemetry_out {
            if let Err(e) =
                pv_obs::telemetry::write_atomic(path, &format!("{}\n", engine.stats_json()))
            {
                eprintln!("pv-serve: telemetry flush failed: {e}");
            }
        }
        if let Some(path) = &telemetry_prom {
            if let Err(e) = pv_obs::telemetry::write_atomic(path, &engine.telemetry_prometheus()) {
                eprintln!("pv-serve: prometheus flush failed: {e}");
            }
        }
    };
    let flusher = (telemetry_out.is_some() || telemetry_prom.is_some()).then(|| {
        let engine = Arc::clone(&engine);
        let telemetry_out = telemetry_out.clone();
        let telemetry_prom = telemetry_prom.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let flush = |engine: &ServeEngine| {
                if let Some(path) = &telemetry_out {
                    if let Err(e) =
                        pv_obs::telemetry::write_atomic(path, &format!("{}\n", engine.stats_json()))
                    {
                        eprintln!("pv-serve: telemetry flush failed: {e}");
                    }
                }
                if let Some(path) = &telemetry_prom {
                    if let Err(e) =
                        pv_obs::telemetry::write_atomic(path, &engine.telemetry_prometheus())
                    {
                        eprintln!("pv-serve: prometheus flush failed: {e}");
                    }
                }
            };
            while !stop_flag.load(Ordering::SeqCst) {
                std::thread::sleep(telemetry_interval);
                flush(&engine);
            }
        });
        (stop, handle)
    });
    let served = match &socket {
        Some(path) => {
            eprintln!("pv-serve: listening on {}", path.display());
            run_socket(Arc::clone(&engine), path, opts)
        }
        None => run_stdio(Arc::clone(&engine), opts),
    };
    if let Some((stop, handle)) = flusher {
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }
    // Final flush so the files on disk reflect the complete run.
    flush(&engine);
    if let Err(e) = served {
        eprintln!("pv-serve: serve loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("pv-serve: shutting down");
    obs.finalize(collector, pv_bench::serve::SERVE_OBS_COUNTERS);
}
