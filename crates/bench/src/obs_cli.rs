//! Shared observability CLI flags for the workspace binaries.
//!
//! Both `repro` and `pv-serve` accept `--trace-out`, `--metrics-out`,
//! and `--obs-summary`; this module owns the extraction, collector
//! installation, and exit-time export so the two binaries cannot drift.

use std::path::PathBuf;

/// The observability flags stripped from a binary's argument list.
#[derive(Debug, Clone, Default)]
pub struct ObsFlags {
    /// `--trace-out FILE`: write the JSONL span trace at exit.
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out FILE`: write the metrics snapshot at exit.
    pub metrics_out: Option<PathBuf>,
    /// `--obs-summary`: print the summary table at exit.
    pub summary: bool,
}

impl ObsFlags {
    /// Strips the obs flags out of `args` and returns them parsed.
    /// Exits with status 2 on a flag missing its argument, like the
    /// binaries' other usage errors.
    pub fn extract(args: &mut Vec<String>) -> ObsFlags {
        let mut flags = ObsFlags::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trace-out" | "--metrics-out" => {
                    let flag = args.remove(i);
                    if i >= args.len() {
                        eprintln!("{flag} needs a file path");
                        std::process::exit(2);
                    }
                    let path = PathBuf::from(args.remove(i));
                    if flag == "--trace-out" {
                        flags.trace_out = Some(path);
                    } else {
                        flags.metrics_out = Some(path);
                    }
                }
                "--obs-summary" => {
                    args.remove(i);
                    flags.summary = true;
                }
                _ => i += 1,
            }
        }
        flags
    }

    /// Installs the collector when any obs output was requested.
    pub fn install(&self) -> Option<pv_obs::Collector> {
        let active = self.trace_out.is_some() || self.metrics_out.is_some() || self.summary;
        active.then(pv_obs::Collector::install)
    }

    /// Finishes the session, writes the requested files, and prints the
    /// summary table over `summary_counters`. A write failure warns but
    /// does not abort: the run's real output is already out.
    pub fn finalize(&self, collector: Option<pv_obs::Collector>, summary_counters: &[&str]) {
        let Some(collector) = collector else { return };
        let report = collector.finish();
        // File notices go to stderr: for `pv-serve` stdout is the
        // protocol channel, and for `repro` they are diagnostics, not
        // exhibit output.
        if let Some(path) = &self.trace_out {
            match pv_obs::write_trace(path, &report.events) {
                Ok(()) => eprintln!(
                    "trace: {} events -> {}",
                    report.events.len(),
                    path.display()
                ),
                Err(e) => eprintln!("warning: cannot write trace {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.metrics_out {
            match pv_obs::write_metrics(path, &report.metrics) {
                Ok(()) => eprintln!(
                    "metrics: {} counters, {} gauges, {} histograms -> {}",
                    report.metrics.counters.len(),
                    report.metrics.gauges.len(),
                    report.metrics.histograms.len(),
                    path.display()
                ),
                Err(e) => eprintln!("warning: cannot write metrics {}: {e}", path.display()),
            }
        }
        if self.summary {
            println!();
            println!("{}", pv_obs::render_summary(&report, summary_counters));
        }
    }
}
