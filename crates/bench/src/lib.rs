//! # pv-bench — benchmarks and the figure-reproduction harness
//!
//! Two deliverables live here:
//!
//! * the `repro` binary (`cargo run -p pv-bench --release --bin repro -- all`)
//!   regenerates every table and figure of the paper's evaluation from the
//!   simulated testbed, printing text renditions and writing CSVs under
//!   `target/repro/`;
//! * the `benches/` directory holds criterion microbenchmarks for every
//!   performance-relevant component (moments, KDE, KS, Pearson sampling,
//!   MaxEnt solves, kNN/forest/boosting, end-to-end pipelines) plus
//!   ablation benches for the design choices called out in DESIGN.md.
//!
//! The library part hosts the experiment configuration shared by both.

use pv_core::usecase1::FewRunsConfig;
use pv_core::usecase2::CrossSystemConfig;
use pv_core::{ModelKind, ReprKind};
use pv_sysmodel::{Corpus, SystemModel};

/// Root seed of the entire reproduction campaign.
pub const CAMPAIGN_SEED: u64 = 0xC0FFEE;

/// Runs per benchmark in the full campaign (the paper uses 1,000).
pub const CAMPAIGN_RUNS: usize = 1000;

/// Profile windows per benchmark used for training in use case 1. One
/// row per benchmark matches the paper's setup (each application
/// contributes its profile and its measured distribution once) and puts
/// kNN's k = 15 in the regime where it averages fifteen *distinct*
/// applications.
pub const PROFILES_PER_BENCHMARK: usize = 1;

/// Collects the full Intel campaign (60 benchmarks × 1,000 runs).
pub fn intel_corpus() -> Corpus {
    Corpus::collect(&SystemModel::intel(), CAMPAIGN_RUNS, CAMPAIGN_SEED)
}

/// Collects the full AMD campaign.
pub fn amd_corpus() -> Corpus {
    Corpus::collect(&SystemModel::amd(), CAMPAIGN_RUNS, CAMPAIGN_SEED)
}

/// The use-case-1 configuration for a given representation/model cell at
/// `s` profile runs.
pub fn uc1_config(repr: ReprKind, model: ModelKind, s: usize) -> FewRunsConfig {
    FewRunsConfig {
        repr,
        model,
        n_profile_runs: s,
        profiles_per_benchmark: PROFILES_PER_BENCHMARK.min(CAMPAIGN_RUNS / s.max(1)),
        seed: CAMPAIGN_SEED,
    }
}

/// The use-case-2 configuration for a representation/model cell.
pub fn uc2_config(repr: ReprKind, model: ModelKind) -> CrossSystemConfig {
    CrossSystemConfig {
        repr,
        model,
        profile_runs: 100,
        seed: CAMPAIGN_SEED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uc1_config_windows_fit_in_campaign() {
        for s in [1, 2, 3, 5, 10, 25, 50, 100] {
            let c = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, s);
            assert!(c.profiles_per_benchmark * s <= CAMPAIGN_RUNS, "s = {s}");
            assert!(c.profiles_per_benchmark >= 1);
        }
    }

    #[test]
    fn configs_carry_the_campaign_seed() {
        assert_eq!(uc1_config(ReprKind::Histogram, ModelKind::Knn, 10).seed, CAMPAIGN_SEED);
        assert_eq!(uc2_config(ReprKind::Histogram, ModelKind::Knn).seed, CAMPAIGN_SEED);
    }
}
