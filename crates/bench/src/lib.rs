//! # pv-bench — benchmarks and the figure-reproduction harness
//!
//! Two deliverables live here:
//!
//! * the `repro` binary (`cargo run -p pv-bench --release --bin repro -- all`)
//!   regenerates every table and figure of the paper's evaluation from the
//!   simulated testbed, printing text renditions and writing CSVs under
//!   `target/repro/`;
//! * the `benches/` directory holds criterion microbenchmarks for every
//!   performance-relevant component (moments, KDE, KS, Pearson sampling,
//!   MaxEnt solves, kNN/forest/boosting, end-to-end pipelines) plus
//!   ablation benches for the design choices called out in DESIGN.md.
//!
//! The library part hosts the experiment configuration shared by both,
//! plus the [`serve`] protocol engine behind the `pv-serve` daemon and
//! the [`obs_cli`] flags shared by every workspace binary.

// The serving path is a long-lived daemon: every failure must be a
// typed response or a handled error, never a panic.
#![warn(clippy::unwrap_used)]

pub mod obs_cli;
pub mod serve;

pub use obs_cli::ObsFlags;

use std::sync::OnceLock;

use pv_core::pipeline::EncodingSpec;
use pv_core::usecase1::FewRunsConfig;
use pv_core::usecase2::CrossSystemConfig;
use pv_core::{ModelKind, ReprKind};
use pv_sysmodel::{Corpus, SystemModel};

/// Root seed of the entire reproduction campaign.
pub const CAMPAIGN_SEED: u64 = 0xC0FFEE;

/// Runs per benchmark in the full campaign (the paper uses 1,000).
pub const CAMPAIGN_RUNS: usize = 1000;

/// Profile windows per benchmark used for training in use case 1. One
/// row per benchmark matches the paper's setup (each application
/// contributes its profile and its measured distribution once) and puts
/// kNN's k = 15 in the regime where it averages fifteen *distinct*
/// applications.
pub const PROFILES_PER_BENCHMARK: usize = 1;

/// Profile-run counts swept by the use-case-1 exhibits (Fig. 6 axis;
/// Fig. 1/4/5 use the 10-run entry, the baselines a subset).
pub const UC1_SAMPLE_COUNTS: [usize; 8] = [1, 2, 3, 5, 10, 25, 50, 100];

/// Source-system runs summarized into the use-case-2 profile.
pub const UC2_PROFILE_RUNS: usize = 100;

/// Collects the full Intel campaign (60 benchmarks × 1,000 runs).
pub fn intel_corpus() -> Corpus {
    Corpus::collect(&SystemModel::intel(), CAMPAIGN_RUNS, CAMPAIGN_SEED)
}

/// Collects the full AMD campaign.
pub fn amd_corpus() -> Corpus {
    Corpus::collect(&SystemModel::amd(), CAMPAIGN_RUNS, CAMPAIGN_SEED)
}

/// The Intel campaign, collected once per process and shared by every
/// exhibit/benchmark that asks.
pub fn intel_campaign() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(intel_corpus)
}

/// The AMD campaign, collected once per process.
pub fn amd_campaign() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(amd_corpus)
}

/// The encoding spec covering every campaign exhibit on one corpus:
/// profile windows for each swept `s`, target encodings for all three
/// representations (the grids), and use-case-2 joined rows. Build one
/// [`EncodedCorpus`](pv_core::pipeline::EncodedCorpus) per corpus from
/// this and every figure/table shares it.
pub fn campaign_spec() -> EncodingSpec {
    let mut spec = EncodingSpec::new();
    for &s in &UC1_SAMPLE_COUNTS {
        spec = spec.profiles(
            s,
            PROFILES_PER_BENCHMARK.min(CAMPAIGN_RUNS / s.max(1)).max(1),
        );
    }
    for repr in ReprKind::ALL {
        spec = spec
            .target(repr)
            .joined(UC2_PROFILE_RUNS.clamp(1, CAMPAIGN_RUNS), repr);
    }
    spec
}

/// The use-case-1 configuration for a given representation/model cell at
/// `s` profile runs.
pub fn uc1_config(repr: ReprKind, model: ModelKind, s: usize) -> FewRunsConfig {
    FewRunsConfig {
        repr,
        model,
        n_profile_runs: s,
        profiles_per_benchmark: PROFILES_PER_BENCHMARK.min(CAMPAIGN_RUNS / s.max(1)),
        seed: CAMPAIGN_SEED,
    }
}

/// The use-case-2 configuration for a representation/model cell.
pub fn uc2_config(repr: ReprKind, model: ModelKind) -> CrossSystemConfig {
    CrossSystemConfig {
        repr,
        model,
        profile_runs: UC2_PROFILE_RUNS,
        seed: CAMPAIGN_SEED,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn uc1_config_windows_fit_in_campaign() {
        for s in [1, 2, 3, 5, 10, 25, 50, 100] {
            let c = uc1_config(ReprKind::PearsonRnd, ModelKind::Knn, s);
            assert!(c.profiles_per_benchmark * s <= CAMPAIGN_RUNS, "s = {s}");
            assert!(c.profiles_per_benchmark >= 1);
        }
    }

    #[test]
    fn configs_carry_the_campaign_seed() {
        assert_eq!(
            uc1_config(ReprKind::Histogram, ModelKind::Knn, 10).seed,
            CAMPAIGN_SEED
        );
        assert_eq!(
            uc2_config(ReprKind::Histogram, ModelKind::Knn).seed,
            CAMPAIGN_SEED
        );
    }

    #[test]
    fn campaign_spec_covers_every_exhibit() {
        use pv_core::pipeline::EncodedCorpus;
        // A 100-run corpus admits every window the spec asks for (the
        // largest is 1 × 100 runs), so this exercises the real spec
        // without collecting the full campaign.
        let c = Corpus::collect(&SystemModel::intel(), 100, 1);
        let enc = EncodedCorpus::build(&c, &campaign_spec()).unwrap();
        for &s in &UC1_SAMPLE_COUNTS {
            assert!(enc.profile(s, 0, 0).is_ok(), "s = {s}");
        }
        for repr in ReprKind::ALL {
            assert!(enc.target(repr, 0).is_ok(), "{}", repr.name());
            assert!(
                enc.joined(UC2_PROFILE_RUNS, repr, 0).is_ok(),
                "{}",
                repr.name()
            );
        }
    }
}
