//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use pv_stats::correlation::cosine_similarity;
use pv_stats::descriptive::{quantile, FiveNumber};
use pv_stats::divergence::wasserstein1;
use pv_stats::ecdf::Ecdf;
use pv_stats::histogram::Histogram;
use pv_stats::ks::{kolmogorov_sf, ks2_statistic};
use pv_stats::moments::{MomentSummary, Moments};

/// Strategy: a non-empty vector of "reasonable" finite floats.
fn sample(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn moments_merge_matches_sequential(xs in sample(200), split in 0usize..200) {
        let split = split.min(xs.len());
        let seq = Moments::from_slice(&xs);
        let mut a = Moments::from_slice(&xs[..split]);
        let b = Moments::from_slice(&xs[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() <= 1e-6 * (1.0 + seq.mean().abs()));
        prop_assert!(
            (a.population_variance() - seq.population_variance()).abs()
                <= 1e-6 * (1.0 + seq.population_variance().abs())
        );
    }

    #[test]
    fn mean_lies_between_min_and_max(xs in sample(100)) {
        let m = Moments::from_slice(&xs);
        prop_assert!(m.mean() >= m.min() - 1e-9);
        prop_assert!(m.mean() <= m.max() + 1e-9);
    }

    #[test]
    fn kurtosis_respects_skewness_bound(xs in sample(100)) {
        // β₂ ≥ β₁ + 1 holds for every real distribution / sample.
        let m = Moments::from_slice(&xs);
        if m.population_variance() > 1e-12 {
            prop_assert!(m.kurtosis() >= m.skewness().powi(2) + 1.0 - 1e-6);
        }
    }

    #[test]
    fn moment_summary_is_always_feasible(xs in sample(100)) {
        let s = MomentSummary::from_sample(&xs).unwrap();
        if s.std > 1e-9 {
            prop_assert!(s.is_feasible());
        }
        // Clamp is idempotent on feasible summaries.
        let c = s.clamped_feasible(0.0);
        prop_assert!(c.is_feasible() || s.std <= 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_in_q(xs in sample(100), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-12);
    }

    #[test]
    fn five_number_ordering(xs in sample(100)) {
        let f = FiveNumber::from_sample(&xs).unwrap();
        prop_assert!(f.min <= f.q1 + 1e-12);
        prop_assert!(f.q1 <= f.median + 1e-12);
        prop_assert!(f.median <= f.q3 + 1e-12);
        prop_assert!(f.q3 <= f.max + 1e-12);
    }

    #[test]
    fn histogram_probabilities_sum_to_one(xs in sample(150), bins in 1usize..40) {
        let h = Histogram::from_data(&xs, bins).unwrap();
        let total: f64 = h.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_cdf_monotone(xs in sample(150), bins in 1usize..40) {
        let h = Histogram::from_data(&xs, bins).unwrap();
        let mut prev = -1e-12;
        for i in 0..=20 {
            let x = h.lo() + (h.hi() - h.lo()) * i as f64 / 20.0;
            let c = h.cdf(x);
            prop_assert!(c >= prev - 1e-9);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn ecdf_is_bounded_monotone(xs in sample(100)) {
        let e = Ecdf::new(&xs).unwrap();
        let lo = e.sorted_values()[0];
        let hi = *e.sorted_values().last().unwrap();
        let mut prev = 0.0;
        for i in 0..=16 {
            let x = lo + (hi - lo) * i as f64 / 16.0;
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert_eq!(e.eval(hi), 1.0);
    }

    #[test]
    fn ks_statistic_properties(a in sample(80), b in sample(80)) {
        let d_ab = ks2_statistic(&a, &b).unwrap();
        let d_ba = ks2_statistic(&b, &a).unwrap();
        prop_assert!((d_ab - d_ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&d_ab), "bounded");
        prop_assert_eq!(ks2_statistic(&a, &a).unwrap(), 0.0, "identity");
    }

    #[test]
    fn kolmogorov_sf_is_decreasing(l1 in 0.0..4.0f64, l2 in 0.0..4.0f64) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(kolmogorov_sf(lo) >= kolmogorov_sf(hi) - 1e-12);
    }

    #[test]
    fn wasserstein_properties(a in sample(60), b in sample(60)) {
        let w = wasserstein1(&a, &b).unwrap();
        prop_assert!(w >= 0.0);
        prop_assert!((w - wasserstein1(&b, &a).unwrap()).abs() < 1e-9 * (1.0 + w));
        prop_assert!(wasserstein1(&a, &a).unwrap().abs() < 1e-12);
    }

    #[test]
    fn wasserstein_shift_equivariance(a in sample(60), shift in -1e3..1e3f64) {
        let shifted: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let w = wasserstein1(&a, &shifted).unwrap();
        prop_assert!((w - shift.abs()).abs() < 1e-6 * (1.0 + shift.abs()));
    }

    #[test]
    fn cosine_similarity_bounded(a in sample(50)) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let c = cosine_similarity(&a, &b).unwrap();
        prop_assert!((-1.0..=1.0).contains(&c));
        // Self-similarity is 1 for any nonzero vector.
        if a.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cosine_scale_invariance(a in sample(50), k in 0.001..1e3f64) {
        if a.iter().any(|&x| x != 0.0) {
            let b: Vec<f64> = a.iter().map(|x| x * k).collect();
            prop_assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_sampling_stays_in_range(xs in sample(60), bins in 1usize..20, n in 1usize..200) {
        use rand::SeedableRng;
        let h = Histogram::from_data(&xs, bins).unwrap();
        let mut rng = pv_stats::rng::Xoshiro256pp::seed_from_u64(7);
        for v in h.sample_n(&mut rng, n) {
            prop_assert!(v >= h.lo() - 1e-9 && v <= h.hi() + 1e-9);
        }
    }
}
