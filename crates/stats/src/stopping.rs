//! Adaptive stopping rule for performance measurements.
//!
//! The paper's motivation section leans on two prior results: measuring
//! too few runs misleads, and always measuring 1,000 wastes resources;
//! Maricq et al. (OSDI '18) and Mittal et al. (PMBS '23) — both cited —
//! answer *"how many runs are enough?"* with confidence-interval-based
//! stopping. This module provides that tool so a `perfvar` user can
//! decide when their measured sample is trustworthy enough to train on
//! (or to skip prediction entirely).
//!
//! The rule: keep sampling until the bootstrap percentile CIs of the
//! median **and** of a tail quantile (default p95) are both narrower than
//! a target fraction of the median. Tail quantiles converge slowest, so
//! gating on one protects exactly the distribution feature scalar
//! summaries hide.

use rand::Rng;

use crate::bootstrap::bootstrap_ci;
use crate::descriptive::quantile;
use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// Configuration of the stopping rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Two-sided confidence level of the bootstrap CIs (e.g. 0.95).
    pub confidence: f64,
    /// Maximum tolerated CI width as a fraction of the sample median
    /// (e.g. 0.02 = CI no wider than 2% of the median).
    pub relative_width: f64,
    /// Tail quantile that must also converge (e.g. 0.95).
    pub tail_quantile: f64,
    /// Bootstrap replicates per check.
    pub replicates: usize,
    /// Minimum number of observations before the rule may fire.
    pub min_samples: usize,
}

impl Default for StoppingRule {
    fn default() -> Self {
        StoppingRule {
            confidence: 0.95,
            relative_width: 0.02,
            tail_quantile: 0.95,
            replicates: 300,
            min_samples: 10,
        }
    }
}

/// Outcome of a stopping-rule check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingDecision {
    /// Whether the sample satisfies the rule.
    pub stop: bool,
    /// Relative CI width of the median.
    pub median_rel_width: f64,
    /// Relative CI width of the tail quantile.
    pub tail_rel_width: f64,
    /// Number of observations examined.
    pub n: usize,
}

impl StoppingRule {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Fails on out-of-range parameters.
    pub fn validate(&self) -> Result<()> {
        if !(0.0 < self.confidence && self.confidence < 1.0) {
            return Err(StatsError::invalid("StoppingRule", "confidence ∉ (0,1)"));
        }
        if self.relative_width <= 0.0 || self.relative_width.is_nan() {
            return Err(StatsError::invalid("StoppingRule", "relative_width ≤ 0"));
        }
        if !(0.0 < self.tail_quantile && self.tail_quantile < 1.0) {
            return Err(StatsError::invalid("StoppingRule", "tail_quantile ∉ (0,1)"));
        }
        if self.replicates == 0 || self.min_samples < 2 {
            return Err(StatsError::invalid(
                "StoppingRule",
                "replicates ≥ 1 and min_samples ≥ 2 required",
            ));
        }
        Ok(())
    }

    /// Checks whether `xs` (the runs measured so far) satisfies the rule.
    ///
    /// # Errors
    /// Fails on invalid configuration or degenerate input (empty,
    /// non-finite, or non-positive median).
    pub fn check<R: Rng + ?Sized>(&self, rng: &mut R, xs: &[f64]) -> Result<StoppingDecision> {
        self.validate()?;
        ensure_len("StoppingRule::check", xs, 2)?;
        ensure_finite("StoppingRule::check", xs)?;
        let med = quantile(xs, 0.5)?;
        if med <= 0.0 || med.is_nan() {
            return Err(StatsError::invalid(
                "StoppingRule::check",
                "median must be positive (run times)",
            ));
        }
        let med_ci = bootstrap_ci(
            rng,
            xs,
            |s| quantile(s, 0.5).unwrap_or(f64::NAN),
            self.replicates,
            self.confidence,
        )?;
        let q = self.tail_quantile;
        let tail_ci = bootstrap_ci(
            rng,
            xs,
            move |s| quantile(s, q).unwrap_or(f64::NAN),
            self.replicates,
            self.confidence,
        )?;
        let median_rel_width = (med_ci.hi - med_ci.lo) / med;
        let tail_rel_width = (tail_ci.hi - tail_ci.lo) / med;
        let stop = xs.len() >= self.min_samples
            && median_rel_width <= self.relative_width
            && tail_rel_width <= self.relative_width;
        Ok(StoppingDecision {
            stop,
            median_rel_width,
            tail_rel_width,
            n: xs.len(),
        })
    }

    /// Runs the rule over a pre-collected sequence, returning the first
    /// prefix length at which it fires (checking every `step` runs), or
    /// `None` if it never does.
    ///
    /// # Errors
    /// Propagates configuration/input failures from [`StoppingRule::check`].
    pub fn first_sufficient_prefix<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        xs: &[f64],
        step: usize,
    ) -> Result<Option<usize>> {
        self.validate()?;
        let step = step.max(1);
        let mut n = self.min_samples.max(2);
        while n <= xs.len() {
            if self.check(rng, &xs[..n])?.stop {
                return Ok(Some(n));
            }
            n += step;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::samplers::{LogNormal, Normal, Sampler};
    use rand::SeedableRng;

    #[test]
    fn tight_distribution_stops_early() {
        let d = Normal::new(100.0, 0.1).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let xs = d.sample_n(&mut rng, 500);
        let rule = StoppingRule::default();
        let n = rule
            .first_sufficient_prefix(&mut rng, &xs, 10)
            .unwrap()
            .expect("should stop");
        assert!(n <= 50, "stopped only at n = {n}");
    }

    #[test]
    fn wide_tailed_distribution_needs_more_runs() {
        let tight = Normal::new(100.0, 0.5).unwrap();
        let heavy = LogNormal::new(100.0f64.ln(), 0.2).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let a = tight.sample_n(&mut rng, 800);
        let b = heavy.sample_n(&mut rng, 800);
        let rule = StoppingRule {
            relative_width: 0.05,
            ..StoppingRule::default()
        };
        let na = rule.first_sufficient_prefix(&mut rng, &a, 10).unwrap();
        let nb = rule.first_sufficient_prefix(&mut rng, &b, 10).unwrap();
        let na = na.unwrap_or(usize::MAX);
        let nb = nb.unwrap_or(usize::MAX);
        assert!(nb > na, "heavy-tailed {nb} vs tight {na}");
    }

    #[test]
    fn decision_reports_widths() {
        let d = Normal::new(10.0, 1.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let xs = d.sample_n(&mut rng, 100);
        let rule = StoppingRule::default();
        let dec = rule.check(&mut rng, &xs).unwrap();
        assert_eq!(dec.n, 100);
        assert!(dec.median_rel_width > 0.0);
        assert!(dec.tail_rel_width > 0.0);
        // With σ/μ = 10%, a 2% CI target is far from met at n = 100.
        assert!(!dec.stop);
    }

    #[test]
    fn min_samples_gates_the_rule() {
        // Even a constant sample must not fire before min_samples.
        let xs = vec![5.0; 8];
        let rule = StoppingRule {
            min_samples: 10,
            ..StoppingRule::default()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let dec = rule.check(&mut rng, &xs).unwrap();
        assert!(!dec.stop);
        let xs = vec![5.0; 10];
        let dec = rule.check(&mut rng, &xs).unwrap();
        assert!(dec.stop);
    }

    #[test]
    fn validates_parameters() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let xs = [1.0, 2.0, 3.0];
        for bad in [
            StoppingRule {
                confidence: 1.5,
                ..StoppingRule::default()
            },
            StoppingRule {
                relative_width: 0.0,
                ..StoppingRule::default()
            },
            StoppingRule {
                tail_quantile: 1.0,
                ..StoppingRule::default()
            },
            StoppingRule {
                replicates: 0,
                ..StoppingRule::default()
            },
        ] {
            assert!(bad.check(&mut rng, &xs).is_err());
        }
        // Non-positive median rejected.
        let rule = StoppingRule::default();
        assert!(rule.check(&mut rng, &[-1.0, -2.0, -3.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Normal::new(50.0, 2.0).unwrap();
        let mut r1 = Xoshiro256pp::seed_from_u64(6);
        let xs = d.sample_n(&mut r1, 200);
        let rule = StoppingRule::default();
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        assert_eq!(
            rule.check(&mut a, &xs).unwrap(),
            rule.check(&mut b, &xs).unwrap()
        );
    }
}
