//! Gaussian kernel density estimation.
//!
//! The paper visualizes every performance distribution as a KDE
//! (Section IV-E) and its violin plots of KS scores are KDEs too. The
//! reconstruction side of the PearsonRnd representation also passes through
//! a KDE: predicted moments → Pearson samples → smooth density.

use serde::{Deserialize, Serialize};

use crate::descriptive;
use crate::error::{ensure_finite, ensure_len};
use crate::moments::Moments;
use crate::{Result, StatsError};

/// Bandwidth selection rules for Gaussian KDE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bandwidth {
    /// Silverman's rule of thumb:
    /// `0.9 · min(σ̂, IQR/1.34) · n^{-1/5}`.
    Silverman,
    /// Scott's rule: `1.06 · σ̂ · n^{-1/5}`.
    Scott,
    /// A fixed, user-supplied bandwidth (must be positive).
    Fixed(f64),
}

/// A Gaussian kernel density estimate over a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE to `xs` with the given bandwidth rule.
    ///
    /// Degenerate samples (zero spread) get a small floor bandwidth so the
    /// estimate stays a proper density.
    ///
    /// # Errors
    /// Fails on empty/non-finite input or a non-positive fixed bandwidth.
    pub fn fit(xs: &[f64], rule: Bandwidth) -> Result<Self> {
        ensure_len("Kde::fit", xs, 1)?;
        ensure_finite("Kde::fit", xs)?;
        let n = xs.len() as f64;
        let m = Moments::from_slice(xs);
        let sigma = m.sample_std();
        let h = match rule {
            Bandwidth::Silverman => {
                let iqr = descriptive::iqr(xs)?;
                let spread = if iqr > 0.0 {
                    sigma.min(iqr / 1.34)
                } else {
                    sigma
                };
                0.9 * spread * n.powf(-0.2)
            }
            Bandwidth::Scott => 1.06 * sigma * n.powf(-0.2),
            Bandwidth::Fixed(h) => {
                if !(h.is_finite() && h > 0.0) {
                    return Err(StatsError::invalid("Kde::fit", format!("bandwidth {h}")));
                }
                h
            }
        };
        // Degenerate sample: fall back to a tiny bandwidth relative to the
        // data magnitude so pdf() does not blow up to a delta.
        let h = if h > 0.0 {
            h
        } else {
            let scale = m.mean().abs().max(1.0);
            1e-3 * scale
        };
        Ok(Kde {
            data: xs.to_vec(),
            bandwidth: h,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the KDE holds no data (never true for a fitted value).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Density estimate at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.data.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.data
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Smoothed CDF at `x` (average of per-kernel normal CDFs).
    pub fn cdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        self.data
            .iter()
            .map(|&xi| crate::special::normal_cdf((x - xi) / h))
            .sum::<f64>()
            / self.data.len() as f64
    }

    /// Evaluates the density on a regular grid of `m ≥ 2` points over
    /// `[lo, hi]`, returning `(x, pdf(x))` pairs.
    pub fn grid(&self, lo: f64, hi: f64, m: usize) -> Vec<(f64, f64)> {
        let m = m.max(2);
        (0..m)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (m - 1) as f64;
                (x, self.pdf(x))
            })
            .collect()
    }

    /// A natural plotting range: data range padded by 3 bandwidths.
    pub fn support(&self) -> (f64, f64) {
        let lo = self.data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo - 3.0 * self.bandwidth, hi + 3.0 * self.bandwidth)
    }

    /// Draws `n` samples from the KDE (data point + Gaussian noise).
    pub fn sample_n<R: rand::Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let i = rng.gen_range(0..self.data.len());
                self.data[i] + self.bandwidth * crate::samplers::standard_normal(rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::samplers::{Normal, Sampler};
    use rand::SeedableRng;

    #[test]
    fn pdf_integrates_to_one() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.31).sin() * 2.0).collect();
        let kde = Kde::fit(&xs, Bandwidth::Silverman).unwrap();
        let (lo, hi) = kde.support();
        let m = 2000;
        let h = (hi - lo) / m as f64;
        let integral: f64 = (0..m).map(|i| kde.pdf(lo + (i as f64 + 0.5) * h) * h).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn recovers_normal_density_shape() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let xs = d.sample_n(&mut rng, 5000);
        let kde = Kde::fit(&xs, Bandwidth::Silverman).unwrap();
        // Peak near 0 with density close to φ(0) ≈ 0.3989.
        assert!((kde.pdf(0.0) - 0.3989).abs() < 0.05);
        // Symmetric-ish.
        assert!((kde.pdf(1.0) - kde.pdf(-1.0)).abs() < 0.03);
        // Tail is small.
        assert!(kde.pdf(5.0) < 0.01);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 17) as f64).collect();
        let kde = Kde::fit(&xs, Bandwidth::Scott).unwrap();
        let mut prev = 0.0;
        for i in -5..25 {
            let c = kde.cdf(i as f64);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(kde.cdf(-100.0) < 1e-6);
        assert!(kde.cdf(100.0) > 1.0 - 1e-6);
    }

    #[test]
    fn bimodal_data_has_two_peaks() {
        let mut xs: Vec<f64> = Vec::new();
        let d1 = Normal::new(-3.0, 0.4).unwrap();
        let d2 = Normal::new(3.0, 0.4).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        xs.extend(d1.sample_n(&mut rng, 1000));
        xs.extend(d2.sample_n(&mut rng, 1000));
        let kde = Kde::fit(&xs, Bandwidth::Silverman).unwrap();
        let peak_l = kde.pdf(-3.0);
        let peak_r = kde.pdf(3.0);
        let valley = kde.pdf(0.0);
        assert!(peak_l > 3.0 * valley);
        assert!(peak_r > 3.0 * valley);
    }

    #[test]
    fn degenerate_sample_still_valid_density() {
        let xs = vec![5.0; 20];
        let kde = Kde::fit(&xs, Bandwidth::Silverman).unwrap();
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.pdf(5.0).is_finite());
        assert!(kde.pdf(5.0) > 0.0);
    }

    #[test]
    fn fixed_bandwidth_is_respected() {
        let xs = [0.0, 1.0, 2.0];
        let kde = Kde::fit(&xs, Bandwidth::Fixed(0.25)).unwrap();
        assert_eq!(kde.bandwidth(), 0.25);
        assert!(Kde::fit(&xs, Bandwidth::Fixed(0.0)).is_err());
        assert!(Kde::fit(&xs, Bandwidth::Fixed(-1.0)).is_err());
    }

    #[test]
    fn sampling_from_kde_resembles_data() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let xs = d.sample_n(&mut rng, 2000);
        let kde = Kde::fit(&xs, Bandwidth::Silverman).unwrap();
        let ys = kde.sample_n(&mut rng, 2000);
        let m = Moments::from_slice(&ys);
        assert!((m.mean() - 10.0).abs() < 0.3);
        assert!((m.population_std() - 2.0).abs() < 0.3);
    }

    #[test]
    fn grid_has_requested_shape() {
        let xs = [0.0, 1.0];
        let kde = Kde::fit(&xs, Bandwidth::Fixed(0.5)).unwrap();
        let g = kde.grid(-1.0, 2.0, 7);
        assert_eq!(g.len(), 7);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[6].0, 2.0);
        // Degenerate request is bumped to 2 points.
        assert_eq!(kde.grid(0.0, 1.0, 1).len(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Kde::fit(&[], Bandwidth::Silverman).is_err());
        assert!(Kde::fit(&[f64::NAN], Bandwidth::Scott).is_err());
    }
}
