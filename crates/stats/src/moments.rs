//! Numerically stable, mergeable moment accumulation.
//!
//! The paper represents both application profiles and performance
//! distributions by their first four moments (mean, standard deviation,
//! skewness, kurtosis — Section III-B). This module implements the one-pass
//! update formulas of Pébay (2008) for the central moments `M2..M4`, plus
//! the pairwise *merge* rule, which makes the accumulator usable as a
//! rayon reduction identity: accumulating a slice in chunks on different
//! threads and merging gives bit-for-bit deterministic results for a fixed
//! chunking, and numerically identical statistics for any chunking.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// One-pass accumulator for count, mean, and 2nd–4th central moments.
///
/// ```
/// use pv_stats::Moments;
/// let mut m = Moments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates all values of a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Moments::new();
        for &x in xs {
            m.push(x);
        }
        m
    }

    /// Vectorized two-pass accumulation of a whole slice: mean via the
    /// chunked four-lane sum, then central power sums `Σd²..Σd⁴` in one
    /// more chunked pass (see [`crate::kernel`]). No per-element
    /// division, and the lane updates auto-vectorize — several times
    /// faster than the streaming [`Self::from_slice`] on long slices.
    ///
    /// **Contract (tolerance, not bitwise):** `count`, `min`, and `max`
    /// are exact; `mean` and the central moments agree with
    /// [`Self::from_slice`] only to relative tolerance (the two-pass
    /// form is, if anything, the more accurate of the pair). Pipeline
    /// paths whose outputs are bit-pinned (profile encoding,
    /// `MomentSummary::from_sample`, `StandardScaler`) therefore keep
    /// the sequential push as their reference and must not switch to
    /// this constructor; see DESIGN.md "Kernel contracts".
    pub fn from_slice_chunked(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Moments::new();
        }
        let n = xs.len() as f64;
        let mean = crate::kernel::sum4(xs) / n;
        let (m2, m3, m4) = crate::kernel::central_sums4(xs, mean);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Moments {
            n: xs.len() as u64,
            mean,
            m2,
            m3,
            m4,
            min,
            max,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        // Order matters: each update uses the *previous* lower moments.
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Pébay's pairwise rule).
    ///
    /// Associative and commutative up to floating-point rounding, which is
    /// what makes parallel reduction with rayon meaningful.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of accumulated observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation seen (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population (biased, `/n`) variance.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (unbiased, `/(n-1)`) variance; 0 when fewer than 2 points.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population skewness `g1 = m3 / m2^{3/2}` (0 for degenerate input).
    ///
    /// This is the *moment* definition used by MATLAB's `skewness(x)` and
    /// NumPy/SciPy's `skew(x)` with default bias, matching what the paper's
    /// Python/MATLAB pipeline computes.
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        let m2 = self.m2 / n;
        let m3 = self.m3 / n;
        m3 / m2.powf(1.5)
    }

    /// Population kurtosis `m4 / m2²` (the *non-excess* convention: a
    /// normal distribution has kurtosis 3). MATLAB's `kurtosis(x)` and
    /// `pearsrnd` use this convention; degenerate input returns 3.
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 <= 0.0 {
            return 3.0;
        }
        let n = self.n as f64;
        let m2 = self.m2 / n;
        let m4 = self.m4 / n;
        m4 / (m2 * m2)
    }

    /// Excess kurtosis (`kurtosis() - 3`).
    pub fn excess_kurtosis(&self) -> f64 {
        self.kurtosis() - 3.0
    }

    /// Freezes the accumulator into a [`MomentSummary`].
    pub fn summary(&self) -> MomentSummary {
        MomentSummary {
            mean: self.mean(),
            std: self.population_std(),
            skewness: self.skewness(),
            kurtosis: self.kurtosis(),
        }
    }
}

/// The paper's four-moment description of a distribution: mean, standard
/// deviation, skewness, and (non-excess) kurtosis.
///
/// This struct is the lingua franca between the statistical substrate, the
/// Pearson system (`pv-pearson`), the maximum-entropy reconstruction
/// (`pv-maxent`), and the prediction pipelines (`pv-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Moment skewness `m3 / m2^{3/2}`.
    pub skewness: f64,
    /// Non-excess kurtosis `m4 / m2²` (normal = 3).
    pub kurtosis: f64,
}

impl MomentSummary {
    /// Computes the summary of a sample.
    ///
    /// # Errors
    /// Fails when the sample is empty or contains non-finite values.
    pub fn from_sample(xs: &[f64]) -> Result<Self> {
        ensure_len("moment summary", xs, 1)?;
        ensure_finite("moment summary", xs)?;
        Ok(Moments::from_slice(xs).summary())
    }

    /// The summary of a standard normal distribution.
    pub fn standard_normal() -> Self {
        MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: 0.0,
            kurtosis: 3.0,
        }
    }

    /// Squared skewness, the Pearson-plane coordinate β₁.
    pub fn beta1(&self) -> f64 {
        self.skewness * self.skewness
    }

    /// Kurtosis, the Pearson-plane coordinate β₂.
    pub fn beta2(&self) -> f64 {
        self.kurtosis
    }

    /// Whether (β₁, β₂) lies in the feasible region `β₂ ≥ β₁ + 1` (a hard
    /// constraint any real distribution satisfies).
    pub fn is_feasible(&self) -> bool {
        self.std >= 0.0 && self.kurtosis >= self.beta1() + 1.0
    }

    /// Projects an infeasible (β₁, β₂) pair to the closest feasible point by
    /// raising kurtosis to `β₁ + 1 + margin`. Predicted moment vectors from
    /// a regression model can be slightly infeasible; the paper's pipeline
    /// must still reconstruct *a* distribution from them.
    pub fn clamped_feasible(&self, margin: f64) -> Self {
        let mut out = *self;
        if !out.std.is_finite() || out.std < 0.0 {
            out.std = 0.0;
        }
        let floor = out.beta1() + 1.0 + margin;
        if out.kurtosis < floor || out.kurtosis.is_nan() {
            out.kurtosis = floor;
        }
        out
    }

    /// Packs the summary into a fixed-order feature vector
    /// `[mean, std, skewness, kurtosis]`.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![self.mean, self.std, self.skewness, self.kurtosis]
    }

    /// Inverse of [`MomentSummary::to_vec`].
    ///
    /// # Errors
    /// Fails when the slice does not hold exactly four values.
    pub fn from_vec(v: &[f64]) -> Result<Self> {
        if v.len() != 4 {
            return Err(StatsError::invalid(
                "moment summary",
                format!("expected 4 values, got {}", v.len()),
            ));
        }
        Ok(MomentSummary {
            mean: v[0],
            std: v[1],
            skewness: v[2],
            kurtosis: v[3],
        })
    }
}

/// Convenience: mean of a slice.
///
/// # Errors
/// Fails on empty or non-finite input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    ensure_len("mean", xs, 1)?;
    ensure_finite("mean", xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Convenience: sample variance (`/(n-1)`) of a slice.
///
/// # Errors
/// Fails when fewer than two observations are provided.
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    ensure_len("sample variance", xs, 2)?;
    ensure_finite("sample variance", xs)?;
    Ok(Moments::from_slice(xs).sample_variance())
}

/// Convenience: sample standard deviation of a slice.
///
/// # Errors
/// Fails when fewer than two observations are provided.
pub fn sample_std(xs: &[f64]) -> Result<f64> {
    Ok(sample_variance(xs)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_accumulator_is_benign() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.skewness(), 0.0);
        assert_eq!(m.kurtosis(), 3.0);
    }

    #[test]
    fn single_observation() {
        let m = Moments::from_slice(&[42.0]);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
    }

    #[test]
    fn matches_naive_two_pass_computation() {
        let xs: Vec<f64> = (0..500)
            .map(|i| ((i * 37) % 101) as f64 / 7.0 - 3.0)
            .collect();
        let m = Moments::from_slice(&xs);
        let n = xs.len() as f64;
        let mu = xs.iter().sum::<f64>() / n;
        let c2 = xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
        let c3 = xs.iter().map(|x| (x - mu).powi(3)).sum::<f64>() / n;
        let c4 = xs.iter().map(|x| (x - mu).powi(4)).sum::<f64>() / n;
        assert!(close(m.mean(), mu, 1e-12));
        assert!(close(m.population_variance(), c2, 1e-12));
        assert!(close(m.skewness(), c3 / c2.powf(1.5), 1e-10));
        assert!(close(m.kurtosis(), c4 / (c2 * c2), 1e-10));
    }

    #[test]
    fn chunked_two_pass_matches_streaming_within_tolerance() {
        // The documented contract: count/min/max exact, statistics to
        // relative tolerance against the sequential Pébay reference.
        for n in [1usize, 2, 3, 4, 5, 7, 64, 1000] {
            let xs: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.83).sin() * 5.0 + 2.0)
                .collect();
            let seq = Moments::from_slice(&xs);
            let chk = Moments::from_slice_chunked(&xs);
            assert_eq!(chk.count(), seq.count(), "n={n}");
            assert_eq!(chk.min().to_bits(), seq.min().to_bits(), "n={n}");
            assert_eq!(chk.max().to_bits(), seq.max().to_bits(), "n={n}");
            assert!(close(chk.mean(), seq.mean(), 1e-12), "n={n}");
            assert!(
                close(chk.population_variance(), seq.population_variance(), 1e-10),
                "n={n}"
            );
            assert!(close(chk.skewness(), seq.skewness(), 1e-8), "n={n}");
            assert!(close(chk.kurtosis(), seq.kurtosis(), 1e-8), "n={n}");
        }
        assert_eq!(Moments::from_slice_chunked(&[]).count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq = Moments::from_slice(&xs);
        for split in [1, 17, 500, 999] {
            let mut a = Moments::from_slice(&xs[..split]);
            let b = Moments::from_slice(&xs[split..]);
            a.merge(&b);
            assert_eq!(a.count(), seq.count());
            assert!(close(a.mean(), seq.mean(), 1e-12));
            assert!(close(
                a.population_variance(),
                seq.population_variance(),
                1e-10
            ));
            assert!(close(a.skewness(), seq.skewness(), 1e-8));
            assert!(close(a.kurtosis(), seq.kurtosis(), 1e-8));
            assert_eq!(a.min(), seq.min());
            assert_eq!(a.max(), seq.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.5];
        let mut a = Moments::from_slice(&xs);
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);

        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn skewness_sign_tracks_tail_direction() {
        // Right-skewed sample (long right tail) → positive skewness.
        let right: Vec<f64> = vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 8.0, 20.0];
        assert!(Moments::from_slice(&right).skewness() > 0.5);
        // Mirrored sample → negative skewness of the same magnitude.
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        let s_r = Moments::from_slice(&right).skewness();
        let s_l = Moments::from_slice(&left).skewness();
        assert!(close(s_l, -s_r, 1e-12));
    }

    #[test]
    fn kurtosis_of_two_point_symmetric_distribution_is_one() {
        // ±1 with equal probability: m4/m2² = 1, the theoretical minimum.
        let xs = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(close(Moments::from_slice(&xs).kurtosis(), 1.0, 1e-12));
    }

    #[test]
    fn shift_invariance_of_central_moments() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).cos()).collect();
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1e6).collect();
        let a = Moments::from_slice(&xs);
        let b = Moments::from_slice(&shifted);
        assert!(close(
            a.population_variance(),
            b.population_variance(),
            1e-6
        ));
        assert!(close(a.skewness(), b.skewness(), 1e-4));
        assert!(close(a.kurtosis(), b.kurtosis(), 1e-4));
    }

    #[test]
    fn summary_roundtrip_through_vec() {
        let s = MomentSummary {
            mean: 1.5,
            std: 0.25,
            skewness: -0.4,
            kurtosis: 3.6,
        };
        let v = s.to_vec();
        let back = MomentSummary::from_vec(&v).unwrap();
        assert_eq!(s, back);
        assert!(MomentSummary::from_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn feasibility_clamp() {
        let bad = MomentSummary {
            mean: 0.0,
            std: 1.0,
            skewness: 2.0,
            kurtosis: 2.0, // infeasible: needs ≥ 5
        };
        assert!(!bad.is_feasible());
        let fixed = bad.clamped_feasible(0.1);
        assert!(fixed.is_feasible());
        assert!(close(fixed.kurtosis, 5.1, 1e-12));

        let good = MomentSummary::standard_normal();
        assert!(good.is_feasible());
        assert_eq!(good.clamped_feasible(0.0), good);
    }

    #[test]
    fn from_sample_validates_input() {
        assert!(MomentSummary::from_sample(&[]).is_err());
        assert!(MomentSummary::from_sample(&[1.0, f64::NAN]).is_err());
        let s = MomentSummary::from_sample(&[1.0, 2.0, 3.0]).unwrap();
        assert!(close(s.mean, 2.0, 1e-12));
    }

    #[test]
    fn convenience_helpers() {
        assert!(close(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0, 1e-12));
        assert!(close(
            sample_variance(&[1.0, 2.0, 3.0]).unwrap(),
            1.0,
            1e-12
        ));
        assert!(close(sample_std(&[1.0, 2.0, 3.0]).unwrap(), 1.0, 1e-12));
        assert!(mean(&[]).is_err());
        assert!(sample_variance(&[1.0]).is_err());
    }
}
